"""Aging-aware timing-library characterization (§3.2.2, Figure 4).

The paper pre-computes, per standard-cell, how signal probability maps
to switching-delay degradation over time — by running SPICE on each cell
of the library.  Because the work depends only on the library (not on
any particular design), it is done once and reused.

Our analytic substitute does exactly that: for every cell type, a grid
of SP values is mapped through the reaction-diffusion model
(:mod:`repro.aging.bti`) and the alpha-power delay law into a delay
multiplier, stored in a lookup table with linear interpolation between
grid points — the same shape as a characterized ``.lib`` table.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.cells import CellLibrary, CellType
from .bti import BtiParameters, DEFAULT_BTI, cell_delta_vth, delay_factor
from .hci import HciParameters, cell_delta_vth_hci

_DEFAULT_SP_GRID = tuple(i / 20.0 for i in range(21))


@dataclass
class CellAgingTable:
    """Delay-degradation lookup for one cell type.

    ``sp_grid`` and ``factors`` are parallel: ``factors[i]`` is the
    delay multiplier (>= 1.0) when the cell's output SP is
    ``sp_grid[i]`` for the characterized lifetime.
    """

    cell_name: str
    sp_grid: Tuple[float, ...]
    factors: Tuple[float, ...]

    def factor_at(self, sp: float) -> float:
        """Linearly interpolated delay multiplier at ``sp``."""
        if not 0.0 <= sp <= 1.0:
            raise ValueError(f"SP must be within [0, 1], got {sp}")
        grid = self.sp_grid
        if sp <= grid[0]:
            return self.factors[0]
        if sp >= grid[-1]:
            return self.factors[-1]
        hi = bisect_left(grid, sp)
        lo = hi - 1
        span = grid[hi] - grid[lo]
        weight = (sp - grid[lo]) / span
        return self.factors[lo] * (1 - weight) + self.factors[hi] * weight


@dataclass
class AgingTimingLibrary:
    """Aging-aware timing views of a cell library at one (lifetime, T).

    Use :meth:`characterize` to build; then :meth:`delay_factor` maps a
    (cell type, SP) pair to its aged delay multiplier during
    aging-aware STA.
    """

    library_name: str
    lifetime_years: float
    temperature_c: float
    tables: Dict[str, CellAgingTable] = field(default_factory=dict)

    @classmethod
    def characterize(
        cls,
        library: CellLibrary,
        lifetime_years: float = 10.0,
        temperature_c: float = 105.0,
        sp_grid: Sequence[float] = _DEFAULT_SP_GRID,
        params: BtiParameters = DEFAULT_BTI,
        hci: Optional[HciParameters] = None,
        hci_activity_scale: float = 1.0,
    ) -> "AgingTimingLibrary":
        """Run the per-cell characterization over the SP grid.

        This is the stand-in for the SPICE sweep: the analytic BTI +
        alpha-power pipeline replaces transistor-level simulation while
        keeping the same inputs (cell, SP, lifetime, temperature) and
        the same output (a delay-degradation table).

        ``hci`` adds a hot-carrier dVth contribution on top of BTI
        (additive in threshold shift, as the two damage sites are
        independent); ``None`` — the default — keeps every factor
        byte-identical to the BTI-only characterization.
        ``hci_activity_scale`` is the operating corner's
        ``hci_stress_scale``.
        """
        out = cls(
            library_name=library.name,
            lifetime_years=lifetime_years,
            temperature_c=temperature_c,
        )
        grid = tuple(sp_grid)
        for cell in library:
            factors = []
            for sp in grid:
                dvth = cell_delta_vth(
                    sp,
                    lifetime_years,
                    temperature_c,
                    stress_state=cell.stress_state,
                    params=params,
                )
                if hci is not None:
                    dvth += cell_delta_vth_hci(
                        sp,
                        lifetime_years,
                        temperature_c,
                        params=hci,
                        activity_scale=hci_activity_scale,
                    )
                factors.append(
                    delay_factor(dvth, library.vdd, library.vth0, library.alpha)
                )
            out.tables[cell.name] = CellAgingTable(
                cell_name=cell.name, sp_grid=grid, factors=tuple(factors)
            )
        return out

    def delay_factor(self, cell_name: str, sp: float) -> float:
        try:
            table = self.tables[cell_name]
        except KeyError:
            raise KeyError(
                f"cell {cell_name!r} was not characterized in "
                f"{self.library_name!r}"
            ) from None
        return table.factor_at(sp)

    def aged_delays(
        self, cell: CellType, sp: float
    ) -> Tuple[float, float]:
        """(tmin, tmax) of ``cell`` after aging at output SP ``sp``.

        Both bounds scale: BTI slows every transition through the cell,
        which matters for setup (tmax) and *helps* hold (tmin) — hold
        violations in the paper arise from clock-network phase shift,
        not from data paths getting faster.
        """
        factor = self.delay_factor(cell.name, sp)
        return cell.tmin * factor, cell.tmax * factor


def degradation_curve(
    cell: CellType,
    library: CellLibrary,
    sp: float,
    years: Sequence[float],
    temperature_c: float = 105.0,
    params: BtiParameters = DEFAULT_BTI,
) -> List[float]:
    """Percent delay increase of one cell over time at fixed SP.

    This regenerates Figure 4 of the paper (a 28 nm cell's switching
    delay degradation under different SP levels across a 10-year span).
    """
    curve = []
    for year in years:
        dvth = cell_delta_vth(
            sp, year, temperature_c, stress_state=cell.stress_state, params=params
        )
        factor = delay_factor(dvth, library.vdd, library.vth0, library.alpha)
        curve.append((factor - 1.0) * 100.0)
    return curve
