"""Tests for the SAT solver, CNF encoder, and bounded model checker."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.example import build_paper_adder
from repro.formal.bmc import (
    BmcStatus,
    BoundedModelChecker,
    CoverObjective,
    InputAssumption,
    suggested_depth,
)
from repro.formal.encode import encode_in_set, encode_instance, encode_xor_var
from repro.formal.sat import SatSolver, SatStatus
from repro.netlist.cells import make_vega28_library
from repro.netlist.netlist import Netlist
from repro.rtl.signal import Module
from repro.rtl.synth import synthesize
from repro.sim.gatesim import GateSimulator


class TestSatSolver:
    def test_trivial_sat(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        r = s.solve()
        assert r.status is SatStatus.SAT
        assert r.model[a] is True

    def test_trivial_unsat(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve().status is SatStatus.UNSAT

    def test_empty_clause_unsat(self):
        s = SatSolver()
        s.new_var()
        s.add_clause([])
        assert s.solve().status is SatStatus.UNSAT

    def test_tautology_ignored(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a, -a])
        assert s.solve().status is SatStatus.SAT

    def test_unknown_variable_rejected(self):
        s = SatSolver()
        with pytest.raises(ValueError):
            s.add_clause([1])

    def test_implication_chain(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(50)]
        s.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            s.add_clause([-a, b])
        r = s.solve()
        assert r.status is SatStatus.SAT
        assert all(r.model[v] for v in vs)

    def test_pigeonhole_unsat(self):
        s = SatSolver()
        pigeons, holes = 5, 4
        v = {
            (p, h): s.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            s.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        assert s.solve().status is SatStatus.UNSAT

    def test_conflict_budget_reports_unknown(self):
        s = SatSolver()
        pigeons, holes = 8, 7
        v = {
            (p, h): s.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            s.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        assert s.solve(conflict_limit=5).status is SatStatus.UNKNOWN

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_3sat_agrees_with_bruteforce(self, seed):
        import random

        rng = random.Random(seed)
        nv = rng.randint(3, 8)
        clauses = [
            [
                rng.choice([1, -1]) * rng.randint(1, nv)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(nv, nv * 4))
        ]

        def brute():
            for bits in itertools.product([False, True], repeat=nv):
                if all(
                    any(
                        bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]
                        for l in c
                    )
                    for c in clauses
                ):
                    return True
            return False

        s = SatSolver()
        for _ in range(nv):
            s.new_var()
        for c in clauses:
            s.add_clause(c)
        r = s.solve()
        assert (r.status is SatStatus.SAT) == brute()
        if r.status is SatStatus.SAT:
            for c in clauses:
                assert any(
                    r.model[abs(l)] if l > 0 else not r.model[abs(l)]
                    for l in c
                )


class TestEncoder:
    @pytest.mark.parametrize(
        "ctype", ["BUF", "INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"]
    )
    def test_gate_encodings_match_truth_tables(self, vega28, ctype):
        cell = vega28[ctype]
        arity = cell.num_inputs
        for assignment in itertools.product([0, 1], repeat=arity):
            s = SatSolver()
            nl = Netlist("t", vega28)
            in_nets = [nl.add_input_port(f"i{k}").bit(0) for k in range(arity)]
            y = nl.add_net("y")
            pins = {pin: net for pin, net in zip(cell.inputs, in_nets)}
            pins[cell.output] = y
            inst = nl.add_instance(ctype, pins)
            var_of = {}
            for net in in_nets + [y]:
                var_of[net.name] = s.new_var()
            encode_instance(s, inst, var_of)
            for net, value in zip(in_nets, assignment):
                s.add_clause([var_of[net.name] if value else -var_of[net.name]])
            r = s.solve()
            assert r.status is SatStatus.SAT
            expected = cell.evaluate(assignment, 1)
            assert r.model[var_of["y"]] == bool(expected)

    def test_mux_encoding(self, vega28):
        for a, b, sel in itertools.product([0, 1], repeat=3):
            s = SatSolver()
            nl = Netlist("t", vega28)
            nets = {
                "A": nl.add_input_port("a").bit(0),
                "B": nl.add_input_port("b").bit(0),
                "S": nl.add_input_port("s").bit(0),
            }
            y = nl.add_net("y")
            inst = nl.add_instance("MUX2", {**nets, "Y": y})
            var_of = {n.name: s.new_var() for n in nets.values()}
            var_of["y"] = s.new_var()
            encode_instance(s, inst, var_of)
            for name, val in zip("abs", (a, b, sel)):
                s.add_clause([var_of[name] if val else -var_of[name]])
            r = s.solve()
            assert r.model[var_of["y"]] == bool(b if sel else a)

    def test_encode_in_set(self):
        s = SatSolver()
        bits = [s.new_var() for _ in range(4)]
        encode_in_set(s, bits, [3, 7, 12])
        # Forbid 3 and 7 -> model must be 12.
        s.add_clause([-bits[0]])
        r = s.solve()
        assert r.status is SatStatus.SAT
        value = sum((1 << i) for i, v in enumerate(bits) if r.model[v])
        assert value == 12

    def test_encode_in_set_empty_rejected(self):
        s = SatSolver()
        bits = [s.new_var()]
        with pytest.raises(ValueError):
            encode_in_set(s, bits, [])

    def test_xor_var(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        d = encode_xor_var(s, a, b)
        s.add_clause([a])
        s.add_clause([-b])
        r = s.solve()
        assert r.model[d] is True


class TestBmc:
    def test_suggested_depth_paper_adder(self, paper_adder):
        # Two pipeline stages -> depth 1 chain + 2 = 3 frames.
        assert suggested_depth(paper_adder) == 3

    def test_cover_finds_shortest_witness(self, paper_adder):
        bmc = BoundedModelChecker(paper_adder)
        result = bmc.cover(CoverObjective(asserted=["o[1]"]), max_depth=5)
        assert result.status is BmcStatus.COVERED
        # o[1] can first be 1 at the third frame (input, sum, register).
        assert result.trace.depth == 3

    def test_witness_replays_on_simulator(self, paper_adder):
        bmc = BoundedModelChecker(paper_adder)
        result = bmc.cover(CoverObjective(asserted=["o[1]"]), max_depth=5)
        sim = GateSimulator(paper_adder)
        outputs = {}
        for frame in result.trace.inputs:
            outputs = sim.step(frame)
        assert (outputs["o"] >> 1) & 1 == 1

    def test_assumption_makes_cover_unreachable(self, paper_adder):
        bmc = BoundedModelChecker(
            paper_adder,
            assumptions=[
                InputAssumption.fixed("a", 0),
                InputAssumption.fixed("b", 0),
            ],
        )
        result = bmc.cover(CoverObjective(asserted=["o[1]"]), max_depth=4)
        assert result.status is BmcStatus.UNREACHABLE

    def test_assumption_restricts_witness_values(self, paper_adder):
        bmc = BoundedModelChecker(
            paper_adder,
            assumptions=[InputAssumption("a", [2]), InputAssumption("b", [0, 1])],
        )
        result = bmc.cover(CoverObjective(asserted=["o[1]"]), max_depth=5)
        assert result.status is BmcStatus.COVERED
        for frame in result.trace.inputs:
            assert frame["a"] == 2
            assert frame["b"] in (0, 1)

    def test_differ_objective(self, paper_adder):
        # o[0] != o[1] is reachable (e.g. sum = 1).
        bmc = BoundedModelChecker(paper_adder)
        result = bmc.cover(
            CoverObjective(differ=[("o[0]", "o[1]")]), max_depth=5
        )
        assert result.status is BmcStatus.COVERED
        sim = GateSimulator(paper_adder)
        outputs = {}
        for frame in result.trace.inputs:
            outputs = sim.step(frame)
        assert (outputs["o"] & 1) != ((outputs["o"] >> 1) & 1)

    def test_budget_exceeded_reported(self):
        # A multiplier equality with a tiny conflict budget must give up.
        m = Module("mul")
        a = m.input("a", 10)
        b = m.input("b", 10)
        m.output("p", a * b)
        netlist = synthesize(m, make_vega28_library())
        bmc = BoundedModelChecker(netlist, conflict_budget=3)
        # Cover: all high bits of the product high at once (hard-ish).
        objective = CoverObjective(
            asserted_all=[f"p[{i}]" for i in range(12, 20)]
        )
        result = bmc.cover(objective, max_depth=1)
        assert result.status in (
            BmcStatus.BUDGET_EXCEEDED,
            BmcStatus.COVERED,
        )
        if result.status is BmcStatus.COVERED:
            # If it covered with 3 conflicts, the instance was easy;
            # replay to be sure the witness is real.
            sim = GateSimulator(netlist)
            out = sim.evaluate(result.trace.inputs[0])
            assert all((out["p"] >> i) & 1 for i in range(12, 20))

    def test_trace_table_rendering(self, paper_adder):
        bmc = BoundedModelChecker(paper_adder)
        result = bmc.cover(
            CoverObjective(asserted=["o[1]"]),
            max_depth=5,
            observe=["o[1]", "s1"],
        )
        table = result.trace.to_table()
        assert "Cycle" in table
        assert "a" in table.splitlines()[1] or "a" in table

    def test_unknown_port_assumption_rejected(self, paper_adder):
        with pytest.raises(ValueError):
            BoundedModelChecker(
                paper_adder, assumptions=[InputAssumption.fixed("zz", 0)]
            )


class TestBmcCrossValidation:
    """Property: BMC witnesses always replay on the gate simulator."""

    @given(target=st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_cover_specific_sums(self, target):
        adder = build_paper_adder()
        bmc = BoundedModelChecker(adder)
        # Build objective: o == target via per-bit assertions using
        # differ against constant nets is unwieldy; assert set bits and
        # check clear bits by replay.
        asserted = [f"o[{i}]" for i in range(2) if (target >> i) & 1]
        if not asserted:
            return  # all-zero target is the reset state; nothing to cover
        result = bmc.cover(
            CoverObjective(asserted_all=asserted), max_depth=4
        )
        assert result.status is BmcStatus.COVERED
        sim = GateSimulator(adder)
        outputs = {}
        for frame in result.trace.inputs:
            outputs = sim.step(frame)
        for i in range(2):
            if (target >> i) & 1:
                assert (outputs["o"] >> i) & 1


class TestDimacs:
    """DIMACS interchange for the SAT solver."""

    def test_parse_and_solve_sat(self):
        from repro.formal.dimacs import solver_from_dimacs

        text = """c a satisfiable instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
"""
        result = solver_from_dimacs(text).solve()
        assert result.status is SatStatus.SAT
        assert result.model[1] is False  # forced by the unit clause

    def test_parse_and_solve_unsat(self):
        from repro.formal.dimacs import solver_from_dimacs

        text = "p cnf 1 2\n1 0\n-1 0\n"
        assert solver_from_dimacs(text).solve().status is SatStatus.UNSAT

    def test_roundtrip(self):
        from repro.formal.dimacs import parse_dimacs, to_dimacs

        clauses = [[1, -2], [2, 3], [-1, -3]]
        text = to_dimacs(3, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses

    def test_bad_literal_rejected(self):
        from repro.formal.dimacs import DimacsError, parse_dimacs

        with pytest.raises(DimacsError, match="exceeds"):
            parse_dimacs("p cnf 2 1\n5 0\n")

    def test_missing_header_rejected(self):
        from repro.formal.dimacs import DimacsError, parse_dimacs

        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n")

    def test_php_instance_from_text(self):
        """Pigeonhole PHP(4,3) as a DIMACS round trip solves UNSAT."""
        from repro.formal.dimacs import solver_from_dimacs, to_dimacs

        pigeons, holes = 4, 3
        var = lambda p, h: p * holes + h + 1
        clauses = [
            [var(p, h) for h in range(holes)] for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        text = to_dimacs(pigeons * holes, clauses)
        assert solver_from_dimacs(text).solve().status is SatStatus.UNSAT


class TestDratProof:
    def test_unsat_proof_emitted(self):
        s = SatSolver()
        s.proof_logging = True
        pigeons, holes = 4, 3
        v = {
            (p, h): s.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            s.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        assert s.solve().status is SatStatus.UNSAT
        proof = s.drat_proof()
        lines = [l for l in proof.strip().splitlines() if l]
        # Terminates with the empty clause; every line is 0-terminated.
        assert lines[-1] == "0"
        assert all(l.split()[-1] == "0" for l in lines)
        assert len(lines) >= 2  # at least one learned clause + empty

    def test_learned_clauses_are_rup(self):
        """Each proof clause must be implied: formula + prefix + the
        clause's negation propagates to conflict (RUP check)."""
        base = SatSolver()
        base.proof_logging = True
        a, b, c = base.new_var(), base.new_var(), base.new_var()
        clauses = [[a, b], [a, -b], [-a, c], [-a, -c]]
        for clause in clauses:
            base.add_clause(clause)
        assert base.solve().status is SatStatus.UNSAT
        proof = [
            [int(t) for t in line.split()[:-1]]
            for line in base.drat_proof().strip().splitlines()
            if line != "0"
        ]
        prefix = []
        for learned in proof:
            checker = SatSolver()
            for _ in range(3):
                checker.new_var()
            for clause in clauses + prefix:
                checker.add_clause(clause)
            for literal in learned:
                checker.add_clause([-literal])
            assert checker.solve().status is SatStatus.UNSAT
            prefix.append(learned)


class TestSolverAssumptions:
    """MiniSat-style assumption solving for the incremental BMC."""

    def test_unsat_under_assumptions_is_not_global(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a, -b]).status is SatStatus.UNSAT
        # The formula itself is still satisfiable; the solver must
        # recover fully after an UNSAT-under-assumptions verdict.
        assert s.solve().status is SatStatus.SAT
        again = s.solve(assumptions=[-a])
        assert again.status is SatStatus.SAT
        assert again.model[b]

    def test_contradictory_assumptions(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a, -a])  # tautology, ignored
        assert s.solve(assumptions=[a, -a]).status is SatStatus.UNSAT
        assert s.solve().status is SatStatus.SAT

    def test_assumption_already_true_at_root(self):
        # Root-level units make assumptions pre-satisfied; the solver
        # inserts dummy decision levels so later assumptions still get
        # their own level to backtrack to.
        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([-a, b])
        result = s.solve(assumptions=[a, b, c])
        assert result.status is SatStatus.SAT
        assert result.model[a] and result.model[b] and result.model[c]

    def test_assumptions_direct_the_model(self):
        s = SatSolver()
        lits = [s.new_var() for _ in range(4)]
        s.add_clause(lits)
        for var in lits:
            result = s.solve(
                assumptions=[var] + [-other for other in lits if other != var]
            )
            assert result.status is SatStatus.SAT
            assert result.model[var]
            assert not any(result.model[o] for o in lits if o != var)

    def test_clauses_added_between_solves(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve().status is SatStatus.SAT
        s.add_clause([-a])
        result = s.solve()
        assert result.status is SatStatus.SAT
        assert result.model[b]
        s.add_clause([-b])
        # Now globally UNSAT - and it stays that way.
        assert s.solve().status is SatStatus.UNSAT
        assert s.solve(assumptions=[a]).status is SatStatus.UNSAT

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_assumptions_agree_with_unit_clauses(self, seed):
        """solve(assumptions=A) on F == fresh solve of F + units(A)."""
        import random

        rng = random.Random(seed)
        nvars = rng.randint(3, 7)
        clauses = [
            [
                rng.choice([1, -1]) * rng.randint(1, nvars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(2, 16))
        ]
        assumptions = [
            rng.choice([1, -1]) * v
            for v in rng.sample(range(1, nvars + 1), rng.randint(0, 3))
        ]

        incremental = SatSolver()
        for _ in range(nvars):
            incremental.new_var()
        for clause in clauses:
            incremental.add_clause(clause)
        # Exercise solver-state reuse: solve unconstrained first, then
        # under assumptions (the incremental BMC's usage pattern).
        incremental.solve()
        under = incremental.solve(assumptions=assumptions)

        fresh = SatSolver()
        for _ in range(nvars):
            fresh.new_var()
        for clause in clauses:
            fresh.add_clause(clause)
        for lit in assumptions:
            fresh.add_clause([lit])
        expected = fresh.solve()

        assert under.status is expected.status
        if under.status is SatStatus.SAT:
            model = under.model
            assert all(
                model[abs(lit)] is (lit > 0) for lit in assumptions
            )
            assert all(
                any(model[abs(l)] is (l > 0) for l in clause)
                for clause in clauses
            )
