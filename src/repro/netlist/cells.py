"""Standard-cell definitions for the synthetic "vega28" library.

The paper synthesizes the CV32E40P ALU/FPU into a real 28 nm foundry
library.  We cannot ship foundry data, so this module defines a synthetic
library whose cells carry every attribute Vega's workflow consumes:

* a boolean function (used by the gate-level simulator and the CNF
  encoder),
* base best/worst-case propagation delays in nanoseconds,
* sequential constraints (setup/hold, clock-to-Q) for flip-flops, and
* a BTI stress model: which logic state at the cell output keeps the
  vulnerable p-type pull-up transistors under static stress.

Delay values are loosely modelled on published 28 nm standard-cell data
(tens of picoseconds per gate) and are deliberately conservative; the
workflow only depends on their relative structure, not absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

# Evaluation functions operate on arbitrary-width Python ints so that one
# call simulates W stimulus vectors in parallel (bit i of every operand
# belongs to vector i).  ``mask`` holds W one-bits and bounds inversions.
EvalFn = Callable[[Sequence[int], int], int]


def _ev_buf(i: Sequence[int], mask: int) -> int:
    return i[0] & mask


def _ev_inv(i: Sequence[int], mask: int) -> int:
    return ~i[0] & mask


def _ev_and2(i: Sequence[int], mask: int) -> int:
    return i[0] & i[1] & mask


def _ev_or2(i: Sequence[int], mask: int) -> int:
    return (i[0] | i[1]) & mask


def _ev_nand2(i: Sequence[int], mask: int) -> int:
    return ~(i[0] & i[1]) & mask


def _ev_nor2(i: Sequence[int], mask: int) -> int:
    return ~(i[0] | i[1]) & mask


def _ev_xor2(i: Sequence[int], mask: int) -> int:
    return (i[0] ^ i[1]) & mask


def _ev_xnor2(i: Sequence[int], mask: int) -> int:
    return ~(i[0] ^ i[1]) & mask


def _ev_mux2(i: Sequence[int], mask: int) -> int:
    # Inputs are ordered (A, B, S); S selects B when 1, A when 0.
    a, b, s = i
    return ((a & ~s) | (b & s)) & mask


def _ev_tie0(i: Sequence[int], mask: int) -> int:
    return 0


def _ev_tie1(i: Sequence[int], mask: int) -> int:
    return mask


@dataclass(frozen=True)
class CellType:
    """Immutable description of one library cell.

    Attributes:
        name: Library cell name, e.g. ``"XOR2"``.
        inputs: Ordered input pin names.
        output: Output pin name (``"Y"`` for gates, ``"Q"`` for flops).
        eval_fn: Bit-parallel boolean function of the input pins.  For
            sequential cells this is the *D-to-Q transfer*, applied at a
            clock edge by the simulator.
        tmin: Best-case propagation delay (ns).  For flops this is the
            minimum clock-to-Q delay.
        tmax: Worst-case propagation delay (ns); maximum clock-to-Q for
            flops.
        area: Relative cell area, used only for reporting.
        is_seq: True for flip-flops.
        is_clock: True for cells legal on the clock network.
        setup: Setup-time requirement at the D pin (ns); flops only.
        hold: Hold-time requirement at the D pin (ns); flops only.
        stress_state: Output logic state under which the cell's PMOS
            pull-up network suffers static BTI stress.  Per the paper
            (§2.3.1), gates idling at logic "0" age fastest, so this is 0
            for every vega28 cell; the field exists so that alternative
            libraries can model NMOS-dominant cells.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    eval_fn: EvalFn
    tmin: float
    tmax: float
    area: float = 1.0
    is_seq: bool = False
    is_clock: bool = False
    setup: float = 0.0
    hold: float = 0.0
    stress_state: int = 0

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def evaluate(self, input_values: Sequence[int], mask: int = 1) -> int:
        """Evaluate the cell function on bit-packed input vectors."""
        return self.eval_fn(input_values, mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellType({self.name})"


@dataclass
class CellLibrary:
    """A named collection of :class:`CellType` objects.

    The library also records the reference supply voltage and nominal
    threshold voltage used by the aging characterizer
    (:mod:`repro.aging.charlib`) when converting BTI-induced threshold
    shifts into delay degradation.
    """

    name: str
    cells: Dict[str, CellType] = field(default_factory=dict)
    vdd: float = 0.9
    vth0: float = 0.35
    alpha: float = 1.3

    def add(self, cell: CellType) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell type {cell.name!r}")
        self.cells[cell.name] = cell

    def __getitem__(self, name: str) -> CellType:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def combinational(self) -> Tuple[CellType, ...]:
        return tuple(c for c in self if not c.is_seq)

    def sequential(self) -> Tuple[CellType, ...]:
        return tuple(c for c in self if c.is_seq)


def make_vega28_library() -> CellLibrary:
    """Build the synthetic 28 nm library used throughout the repo.

    Delays are in nanoseconds.  The set of cells intentionally matches
    what :mod:`repro.rtl.synth` emits plus the clock-network buffer.
    """
    lib = CellLibrary(name="vega28", vdd=0.9, vth0=0.35, alpha=1.3)
    lib.add(CellType("BUF", ("A",), "Y", _ev_buf, 0.014, 0.030, area=1.0))
    lib.add(CellType("INV", ("A",), "Y", _ev_inv, 0.008, 0.020, area=0.7))
    lib.add(CellType("AND2", ("A", "B"), "Y", _ev_and2, 0.018, 0.038, area=1.3))
    lib.add(CellType("OR2", ("A", "B"), "Y", _ev_or2, 0.020, 0.040, area=1.3))
    lib.add(CellType("NAND2", ("A", "B"), "Y", _ev_nand2, 0.012, 0.026, area=1.0))
    lib.add(CellType("NOR2", ("A", "B"), "Y", _ev_nor2, 0.014, 0.030, area=1.0))
    lib.add(CellType("XOR2", ("A", "B"), "Y", _ev_xor2, 0.028, 0.055, area=2.1))
    lib.add(CellType("XNOR2", ("A", "B"), "Y", _ev_xnor2, 0.028, 0.057, area=2.1))
    lib.add(
        CellType("MUX2", ("A", "B", "S"), "Y", _ev_mux2, 0.026, 0.052, area=2.3)
    )
    lib.add(CellType("TIE0", (), "Y", _ev_tie0, 0.0, 0.0, area=0.3))
    lib.add(CellType("TIE1", (), "Y", _ev_tie1, 0.0, 0.0, area=0.3))
    lib.add(
        CellType(
            "DFF",
            ("D",),
            "Q",
            _ev_buf,
            tmin=0.038,
            tmax=0.075,
            area=4.5,
            is_seq=True,
            setup=0.045,
            hold=0.033,
        )
    )
    lib.add(
        CellType(
            "CLKBUF",
            ("A",),
            "Y",
            _ev_buf,
            0.016,
            0.032,
            area=1.2,
            is_clock=True,
        )
    )
    return lib


# A process-wide default instance; cheap to build but convenient to share.
VEGA28 = make_vega28_library()
