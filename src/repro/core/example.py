"""The paper's running example: the pipelined 2-bit adder of Listing 1.

Section 3 of the paper walks every Vega phase through a tiny module: a
2-bit adder that registers its operands in cycle one and the sum in
cycle two, synthesized into a minimal library (AND/XOR/DFF with 0.1 ns
min and 0.3 ns max delay, 0.06 ns setup, 0.03 ns hold, 1 GHz clock).
This module rebuilds that exact netlist — Figure 3 — cell for cell, so
tests and the quickstart example can reproduce Tables 1 and 2.
"""

from __future__ import annotations


from ..netlist.cells import CellLibrary, CellType
from ..netlist.netlist import Netlist

PAPER_CLOCK_PERIOD_NS = 1.0


def make_paper_library() -> CellLibrary:
    """The minimal three-cell library of §3.1 (plus support cells)."""
    from ..netlist.cells import (
        _ev_and2,
        _ev_buf,
        _ev_mux2,
        _ev_tie0,
        _ev_tie1,
        _ev_xor2,
    )

    lib = CellLibrary(name="paper-minimal", vdd=0.9, vth0=0.35, alpha=1.3)
    lib.add(CellType("AND2", ("A", "B"), "Y", _ev_and2, 0.1, 0.3))
    lib.add(CellType("XOR2", ("A", "B"), "Y", _ev_xor2, 0.1, 0.3))
    lib.add(
        CellType(
            "DFF",
            ("D",),
            "Q",
            _ev_buf,
            tmin=0.1,
            tmax=0.3,
            is_seq=True,
            setup=0.06,
            hold=0.03,
        )
    )
    # MUX2/DFF/TIE are needed by failure-model instrumentation (§3.3.2).
    lib.add(CellType("MUX2", ("A", "B", "S"), "Y", _ev_mux2, 0.1, 0.3))
    lib.add(CellType("BUF", ("A",), "Y", _ev_buf, 0.1, 0.3))
    lib.add(CellType("XNOR2", ("A", "B"), "Y",
                     lambda i, m: ~(i[0] ^ i[1]) & m, 0.1, 0.3))
    lib.add(CellType("INV", ("A",), "Y", lambda i, m: ~i[0] & m, 0.05, 0.15))
    lib.add(CellType("AND3", ("A", "B", "C"), "Y",
                     lambda i, m: i[0] & i[1] & i[2] & m, 0.12, 0.35))
    lib.add(CellType("OR2", ("A", "B"), "Y",
                     lambda i, m: (i[0] | i[1]) & m, 0.1, 0.3))
    lib.add(CellType("TIE0", (), "Y", _ev_tie0, 0.0, 0.0))
    lib.add(CellType("TIE1", (), "Y", _ev_tie1, 0.0, 0.0))
    lib.add(CellType("CLKBUF", ("A",), "Y", _ev_buf, 0.1, 0.2, is_clock=True))
    return lib


def build_paper_adder(library: CellLibrary | None = None) -> Netlist:
    """Construct the Figure 3 netlist of the paper.

    Ports: ``a[1:0]``, ``b[1:0]`` in; ``o[1:0]`` out.  Instances carry
    the paper's ``$N`` names (``d1``..``d4`` for the operand flops,
    ``x5``/``a6``/``x7``/``x8`` for the adder gates, ``d9``/``d10`` for
    the output flops) so reports match the running example:

    * ``d1``-``d4`` sample ``a[0]``, ``b[0]``, ``a[1]``, ``b[1]``;
    * ``x5 = aq0 ^ bq0`` feeds ``d9`` (``o[0]``; the short/hold path);
    * ``a6 = aq0 & bq0`` is the carry;
    * ``x7 = aq1 ^ bq1``; ``x8 = x7 ^ carry`` feeds ``d10`` (``o[1]``;
      the long path ``d4 -> x7 -> x8 -> d10`` of the setup example).
    """
    lib = library or make_paper_library()
    nl = Netlist("adder", lib)
    a = nl.add_input_port("a", 2)
    b = nl.add_input_port("b", 2)
    o = nl.add_output_port("o", 2)

    aq0 = nl.add_net("aq0")
    bq0 = nl.add_net("bq0")
    aq1 = nl.add_net("aq1")
    bq1 = nl.add_net("bq1")
    nl.add_instance("DFF", {"D": a.bit(0), "Q": aq0}, name="d1")
    nl.add_instance("DFF", {"D": b.bit(0), "Q": bq0}, name="d2")
    nl.add_instance("DFF", {"D": a.bit(1), "Q": aq1}, name="d3")
    nl.add_instance("DFF", {"D": b.bit(1), "Q": bq1}, name="d4")

    s0 = nl.add_net("s0")
    carry = nl.add_net("carry")
    s1a = nl.add_net("s1a")
    s1 = nl.add_net("s1")
    nl.add_instance("XOR2", {"A": aq0, "B": bq0, "Y": s0}, name="x5")
    nl.add_instance("AND2", {"A": aq0, "B": bq0, "Y": carry}, name="a6")
    nl.add_instance("XOR2", {"A": aq1, "B": bq1, "Y": s1a}, name="x7")
    nl.add_instance("XOR2", {"A": s1a, "B": carry, "Y": s1}, name="x8")

    nl.add_instance("DFF", {"D": s0, "Q": o.bit(0)}, name="d9")
    nl.add_instance("DFF", {"D": s1, "Q": o.bit(1)}, name="d10")
    nl.validate()
    return nl


# The SP profile the paper shows in Table 1, keyed by our instance names.
PAPER_TABLE1_SP = {
    "d1": 0.85,
    "d2": 0.54,
    "d3": 0.38,
    "d4": 0.27,
    "x5": 0.46,
    "a6": 0.48,
    "x7": 0.13,
    "x8": 0.52,
    "d9": 0.44,
    "d10": 0.54,
}
