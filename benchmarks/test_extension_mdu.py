"""Extension — the full workflow on a third unit (RV32M multiplier).

The paper claims "Vega's design can be applied to other instruction
sets, microarchitectures, and process technologies" (§4).  This
benchmark substantiates the claim for the component axis: the identical
pipeline — SP profiling (with the RV32M matrix-multiply workload),
aging-aware STA, formal lifting, suite generation, and failing-netlist
detection — runs unmodified on a 6.5k-cell multiply unit, producing
Table 3/4/5/6-shaped results.
"""

from repro.lifting.models import CMode


def test_extension_mdu_full_pipeline(ctx, benchmark, recorder):
    unit = ctx.unit("mdu")

    sta = unit.sta_result
    report = sta.report
    lifting = unit.lifting(False)
    pct = lifting.outcome_percentages()
    suite = unit.suite(False)
    cycles = suite.suite_cycles()

    rows = [
        f"unit: mdu ({unit.netlist.stats()['_cells']} cells, "
        f"period {sta.period_ns:.3f} ns)",
        f"fresh violations: {len(sta.fresh_report.violations)}",
        f"aged: setup {len(report.setup_violations())} paths / "
        f"{len(report.unique_endpoint_pairs('setup'))} pairs, "
        f"WNS {report.wns_setup_ns*1000:.1f} ps; "
        f"hold {len(report.hold_violations())}",
        f"construction: S={pct['S']:.1f}% UR={pct['UR']:.1f}% "
        f"FF={pct['FF']:.1f}% FC={pct['FC']:.1f}%",
        f"suite: {len(suite.test_cases)} tests, {cycles} cycles",
    ]
    outcomes = unit.detection_outcomes(False)
    detected = sum(o.detected for o in outcomes)
    rows.append(
        f"detection: {detected}/{len(outcomes)} failing netlists "
        f"caught (C in 0/1/R)"
    )
    recorder.sample(
        "extension_mdu_pipeline", "setup_paths",
        len(report.setup_violations()), "paths", unit="mdu",
    )
    recorder.sample(
        "extension_mdu_pipeline", "test_cases", len(suite.test_cases),
        "tests", unit="mdu", bigger_is_better=True,
    )
    recorder.sample(
        "extension_mdu_pipeline", "suite_cycles", cycles, "cycles",
        unit="mdu",
    )
    recorder.sample(
        "extension_mdu_pipeline", "detected", detected, "netlists",
        unit="mdu", bigger_is_better=True,
    )
    recorder.table("extension_mdu_pipeline", "\n".join(rows))

    # The unit signs off fresh and violates after 10 years, like the
    # ALU/FPU.
    assert sta.fresh_report.violations == []
    assert report.setup_violations()
    # Lifting constructs tests; the mission-constant DFT pairs prove UR.
    assert pct["S"] > 0
    constructed = [p for p in lifting.pairs if p.test_cases]
    assert constructed
    dft_pairs = [p for p in lifting.pairs if p.start.startswith("dft_q")]
    for pair in dft_pairs:
        assert pair.outcome.value == "UR"
    # The suite stays compact and catches every evaluated failure.
    assert 0 < cycles < 10_000
    assert outcomes
    assert detected == len(outcomes)

    # Benchmark: one suite run against one failing netlist.
    failing = unit.failing_netlists()[0]
    result = benchmark(unit.run_suite_against, suite, failing.netlist)
    assert result is not None
