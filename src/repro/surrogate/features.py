"""Feature extraction: (SP profile, corner, age) -> fixed-width vector.

The vector concatenates the netlist-level SP summary
(:meth:`repro.sim.probes.SPProfile.feature_vector` — global SP
statistics plus per-logic-depth aggregates), a one-hot over the corner
catalogue with the corner's physical knobs (temperature, voltage
scale, late derate), and a small basis over the device age (linear,
the BTI 1/6 power law, log).  ``FEATURE_SCHEMA`` versions the layout:
datasets and model snapshots both carry it, and training refuses to
mix schemas.

:class:`FleetFeaturizer` is the triage hot path: it precomputes the
name ordering and depth-bucket index arrays once per netlist, then
featurizes raw numpy SP vectors without building per-device dicts —
scoring a device costs microseconds, which is what makes clearing the
cohort essentially free next to the exact pipeline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..aging.corners import TYPICAL_CORNER, WORST_CORNER, OperatingCorner
from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile, net_levels

#: Version of the feature layout below.  Bump on any change to the
#: ordering, widths, or transforms — mixed-schema training must fail.
FEATURE_SCHEMA = 1

#: Corner catalogue order for the one-hot block (sorted by name).
CORNER_ORDER = tuple(
    sorted([TYPICAL_CORNER.name, WORST_CORNER.name])
)

_CORNERS: Dict[str, OperatingCorner] = {
    TYPICAL_CORNER.name: TYPICAL_CORNER,
    WORST_CORNER.name: WORST_CORNER,
}

#: Reference span (years) normalizing the age basis.
_AGE_SCALE = 10.0


def feature_names(buckets: int = 8) -> List[str]:
    """Stable column names of the feature vector (schema 1)."""
    names = [
        "sp_mean",
        "sp_std",
        "sp_low_frac",
        "sp_high_frac",
        "toggle_proxy",
        "dff_sp_mean",
        "comb_sp_mean",
    ]
    for bucket in range(buckets):
        names += [
            f"level{bucket}_mean",
            f"level{bucket}_min",
            f"level{bucket}_max",
        ]
    names += [f"corner_{name}" for name in CORNER_ORDER]
    names += ["corner_temp_c", "corner_voltage", "corner_late_derate"]
    names += ["age_years", "age_bti_pow", "age_log1p"]
    return names


def corner_features(corner_name: str) -> List[float]:
    """One-hot + physical knobs for one operating corner."""
    onehot = [1.0 if corner_name == name else 0.0 for name in CORNER_ORDER]
    corner = _CORNERS.get(corner_name)
    if corner is None:
        raise ValueError(f"unknown corner {corner_name!r}")
    return onehot + [
        corner.temperature_c / 100.0,
        corner.voltage_scale,
        corner.late_derate,
    ]


def age_features(age_years: float) -> List[float]:
    """Normalized age basis: linear, BTI t^(1/6) law, log."""
    scaled = age_years / _AGE_SCALE
    return [scaled, scaled ** (1.0 / 6.0), math.log1p(age_years)]


def device_features(
    profile: SPProfile,
    netlist: Netlist,
    corner_name: str,
    age_years: float,
    buckets: int = 8,
) -> np.ndarray:
    """Full feature vector for one (profile, corner, age) triple."""
    return np.concatenate([
        profile.feature_vector(netlist, buckets=buckets),
        np.asarray(corner_features(corner_name), dtype=np.float64),
        np.asarray(age_features(age_years), dtype=np.float64),
    ])


class FleetFeaturizer:
    """Vectorized featurizer over raw SP vectors (triage hot path).

    ``names`` fixes the net ordering (sorted); ``vector(sp)`` accepts a
    float64 array in that order and produces *bit-identical* features
    to :func:`device_features` on the equivalent ``SPProfile`` — every
    reduction below reproduces the scalar path's summation order, so
    cleared-cohort scoring never diverges from the dict-based
    reference.
    """

    def __init__(self, netlist: Netlist, buckets: int = 8):
        self.netlist = netlist
        self.buckets = buckets
        self.names: List[str] = sorted(netlist.nets)
        self._col = {name: i for i, name in enumerate(self.names)}
        levels = net_levels(netlist)
        max_level = max(levels.values(), default=0)
        self._bucket_cols: List[List[int]] = [[] for _ in range(buckets)]
        for name in sorted(levels):
            bucket = min(
                buckets - 1,
                (levels[name] - 1) * buckets // max(1, max_level),
            )
            self._bucket_cols[bucket].append(self._col[name])
        self._comb_cols = [self._col[name] for name in sorted(levels)]
        self._dff_cols = [
            self._col[name]
            for name in sorted(
                dff.output_net.name for dff in netlist.dffs()
            )
        ]

    def base_vector(self, profile: SPProfile) -> np.ndarray:
        """The profile's SPs in this featurizer's name order."""
        return np.asarray(
            [profile.sp[name] for name in self.names], dtype=np.float64
        )

    def profile(self, sp: np.ndarray) -> SPProfile:
        """Materialize a dict-based profile (for the exact oracle)."""
        return SPProfile(
            netlist_name=self.netlist.name,
            sp=dict(zip(self.names, sp.tolist())),
            samples=1,
        )

    def vector(
        self, sp: np.ndarray, corner_name: str, age_years: float
    ) -> np.ndarray:
        values = sp.tolist()
        n = max(1, len(values))
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        low = sum(1 for v in values if v <= 0.1) / n
        high = sum(1 for v in values if v >= 0.9) / n
        toggle = sum(2.0 * v * (1.0 - v) for v in values) / n
        dff = [values[i] for i in self._dff_cols]
        dff_mean = sum(dff) / len(dff) if dff else 0.5
        comb = [values[i] for i in self._comb_cols]
        comb_mean = sum(comb) / len(comb) if comb else 0.5
        head = [mean, var ** 0.5, low, high, toggle, dff_mean, comb_mean]
        tail: List[float] = []
        for cols in self._bucket_cols:
            if cols:
                bucket = [values[i] for i in cols]
                tail += [sum(bucket) / len(bucket), min(bucket), max(bucket)]
            else:
                tail += [0.5, 0.5, 0.5]
        return np.concatenate([
            np.asarray(head + tail, dtype=np.float64),
            np.asarray(corner_features(corner_name), dtype=np.float64),
            np.asarray(age_features(age_years), dtype=np.float64),
        ])
