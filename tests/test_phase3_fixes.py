"""Regression tests for the phase-3 verdict, memoization, and overhead fixes.

Three bugs, each locked here:

1. ``AgingLibrary`` verdicts are ``lui``-encoded (``value << 12``), so a
   genuine exit always has zero low 12 bits.  An exit with *nonzero* low
   bits means the unit corrupted the verdict value itself — it must count
   as a detection with **unknown** attribution, never be mapped to a test
   (the high bits can land on a valid position by accident).
2. ``suite_cycles()`` runs a full CPU pass; it must be memoized per
   (strategy, test-case list) and invalidated when the list changes.
3. ``estimate_overhead``/``plan`` must cost the *spliced* scheduling
   strategy, not always the sequential suite, and the planned overhead
   must equal the spliced program's measured instruction delta.
"""

import pytest

from repro.core import telemetry
from repro.core.config import TestIntegrationConfig
from repro.cpu.alu_design import AluOp, alu_reference
from repro.cpu.cpu import run_program
from repro.integration.library_gen import FAULT_SENTINEL, AgingLibrary
from repro.integration.profile import ProfileGuidedIntegrator
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.lifting.testcase import TestCase, TestInstruction

MODEL = FailureModel("x", "y", ViolationKind.SETUP, CMode.ONE)


def _alu_case(name, triples):
    mnemonic_op = {
        "add": AluOp.ADD, "sub": AluOp.SUB, "xor": AluOp.XOR,
        "and": AluOp.AND, "or": AluOp.OR,
    }
    case = TestCase(name=name, unit="alu", model=MODEL)
    for mnemonic, a, b in triples:
        case.instructions.append(
            TestInstruction(
                mnemonic=mnemonic,
                operands={"rs1": a, "rs2": b},
                expected=alu_reference(int(mnemonic_op[mnemonic]), a, b),
            )
        )
    return case


@pytest.fixture
def library():
    lib = AgingLibrary(name="t")
    lib.test_cases.append(_alu_case("t_xor", [("xor", 0x5A, 0xFF)]))
    lib.test_cases.append(_alu_case("t_add", [("add", 1, 2)]))
    lib.test_cases.append(_alu_case("t_sub", [("sub", 100, 58)]))
    return lib


class _SmashEverythingAlu:
    """Corrupts the LSB of every ALU result, whatever the op."""

    def execute(self, op, a, b):
        return (alu_reference(op, a, b) ^ 1) & 0xFFFFFFFF


class TestVerdictDecoding:
    def test_clean_exit(self, library):
        result = library.decode_exit(0, [0, 1, 2])
        assert not result.detected

    def test_genuine_verdict_attributes(self, library):
        result = library.decode_exit(2 << 12, [2, 0, 1], cycles=99)
        assert result.detected
        assert result.detected_index == 0
        assert result.detected_by == "t_xor"
        assert result.cycles == 99

    def test_corrupted_low_bits_detect_without_attribution(self, library):
        # High bits land on a *valid* position — attribution must still
        # be withheld, because the whole value is untrustworthy.
        result = library.decode_exit((2 << 12) | 7, [0, 1, 2])
        assert result.detected
        assert result.detected_by is None
        assert result.detected_index is None

    def test_every_low_bit_pattern_is_a_detection(self, library):
        for low in (1, 0x7FF, 0xFFF):
            result = library.decode_exit(low, [0, 1, 2])
            assert result.detected
            assert result.detected_by is None

    def test_fault_sentinel_detects_without_attribution(self, library):
        result = library.decode_exit(FAULT_SENTINEL, [0, 1, 2])
        assert result.detected
        assert result.detected_by is None

    def test_out_of_range_position_detects_without_attribution(self, library):
        result = library.decode_exit(99 << 12, [0, 1, 2])
        assert result.detected
        assert result.detected_by is None

    def test_adversarial_alu_cannot_forge_the_verdict(self, library):
        """End to end: the verdict path never touches the ALU backend.

        The suite's constants come from the lui/lw pool and its exits
        from bare ``lui``, so even an ALU that corrupts *every* result
        yields a cleanly encoded exit — detection with precise
        attribution to the first executed test.
        """
        result = library.run_suite(alu=_SmashEverythingAlu())
        assert result.detected
        assert result.detected_index == library.order("sequential")[0]
        assert result.detected_by == "t_xor"


class TestSuiteCyclesMemo:
    def test_second_call_runs_nothing(self, library):
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            first = library.suite_cycles()
            second = library.suite_cycles()
        assert first == second > 0
        assert tele.counters["integration.suite_runs"] == 1

    def test_strategies_memoized_independently(self, library):
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            library.suite_cycles("sequential")
            library.suite_cycles("random")
            library.suite_cycles("sequential")
            library.suite_cycles("random")
        assert tele.counters["integration.suite_runs"] == 2

    def test_changed_test_cases_invalidate(self, library):
        before = library.suite_cycles()
        library.test_cases.append(_alu_case("t_and", [("and", 3, 5)]))
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            after = library.suite_cycles()
        assert tele.counters["integration.suite_runs"] == 1
        assert after > before

    def test_empty_library_costs_nothing(self):
        assert AgingLibrary(name="empty").suite_cycles() == 0


class TestOverheadStrategyThreading:
    APP = """
        li s0, 0
        li s1, 16
    outer:
        li s2, 200
    inner:
        add s0, s0, s2
        addi s2, s2, -1
        bnez s2, inner
        addi s1, s1, -1
        bnez s1, outer
        mv a0, s0
        ecall
    """

    def _measured_overhead(self, app):
        baseline = run_program(self.APP)
        result, fault = app.run()
        assert not fault
        return (result.instructions - baseline.instructions) / (
            baseline.instructions
        )

    def test_plan_threads_strategy(self, library):
        integrator = ProfileGuidedIntegrator(library)
        app = integrator.integrate(self.APP, strategy="random")
        assert app.plan.strategy == "random"

    def test_spliced_routine_uses_requested_schedule(self, library):
        # Seed 2024 shuffles [0, 1, 2] into a non-identity order, so a
        # sequentially-scheduled splice would order the bodies wrong.
        order = library.order("random")
        assert order != library.order("sequential")
        integrator = ProfileGuidedIntegrator(library)
        app = integrator.integrate(self.APP, strategy="random")
        names = [library.test_cases[i].name for i in order]
        positions = [app.source.index(f"# {name} ") for name in names]
        assert positions == sorted(positions)

    @pytest.mark.parametrize("strategy", ["sequential", "random"])
    def test_planned_overhead_matches_measured_ungated(self, library, strategy):
        integrator = ProfileGuidedIntegrator(
            library, TestIntegrationConfig(overhead_threshold=0.9)
        )
        app = integrator.integrate(self.APP, strategy=strategy)
        assert not app.plan.gated
        assert app.plan.estimated_overhead == pytest.approx(
            self._measured_overhead(app), abs=1e-12
        )

    @pytest.mark.parametrize("strategy", ["sequential", "random"])
    def test_planned_overhead_matches_measured_gated(self, library, strategy):
        integrator = ProfileGuidedIntegrator(
            library, TestIntegrationConfig(overhead_threshold=0.001)
        )
        app = integrator.integrate(self.APP, strategy=strategy)
        assert app.plan.gated
        assert app.plan.estimated_overhead == pytest.approx(
            self._measured_overhead(app), abs=1e-12
        )

    def test_visit_costs_memoized(self, library):
        integrator = ProfileGuidedIntegrator(library)
        from repro.integration.profile import IntegrationPlan

        plan = IntegrationPlan("outer", 16, 0.0, gate_period=4)
        first = integrator._visit_costs(plan)
        integrator._harness_cost = None  # any further call would crash
        assert integrator._visit_costs(plan) == first
