"""Tests for aging-library generation and profile-guided integration."""

import pytest

from repro.core.config import TestIntegrationConfig
from repro.cpu.alu_design import AluOp, alu_reference
from repro.cpu.cpu import run_program
from repro.integration.library_gen import (
    AgingFaultDetected,
    AgingLibrary,
    ConstantPool,
    FAULT_SENTINEL,
    render_test_body,
)
from repro.integration.profile import (
    ProfileGuidedIntegrator,
    profile_application,
)
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.lifting.testcase import TestCase, TestInstruction

MODEL = FailureModel("x", "y", ViolationKind.SETUP, CMode.ONE)


def _alu_case(name, triples):
    """TestCase from (mnemonic, a, b) triples with golden expectations."""
    mnemonic_op = {
        "add": AluOp.ADD, "sub": AluOp.SUB, "xor": AluOp.XOR,
        "and": AluOp.AND, "or": AluOp.OR,
    }
    case = TestCase(name=name, unit="alu", model=MODEL)
    for mnemonic, a, b in triples:
        case.instructions.append(
            TestInstruction(
                mnemonic=mnemonic,
                operands={"rs1": a, "rs2": b},
                expected=alu_reference(int(mnemonic_op[mnemonic]), a, b),
            )
        )
    return case


def _fpu_case(name, op_bits):
    from repro.cpu.fpu_design import FpuOp, fpu_reference
    from repro.cpu.mappers import FPU_MNEMONIC

    case = TestCase(name=name, unit="fpu", model=MODEL)
    for op, a, b in op_bits:
        value, flags = fpu_reference(int(op), a, b)
        case.instructions.append(
            TestInstruction(
                mnemonic=FPU_MNEMONIC[op],
                operands={"rs1": a, "rs2": b},
                expected=value,
                expected_flags=flags,
            )
        )
    return case


class _BrokenAlu:
    """Golden ALU except ADD results are off by one.

    Note that ``li`` materialization flows through the ALU too (lui +
    addi), so a broken adder also corrupts test operands — a realistic
    effect the suite must still convert into a detection.
    """

    def execute(self, op, a, b):
        result = alu_reference(op, a, b)
        if op == int(AluOp.ADD):
            result = (result + 1) & 0xFFFFFFFF
        return result


class _BrokenSubAlu:
    """Golden ALU except SUB results are off by one (loads unaffected)."""

    def execute(self, op, a, b):
        result = alu_reference(op, a, b)
        if op == int(AluOp.SUB):
            result = (result + 1) & 0xFFFFFFFF
        return result


@pytest.fixture
def library():
    lib = AgingLibrary(name="t")
    lib.test_cases.append(_alu_case("t_xor", [("xor", 0x5A, 0xFF)]))
    lib.test_cases.append(
        _alu_case("t_add", [("add", 1, 2), ("add", 0xFFFFFFFF, 1)])
    )
    lib.test_cases.append(_alu_case("t_sub", [("sub", 100, 58)]))
    return lib


class TestRenderTestBody:
    def test_alu_body_structure(self, library):
        pool = ConstantPool("p")
        lines = render_test_body(library.test_cases[1], "fail_0", pool)
        text = "\n".join(lines)
        assert "add s2, t1, t2" in text
        assert "add s3, t3, t4" in text
        assert "bne s2, t0, fail_0" in text

    def test_ops_are_back_to_back(self, library):
        pool = ConstantPool("p")
        lines = [
            l.strip()
            for l in render_test_body(library.test_cases[1], "f", pool)
        ]
        add_indices = [i for i, l in enumerate(lines) if l.startswith("add s")]
        assert add_indices[1] == add_indices[0] + 1

    def test_constants_come_from_the_pool(self, library):
        """No li/addi: a corrupted ALU must not corrupt test constants."""
        pool = ConstantPool("p")
        lines = render_test_body(library.test_cases[1], "f", pool)
        assert not any(l.strip().startswith("li ") for l in lines)
        assert any("%hi(p" in l for l in lines)
        # Operands and expected values all landed in the pool.
        assert 1 in pool.values and 2 in pool.values and 3 in pool.values

    def test_pool_data_lines_roundtrip(self):
        pool = ConstantPool("p")
        pool.load("t1", 0xDEADBEEF)
        data = "\n".join(pool.data_lines())
        assert ".data" in data and str(0xDEADBEEF) in data

    def test_too_many_instructions_rejected(self):
        case = _alu_case("big", [("add", i, i) for i in range(9)])
        with pytest.raises(ValueError, match="max"):
            render_test_body(case, "f", ConstantPool("p"))

    def test_fpu_body_checks_flags(self):
        from repro.cpu.fpu_design import FpuOp

        case = _fpu_case("t_fadd", [(FpuOp.FADD, 0x3C00, 0x3C00)])
        text = "\n".join(render_test_body(case, "f", ConstantPool("p")))
        assert "fsflags x0" in text
        assert "frflags t0" in text
        assert "fadd.h fs0, ft0, ft1" in text


class TestAgingLibrarySuite:
    def test_healthy_unit_passes(self, library):
        result = library.run_suite()
        assert not result.detected
        assert result.cycles > 0

    def test_broken_alu_detected(self, library):
        # Constants come from the ALU-free pool, so attribution is
        # precise: the add test (and only it) flags the broken adder.
        result = library.run_suite(alu=_BrokenAlu())
        assert result.detected
        assert result.detected_by == "t_add"

    def test_precise_attribution_when_loads_unaffected(self, library):
        result = library.run_suite(alu=_BrokenSubAlu())
        assert result.detected
        assert result.detected_by == "t_sub"

    def test_random_order_is_permutation(self, library):
        order = library.order("random")
        assert sorted(order) == [0, 1, 2]

    def test_unknown_strategy(self, library):
        with pytest.raises(ValueError):
            library.order("alphabetical")

    def test_raise_on_fault(self, library):
        result = library.run_suite(alu=_BrokenAlu())
        with pytest.raises(AgingFaultDetected, match="t_add"):
            library.raise_on_fault(result)

    def test_fpu_suite_detects_broken_fpu(self):
        from repro.cpu.fpu_design import FpuOp, fpu_reference

        class _BrokenFpu:
            def execute(self, op, a, b):
                value, flags = fpu_reference(op, a, b)
                if op == int(FpuOp.FMUL):
                    value ^= 1
                return value, flags

        lib = AgingLibrary(name="t")
        lib.test_cases.append(
            _fpu_case("t_fmul", [(FpuOp.FMUL, 0x4100, 0x3E00)])
        )
        result = lib.run_suite(fpu=_BrokenFpu())
        assert result.detected

    def test_suite_cycles_scale_with_tests(self, library):
        single = AgingLibrary(name="s", test_cases=[library.test_cases[0]])
        assert library.suite_cycles() > single.suite_cycles()

    def test_c_source_artifact(self, library):
        text = library.c_source()
        assert "vega_run_sequential" in text
        assert "vega_run_random" in text
        assert "__asm__ volatile" in text
        assert text.count("static int vega_test_") == 3


class TestProfileGuidedIntegration:
    APP = """
        li s0, 0
        li s1, 16
    outer:
        li s2, 200
    inner:
        add s0, s0, s2
        addi s2, s2, -1
        bnez s2, inner
        addi s1, s1, -1
        bnez s1, outer
        mv a0, s0
        ecall
    """

    def test_profile_counts_blocks(self):
        profile = profile_application(self.APP)
        counts = profile.labelled_counts()
        assert counts["outer"] == 16
        assert counts["inner"] == 16 * 200

    def test_choose_block_prefers_cool_blocks(self, library):
        integrator = ProfileGuidedIntegrator(
            library,
            TestIntegrationConfig(min_block_executions=4, max_block_share=0.5),
        )
        profile = profile_application(self.APP)
        label, count = integrator.choose_block(profile)
        assert label == "outer"  # cooler than `inner`, still routine
        assert count == 16

    def test_integrated_app_preserves_result(self, library):
        integrator = ProfileGuidedIntegrator(library)
        app = integrator.integrate(self.APP)
        baseline = run_program(self.APP)
        result, fault = app.run()
        assert not fault
        assert result.exit_value == baseline.exit_value

    def test_integrated_app_detects_faults(self, library):
        integrator = ProfileGuidedIntegrator(library)
        app = integrator.integrate(self.APP)
        result, fault = app.run(alu=_BrokenAlu())
        # The broken ALU perturbs the app itself too, but the sentinel
        # must fire (tests run before the app can finish).
        assert fault

    def test_overhead_gating_kicks_in(self, library):
        config = TestIntegrationConfig(overhead_threshold=0.001)
        integrator = ProfileGuidedIntegrator(library, config)
        app = integrator.integrate(self.APP)
        assert app.plan.gated
        assert app.plan.estimated_overhead <= 0.2  # bounded after gating

    def test_ungated_when_cheap(self, library):
        config = TestIntegrationConfig(overhead_threshold=0.9)
        integrator = ProfileGuidedIntegrator(library, config)
        app = integrator.integrate(self.APP)
        assert not app.plan.gated

    def test_gated_app_still_correct(self, library):
        config = TestIntegrationConfig(overhead_threshold=0.001)
        integrator = ProfileGuidedIntegrator(library, config)
        app = integrator.integrate(self.APP)
        baseline = run_program(self.APP)
        result, fault = app.run()
        assert not fault
        assert result.exit_value == baseline.exit_value

    def test_measured_overhead_reasonable(self, library):
        config = TestIntegrationConfig(overhead_threshold=0.05)
        integrator = ProfileGuidedIntegrator(library, config)
        app = integrator.integrate(self.APP)
        baseline = run_program(self.APP)
        result, _ = app.run()
        overhead = result.cycles / baseline.cycles - 1.0
        assert overhead < 0.5

    def test_missing_candidates_raise(self, library):
        config = TestIntegrationConfig(min_block_executions=10_000)
        integrator = ProfileGuidedIntegrator(library, config)
        with pytest.raises(ValueError, match="no basic block"):
            integrator.integrate(self.APP)

    def test_routine_preserves_registers_and_flags(self, library):
        # An app that depends on t-registers and fflags across the
        # integration point.
        app = """
            li t1, 1234
            li s1, 6
            li t0, 0x7BFF
            fmv.h.x fa0, t0
            fadd.h fa1, fa0, fa0   # sets OF|NX
        hot:
            addi s1, s1, -1
            bnez s1, hot
            frflags t2
            add a0, t1, t2
            ecall
        """
        integrator = ProfileGuidedIntegrator(
            library,
            TestIntegrationConfig(min_block_executions=2, max_block_share=0.9),
        )
        integrated = integrator.integrate(app)
        assert integrated.plan.label == "hot"
        baseline = run_program(app)
        result, fault = integrated.run()
        assert not fault
        assert result.exit_value == baseline.exit_value


class TestRandomBaseline:
    def test_random_suite_sizes(self):
        from repro.baselines import random_suite

        lib = random_suite("alu", 8, seed=1)
        assert len(lib.test_cases) == 8
        assert all(len(c.instructions) == 1 for c in lib.test_cases)

    def test_random_suite_passes_on_healthy_unit(self):
        from repro.baselines import random_suite

        for unit in ("alu", "fpu"):
            lib = random_suite(unit, 5, seed=3)
            result = lib.run_suite()
            assert not result.detected

    def test_random_suites_differ_by_seed(self):
        from repro.baselines import random_suite

        a = random_suite("alu", 5, seed=1).suite_source()
        b = random_suite("alu", 5, seed=2).suite_source()
        assert a != b

    def test_random_fpu_detects_broken_fmul(self):
        from repro.baselines import random_suite
        from repro.cpu.fpu_design import FpuOp, fpu_reference

        class _Broken:
            def execute(self, op, a, b):
                value, flags = fpu_reference(op, a, b)
                return value ^ 1, flags  # corrupt every result LSB

        lib = random_suite("fpu", 20, seed=5)
        result = lib.run_suite(fpu=_Broken())
        assert result.detected


class TestSiliFuzzLite:
    """The top-down baseline generator (§6.1 comparison)."""

    def test_corpus_is_deterministic_per_seed(self):
        from repro.baselines.silifuzz_lite import SiliFuzzLite

        a = SiliFuzzLite("alu", seed=9).corpus(4)
        b = SiliFuzzLite("alu", seed=9).corpus(4)
        assert [s.source for s in a] == [s.source for s in b]
        assert [s.golden for s in a] == [s.golden for s in b]

    def test_clean_hardware_passes(self):
        from repro.baselines.silifuzz_lite import SiliFuzzLite
        from repro.cpu.alu_design import build_alu
        from repro.cpu.cosim import GateAluBackend

        fuzzer = SiliFuzzLite("alu", seed=4)
        corpus = fuzzer.corpus(3)
        verdict = fuzzer.detects(
            corpus, alu=GateAluBackend(build_alu())
        )
        assert not verdict["detected"]

    def test_broken_alu_caught_by_volume(self):
        from repro.baselines.silifuzz_lite import SiliFuzzLite

        fuzzer = SiliFuzzLite("alu", seed=4)
        corpus = fuzzer.corpus(6)
        verdict = fuzzer.detects(corpus, alu=_BrokenAlu())
        assert verdict["detected"]
        assert verdict["by"] is not None

    def test_unknown_unit_rejected(self):
        from repro.baselines.silifuzz_lite import SiliFuzzLite

        with pytest.raises(ValueError):
            SiliFuzzLite("dsp")


class TestConstantPoolPaging:
    """%hi/%lo addressing must hold when the pool crosses 4 KiB pages."""

    def test_large_pool_loads_every_constant(self):
        from repro.cpu.cpu import run_program
        from repro.integration.library_gen import ConstantPool

        pool = ConstantPool("bigpool")
        lines = [".text"]
        values = [(0x1234 * (i + 1)) & 0xFFFFFFFF for i in range(1200)]
        # Load three probes: start, one just past the 4 KiB boundary,
        # and the last entry; xor them into a0.
        probes = (0, 1025, 1199)
        loads = {}
        for index, value in enumerate(values):
            load_lines = pool.load("t1", value)
            if index in probes:
                loads[index] = load_lines
        lines.append("    li a0, 0")
        for index in probes:
            lines.extend(loads[index])
            lines.append("    xor a0, a0, t1")
        lines.append("    ecall")
        lines.extend(pool.data_lines())
        result = run_program("\n".join(lines))
        expected = 0
        for index in probes:
            expected ^= values[index]
        assert result.exit_value == expected

    def test_pool_offsets_monotone(self):
        from repro.integration.library_gen import ConstantPool

        pool = ConstantPool("p")
        first = pool.load("t1", 7)
        second = pool.load("t1", 9)
        assert "%hi(p)" in first[0]
        assert "%hi(p+4)" in second[0]
