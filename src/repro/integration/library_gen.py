"""Software aging-library generation — §3.4.1 of the paper.

The lifted test cases are packaged three ways:

* an **assembly suite**: one self-checking program containing every
  test (register allocation happens here, as §3.3.5 defers it), used
  directly by the Table 6/7 co-simulation harness;
* a **callable routine** (``__vega_tests``) with full save/restore,
  spliced into applications by profile-guided integration; and
* a **C source artifact** with each test in inline-assembly form plus
  helper functions for sequential/random scheduling and an exception
  hook — the file a real deployment would compile and link.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import telemetry
from ..cpu.asm import assemble
from ..cpu.cpu import Cpu, CpuStall
from ..lifting.testcase import TestCase

#: Exit value a spliced application reports when a test fails.  The
#: value is produced with a single ``lui`` (0xDEAD << 12) so that the
#: reporting path itself never flows through the faulty ALU.
FAULT_SENTINEL = 0xDEAD << 12

#: Integer scratch registers for operands (cycled per instruction).
_OPERAND_REGS = ("t1", "t2", "t3", "t4", "t5", "t6", "a6", "a7")
#: Integer registers holding results until the compare phase.
_RESULT_REGS = ("s2", "s3", "s4", "s5", "s6", "s7")
#: FP operand and result registers.
_F_OPERAND_REGS = ("ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7")
_F_RESULT_REGS = ("fs0", "fs1", "fs2", "fs3", "fs4", "fs5")


class AgingFaultDetected(Exception):
    """Raised by the Python runner when a test case fails.

    The C artifact's analogue is the configurable exception hook the
    paper describes for languages with exception support.
    """

    def __init__(self, test_name: str, stalled: bool = False):
        self.test_name = test_name
        self.stalled = stalled
        super().__init__(
            f"aging fault detected by {test_name!r}"
            + (" (CPU stall)" if stalled else "")
        )


@dataclass
class DetectionResult:
    """Outcome of running the suite against a (possibly failing) unit."""

    detected: bool
    detected_by: Optional[str] = None
    detected_index: Optional[int] = None
    stalled: bool = False
    cycles: int = 0


class ConstantPool:
    """ALU-free constant materialization for test bodies.

    Plain ``li`` expands to ``lui + addi``, and ``addi`` flows through
    the very ALU under test.  A unit that corrupts additions then
    corrupts the test's own operands and expected values, which can
    *mask* the fault: the operand error and the result error cancel.
    The pool sidesteps the datapath entirely — constants are assembled
    into a ``.data`` table and fetched with ``lui %hi`` + ``lw %lo``,
    exercising only the load/store path.
    """

    def __init__(self, label: str):
        self.label = label
        self.values: List[int] = []

    def load(self, reg: str, value: int, base: str = "t0") -> List[str]:
        offset = 4 * len(self.values)
        self.values.append(value & 0xFFFFFFFF)
        ref = f"{self.label}+{offset}" if offset else self.label
        return [
            f"    lui {base}, %hi({ref})",
            f"    lw {reg}, %lo({ref})({base})",
        ]

    def data_lines(self) -> List[str]:
        if not self.values:
            return []
        lines = [".data", f"{self.label}:"]
        for start in range(0, len(self.values), 8):
            chunk = self.values[start : start + 8]
            lines.append("    .word " + ", ".join(str(v) for v in chunk))
        lines.append(".text")
        return lines


def render_test_body(
    case: TestCase, fail_label: str, pool: ConstantPool
) -> List[str]:
    """Assembly for one test case: loads, back-to-back ops, compares.

    Operand materialization happens *before* the checked operations so
    the unit under test sees the ops in consecutive issue order — the
    cycle pattern the BMC witness requires.  Every constant comes from
    ``pool`` (see :class:`ConstantPool` for why ``li`` is avoided).
    """
    lines: List[str] = [f"    # {case.name} ({case.model.label})"]
    if len(case.instructions) > len(_RESULT_REGS):
        raise ValueError(
            f"test {case.name} has {len(case.instructions)} checked "
            f"instructions; max {len(_RESULT_REGS)} supported"
        )
    if case.unit in ("alu", "mdu"):
        for index, ins in enumerate(case.instructions):
            lines += pool.load(_OPERAND_REGS[2 * index], ins.operands["rs1"])
            lines += pool.load(
                _OPERAND_REGS[2 * index + 1], ins.operands["rs2"]
            )
        for index, ins in enumerate(case.instructions):
            lines.append(
                f"    {ins.mnemonic} {_RESULT_REGS[index]}, "
                f"{_OPERAND_REGS[2 * index]}, {_OPERAND_REGS[2 * index + 1]}"
            )
        for index, ins in enumerate(case.instructions):
            if ins.expected is None:
                continue
            lines += pool.load("t0", ins.expected)
            lines.append(f"    bne {_RESULT_REGS[index]}, t0, {fail_label}")
    elif case.unit == "fpu":
        lines.append("    fsflags x0")
        for index, ins in enumerate(case.instructions):
            lines += pool.load("t0", ins.operands["rs1"])
            lines.append(f"    fmv.h.x {_F_OPERAND_REGS[2 * index]}, t0")
            lines += pool.load("t0", ins.operands["rs2"])
            lines.append(f"    fmv.h.x {_F_OPERAND_REGS[2 * index + 1]}, t0")
        expected_flags = 0
        for index, ins in enumerate(case.instructions):
            compare_style = ins.mnemonic in ("feq.h", "flt.h", "fle.h")
            if compare_style:
                lines.append(
                    f"    {ins.mnemonic} {_RESULT_REGS[index]}, "
                    f"{_F_OPERAND_REGS[2 * index]}, {_F_OPERAND_REGS[2 * index + 1]}"
                )
            else:
                lines.append(
                    f"    {ins.mnemonic} {_F_RESULT_REGS[index]}, "
                    f"{_F_OPERAND_REGS[2 * index]}, {_F_OPERAND_REGS[2 * index + 1]}"
                )
            if ins.expected_flags is not None:
                expected_flags |= ins.expected_flags
        for index, ins in enumerate(case.instructions):
            if ins.expected is None:
                continue
            compare_style = ins.mnemonic in ("feq.h", "flt.h", "fle.h")
            if compare_style:
                lines += pool.load("t0", ins.expected)
                lines.append(f"    bne {_RESULT_REGS[index]}, t0, {fail_label}")
            else:
                lines += pool.load("t1", ins.expected)
                lines.append(f"    fmv.x.h t0, {_F_RESULT_REGS[index]}")
                lines.append(f"    bne t0, t1, {fail_label}")
        lines += pool.load("t1", expected_flags)
        lines.append("    frflags t0")
        lines.append(f"    bne t0, t1, {fail_label}")
    else:
        raise ValueError(f"unknown unit {case.unit!r}")
    return lines


@dataclass
class AgingLibrary:
    """The packaged test suite."""

    name: str
    test_cases: List[TestCase] = field(default_factory=list)
    seed: int = 2024
    #: suite_cycles()/case_cycle_costs() memo, keyed by (strategy or
    #: "case_costs", test-case fingerprint).  Never compared/serialized.
    _cycles_cache: Dict[tuple, object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: program() memo with the same key discipline; a campaign runs one
    #: suite against hundreds of devices, and assembly is per-suite
    #: work, not per-device work.
    _program_cache: Dict[tuple, object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @classmethod
    def from_lifting_report(
        cls, report, name: str = "vega_tests", seed: int = 2024
    ) -> "AgingLibrary":
        return cls(name=name, test_cases=list(report.test_cases), seed=seed)

    # -- scheduling ------------------------------------------------------
    def order(self, strategy: str = "sequential") -> List[int]:
        """Test execution order per the requested scheduling strategy."""
        indices = list(range(len(self.test_cases)))
        if strategy == "sequential":
            return indices
        if strategy == "random":
            rng = random.Random(self.seed)
            rng.shuffle(indices)
            return indices
        raise ValueError(f"unknown scheduling strategy {strategy!r}")

    # -- standalone suite program -----------------------------------------
    def suite_source(self, strategy: str = "sequential") -> str:
        """A standalone program: run every test, exit 0 or 1+index."""
        lines = [f"# aging test suite {self.name!r}", ".text"]
        executed = self.order(strategy)
        pool = ConstantPool(f"__pool_{_c_ident(self.name)}")
        for position, test_index in enumerate(executed):
            case = self.test_cases[test_index]
            lines.extend(render_test_body(case, f"fail_{position}", pool))
        # Exit codes are lui-encoded (value << 12): a single lui never
        # touches the ALU backend, so a corrupted unit cannot falsify
        # the suite's own verdict.
        lines.append("    lui a0, 0")
        lines.append("    ecall")
        for position, test_index in enumerate(executed):
            lines.append(f"fail_{position}:")
            lines.append(f"    lui a0, {position + 1}")
            lines.append("    ecall")
        lines.extend(pool.data_lines())
        return "\n".join(lines) + "\n"

    def run_suite(
        self,
        alu=None,
        fpu=None,
        mdu=None,
        strategy: str = "sequential",
        max_instructions: int = 500_000,
    ) -> DetectionResult:
        """Execute the suite against the given unit backends.

        A non-zero exit identifies the detecting test; a CPU stall (the
        handshake-failure mode) also counts as detection, per §5.2.3.
        """
        executed = self.order(strategy)
        cpu = Cpu(self.program(strategy), alu=alu, fpu=fpu, mdu=mdu)
        telemetry.add("integration.suite_runs")
        try:
            result = cpu.run(max_instructions=max_instructions)
        except CpuStall:
            return DetectionResult(
                detected=True, stalled=True, cycles=cpu.cycles
            )
        return self.decode_exit(result.exit_value, executed, result.cycles)

    def program(self, strategy: str = "sequential"):
        """The assembled suite program (memoized per strategy + cases).

        ``Cpu`` copies the program's data image into its own memory, so
        one assembled :class:`~repro.cpu.asm.Program` is safely shared
        by every execution — the fleet campaign engine leans on this to
        pay assembly once per suite instead of once per device.
        """
        key = (strategy, self._fingerprint())
        program = self._program_cache.get(key)
        if program is None:
            program = assemble(self.suite_source(strategy))
            self._program_cache = {
                k: v for k, v in self._program_cache.items() if k[1] == key[1]
            }
            self._program_cache[key] = program
        return program

    def decode_exit(
        self,
        exit_value: int,
        executed: Sequence[int],
        cycles: int = 0,
    ) -> DetectionResult:
        """Map a lui-encoded suite exit value to a detection verdict.

        Genuine verdicts are written with a single ``lui``, so their low
        12 bits are always zero.  Nonzero low bits therefore mean the
        unit corrupted the verdict value itself — an unambiguous
        detection, but the high bits are untrustworthy even when they
        happen to land on a valid test position, so no attribution is
        made.
        """
        if exit_value == 0:
            return DetectionResult(detected=False, cycles=cycles)
        if exit_value & 0xFFF:
            return DetectionResult(detected=True, cycles=cycles)
        position = (exit_value >> 12) - 1
        if not 0 <= position < len(executed):
            # Out-of-range verdict (e.g. FAULT_SENTINEL): detection,
            # attribution unknown.
            return DetectionResult(detected=True, cycles=cycles)
        test_index = executed[position]
        return DetectionResult(
            detected=True,
            detected_by=self.test_cases[test_index].name,
            detected_index=test_index,
            cycles=cycles,
        )

    def _fingerprint(self) -> tuple:
        """Identity of the current test-case list, for memo invalidation.

        Pairs each case's object identity with its name: appending,
        removing, or replacing cases (``cmd_integrate`` extends the
        list in place) changes the tuple and invalidates the memo.
        """
        return tuple((id(c), c.name) for c in self.test_cases)

    def suite_cycles(self, strategy: str = "sequential") -> int:
        """Cycle cost of one full, fault-free suite execution (Table 5).

        Memoized per (strategy, current test cases) with no unit
        backends — every report/summary path calls this, and the suite
        itself never changes between calls, so the full CPU run happens
        once instead of per print.
        """
        if not self.test_cases:
            return 0
        key = (strategy, self._fingerprint())
        cached = self._cycles_cache.get(key)
        if cached is not None:
            return cached
        cycles = self.run_suite(strategy=strategy).cycles
        # One entry per strategy is enough: a changed fingerprint means
        # stale entries can never be addressed again.
        self._cycles_cache = {
            k: v for k, v in self._cycles_cache.items() if k[1] == key[1]
        }
        self._cycles_cache[key] = cycles
        telemetry.add("integration.suite_cycles", cycles)
        return cycles

    def case_cycle_costs(self) -> Dict[str, int]:
        """Measured fault-free cycle cost of each test case, by name.

        Like :meth:`~repro.integration.profile.ProfileGuidedIntegrator.
        estimate_overhead`, the cost is measured rather than modelled:
        each case is packaged as a single-test suite, assembled, and run
        once on the golden model.  The online scheduler prices its
        per-test dispatch arms with these numbers, so "detection value
        per cycle" uses the exact cycles a device would spend.
        Memoized with the same fingerprint discipline as
        :meth:`suite_cycles`.
        """
        key = ("case_costs", self._fingerprint())
        cached = self._cycles_cache.get(key)
        if cached is not None:
            return dict(cached)
        costs = {
            case.name: AgingLibrary(
                name=f"{self.name}__case", test_cases=[case]
            ).suite_cycles()
            for case in self.test_cases
        }
        self._cycles_cache = {
            k: v for k, v in self._cycles_cache.items() if k[1] == key[1]
        }
        self._cycles_cache[key] = costs
        return dict(costs)

    def raise_on_fault(self, result: DetectionResult) -> None:
        """Exception-style reporting, as the generated library offers."""
        if result.detected:
            raise AgingFaultDetected(
                result.detected_by or "<stall watchdog>",
                stalled=result.stalled,
            )

    # -- callable routine for application splicing ------------------------
    def routine_source(self, strategy: str = "sequential") -> str:
        """``__vega_tests``: callable, state-preserving test routine.

        Saves every register the tests touch (including ``fflags`` and
        FP registers) so it can be spliced into arbitrary application
        code; on failure it reports the :data:`FAULT_SENTINEL` exit.
        """
        int_saved = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "a6", "a7",
                     "s2", "s3", "s4", "s5", "s6", "s7"]
        f_saved = list(_F_OPERAND_REGS) + list(_F_RESULT_REGS)
        frame = 4 * (len(int_saved) + 1) + 2 * len(f_saved) + 2
        frame = (frame + 15) // 16 * 16
        lines = ["__vega_tests:"]
        lines.append(f"    addi sp, sp, -{frame}")
        offset = 0
        for reg in int_saved:
            lines.append(f"    sw {reg}, {offset}(sp)")
            offset += 4
        for reg in f_saved:
            lines.append(f"    fsh {reg}, {offset}(sp)")
            offset += 2
        offset = (offset + 3) // 4 * 4
        flags_offset = offset
        lines.append("    frflags t0")
        lines.append(f"    sw t0, {flags_offset}(sp)")
        pool = ConstantPool("__vega_pool")
        for position, test_index in enumerate(self.order(strategy)):
            case = self.test_cases[test_index]
            lines.extend(render_test_body(case, "__vega_fault", pool))
        lines.append("__vega_restore:")
        lines.append(f"    lw t0, {flags_offset}(sp)")
        lines.append("    fsflags t0")
        offset = 0
        for reg in int_saved:
            lines.append(f"    lw {reg}, {offset}(sp)")
            offset += 4
        for reg in f_saved:
            lines.append(f"    flh {reg}, {offset}(sp)")
            offset += 2
        lines.append(f"    addi sp, sp, {frame}")
        lines.append("    ret")
        lines.append("__vega_fault:")
        lines.append(f"    lui a0, {FAULT_SENTINEL >> 12}")
        lines.append("    ecall")
        lines.extend(pool.data_lines())
        return "\n".join(lines) + "\n"

    # -- C artifact --------------------------------------------------------
    def c_source(self) -> str:
        """The generated C file of §3.4.1 (inline asm + helpers)."""
        parts = [
            "/* Auto-generated by Vega: aging-related SDC test library. */",
            "#include <stdint.h>",
            "#include <stddef.h>",
            "",
            "typedef void (*vega_fault_handler)(const char *test);",
            "static vega_fault_handler vega_on_fault;",
            "void vega_set_fault_handler(vega_fault_handler h) {",
            "    vega_on_fault = h;",
            "}",
            "",
        ]
        for case in self.test_cases:
            ident = _c_ident(case.name)
            pool = ConstantPool(f"vega_pool_{ident}")
            body = "\\n\\t".join(
                line.strip()
                for line in render_test_body(case, f"9f", pool)
                if not line.strip().startswith("#")
            )
            parts.append(f"/* {case.model.label} */")
            if pool.values:
                words = ", ".join(f"{v:#x}u" for v in pool.values)
                parts.append(
                    f"static const uint32_t vega_pool_{ident}[] = {{{words}}};"
                )
            parts.append(f"static int vega_test_{_c_ident(case.name)}(void) {{")
            parts.append("    int ok = 1;")
            parts.append(f'    __asm__ volatile("{body}\\n\\t"')
            parts.append('        "j 8f\\n"')
            parts.append('        "9:\\n\\t" "li %0, 0\\n"')
            parts.append('        "8:"')
            parts.append('        : "+r"(ok) : : "memory");')
            parts.append("    return ok;")
            parts.append("}")
            parts.append("")
        parts.append("static int (*const vega_all_tests[])(void) = {")
        for case in self.test_cases:
            parts.append(f"    vega_test_{_c_ident(case.name)},")
        parts.append("};")
        parts.append(
            "static const size_t vega_test_count = "
            "sizeof(vega_all_tests) / sizeof(vega_all_tests[0]);"
        )
        parts.append("")
        parts.append("int vega_run_sequential(void) {")
        parts.append("    for (size_t i = 0; i < vega_test_count; i++)")
        parts.append("        if (!vega_all_tests[i]()) {")
        parts.append('            if (vega_on_fault) vega_on_fault("");')
        parts.append("            return (int)i + 1;")
        parts.append("        }")
        parts.append("    return 0;")
        parts.append("}")
        parts.append("")
        parts.append("int vega_run_random(uint32_t seed) {")
        parts.append("    for (size_t i = 0; i < vega_test_count; i++) {")
        parts.append("        seed = seed * 1664525u + 1013904223u;")
        parts.append("        size_t k = seed % vega_test_count;")
        parts.append("        if (!vega_all_tests[k]()) {")
        parts.append('            if (vega_on_fault) vega_on_fault("");')
        parts.append("            return (int)k + 1;")
        parts.append("        }")
        parts.append("    }")
        parts.append("    return 0;")
        parts.append("}")
        return "\n".join(parts) + "\n"


def _c_ident(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)
