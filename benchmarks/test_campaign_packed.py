"""Fault-parallel packed campaign — bit-plane packing vs serial paths.

The packed prefilter multiplexes every injected failure model of a
device group into one bit-plane of a single compiled gate simulation:
one shadow-mux netlist carries all models, one packed pass replays the
golden stimulus for the whole group, and only the planes that diverge
from the golden trace pay a per-device resolution (ISA replay or
lockstep tail co-simulation).  The serial engine pays one full
co-simulation per (device, suite) instead.

This benchmark runs one 64-device fleet through three paths — the
naive per-device loop, the campaign engine with packing disabled, and
the engine with packing on — asserts the reports are byte-identical,
and records devices/sec.  Acceptance (non-smoke): packed is at least
5x the naive loop and at least 2x the unpacked serial engine.

``VEGA_SMOKE=1`` shrinks the fleet and relaxes the floors so CI can
exercise every path in seconds.
"""

import os
import time

from repro.baselines.random_tests import random_suite
from repro.baselines.silifuzz_lite import SiliFuzzLite
from repro.campaign import CampaignEngine, sample_fleet
from repro.core.config import CampaignConfig
from repro.core.rng import stream_seed
from repro.cpu.cosim import GateAluBackend
from repro.integration.library_gen import AgingLibrary
from repro.lifting.instrument import make_failing_netlist

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
DEVICES = 8 if SMOKE else 64
REPEATS = 1 if SMOKE else 3
#: Floors on the packed path (non-smoke): vs naive, vs unpacked serial.
MIN_VS_NAIVE = 1.5 if SMOKE else 5.0
MIN_VS_SERIAL = 1.0 if SMOKE else 2.0


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _config(packed):
    return CampaignConfig(
        devices=DEVICES,
        seed=2024,
        shard_size=8,
        workers=1,
        silifuzz_snapshots=3,
        base_onset_years=6.0,
        packed=packed,
    )


def _naive_fleet(ctx, fleet, config):
    """Seed-style loop: every per-suite fixed cost paid per device."""
    unit = ctx.alu
    verdicts = []
    size = max(1, len(unit.suite(False).test_cases))
    for spec in fleet:
        vega = AgingLibrary(
            name="vega_naive",
            test_cases=list(unit.suite(False).test_cases),
        )
        rnd = random_suite(
            "alu", size,
            seed=stream_seed("campaign.random_suite", config.seed),
        )
        fuzz = SiliFuzzLite(
            "alu", seed=stream_seed("campaign.silifuzz", config.seed)
        )
        snapshots = fuzz.corpus(config.silifuzz_snapshots)
        if spec.faulty:
            failing = make_failing_netlist(unit.netlist, spec.model).netlist

            def backends():
                return {
                    "alu": GateAluBackend(failing, seed=spec.backend_seed)
                }

        else:

            def backends():
                return {}

        verdicts.append(
            (
                spec.device_id,
                vega.run_suite(**backends()).detected,
                rnd.run_suite(**backends()).detected,
                bool(fuzz.detects(snapshots, **backends())["detected"]),
            )
        )
    return verdicts


def _engine_fleet(ctx, packed):
    engine = CampaignEngine(
        ctx.alu.netlist,
        "alu",
        ctx.alu.suite(False),
        ctx.alu.failure_models(),
        _config(packed),
    )
    return engine.run()


def _engine_verdicts(report):
    return [
        (
            row["device"],
            *(outcome["detected"] for outcome in row["outcomes"]),
        )
        for row in report.device_rows
    ]


def test_campaign_packed(ctx, benchmark, recorder):
    config = _config(True)
    models = ctx.alu.failure_models()
    fleet = sample_fleet(config, models, config.base_onset_years)
    _engine_fleet(ctx, True)  # warm compile / assembly / netlist caches

    naive_time, naive_verdicts = _timed(
        lambda: _naive_fleet(ctx, fleet, config), repeats=1
    )
    serial_time, serial_report = _timed(lambda: _engine_fleet(ctx, False))
    packed_time, packed_report = _timed(lambda: _engine_fleet(ctx, True))

    # The packed path is an optimization, never a semantic change: the
    # report must be byte-identical and the per-device verdicts must
    # match the naive loop's.
    assert packed_report.to_json() == serial_report.to_json()
    assert _engine_verdicts(packed_report) == naive_verdicts

    rows = [
        f"ALU packed campaign: {DEVICES}-device fleet, "
        f"{len(models)} failure models, 3 suites"
        + (" [smoke]" if SMOKE else ""),
        "path                              | wall (s) | devices/s | speedup",
    ]
    for path_name, label, wall in (
        ("naive_loop", "naive per-device loop", naive_time),
        ("engine_serial", "campaign engine (unpacked)", serial_time),
        ("engine_packed", "campaign engine (packed)", packed_time),
    ):
        rows.append(
            f"{label:33s} | {wall:8.3f} | {DEVICES / wall:9.1f} "
            f"| {naive_time / wall:6.2f}x"
        )
        recorder.sample(
            "campaign_packed", "wall_time", wall, "seconds",
            path=path_name, devices=DEVICES, seed=config.seed, timing=True,
        )
        recorder.sample(
            "campaign_packed", "devices_per_second", DEVICES / wall,
            "devices/s", path=path_name, devices=DEVICES, seed=config.seed,
            timing=True, bigger_is_better=True,
        )
    recorder.sample(
        "campaign_packed", "speedup_vs_naive", naive_time / packed_time,
        "ratio", path="engine_packed", devices=DEVICES, seed=config.seed,
        timing=True, bigger_is_better=True,
    )
    recorder.sample(
        "campaign_packed", "speedup_vs_serial", serial_time / packed_time,
        "ratio", path="engine_packed", devices=DEVICES, seed=config.seed,
        timing=True, bigger_is_better=True,
    )
    recorder.sample(
        "campaign_packed", "devices_simulated", packed_report.devices,
        "devices", seed=config.seed, bigger_is_better=True,
    )
    recorder.sample(
        "campaign_packed", "failure_models", len(models), "models",
        seed=config.seed, bigger_is_better=True,
    )
    recorder.table("campaign_packed", "\n".join(rows))

    assert naive_time / packed_time >= MIN_VS_NAIVE, (
        f"packed campaign only {naive_time / packed_time:.2f}x faster "
        f"than the naive loop"
    )
    assert serial_time / packed_time >= MIN_VS_SERIAL, (
        f"packed campaign only {serial_time / packed_time:.2f}x faster "
        f"than the unpacked engine"
    )

    report = benchmark(lambda: _engine_fleet(ctx, True))
    assert report.devices == DEVICES
