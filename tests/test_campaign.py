"""Tests for the fleet-scale fault-injection campaign engine."""

import dataclasses

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignReport,
    fleet_digest,
    sample_fleet,
)
from repro.core import telemetry
from repro.core.artifacts import ArtifactCache
from repro.core.config import (
    CampaignConfig,
    ErrorLiftingConfig,
    VegaConfig,
)
from repro.core.rng import stream_rng, stream_seed
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sta.timing import TimingViolation

MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.RANDOM),
]

CONFIG = CampaignConfig(
    devices=8,
    seed=11,
    shard_size=3,
    workers=1,
    silifuzz_snapshots=3,
    base_onset_years=6.0,
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def vega_library(alu_netlist):
    """A real lifted suite for the fleet's shared endpoint pair."""
    lifter = ErrorLifter(alu_netlist, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    return AgingLibrary(
        name="campaign_vega",
        test_cases=lifter.lift_pair(violation).test_cases,
    )


def make_engine(alu_netlist, vega_library, config=CONFIG, cache=None):
    return CampaignEngine(
        alu_netlist, "alu", vega_library, MODELS, config, cache=cache
    )


class TestRngStreams:
    def test_stream_seed_is_stable(self):
        assert stream_seed("x", 1, 2) == stream_seed("x", 1, 2)
        assert stream_seed("x", 1, 2) != stream_seed("x", 2, 1)
        assert stream_seed("x", 1) != stream_seed("y", 1)

    def test_stream_rng_reproduces(self):
        assert (
            stream_rng("s", 3).random() == stream_rng("s", 3).random()
        )


class TestFleetSampling:
    def test_sampling_is_deterministic(self):
        first = sample_fleet(CONFIG, MODELS, 6.0)
        second = sample_fleet(CONFIG, MODELS, 6.0)
        assert first == second
        assert fleet_digest(first) == fleet_digest(second)

    def test_seed_changes_fleet(self):
        other = dataclasses.replace(CONFIG, seed=12)
        assert fleet_digest(sample_fleet(CONFIG, MODELS, 6.0)) != (
            fleet_digest(sample_fleet(other, MODELS, 6.0))
        )

    def test_device_identity_is_per_index(self):
        fleet = sample_fleet(CONFIG, MODELS, 6.0)
        assert [spec.index for spec in fleet] == list(range(CONFIG.devices))
        assert fleet[3].device_id == "dev-0003"
        # Growing the fleet never re-rolls existing devices.
        bigger = dataclasses.replace(CONFIG, devices=CONFIG.devices + 4)
        grown = sample_fleet(bigger, MODELS, 6.0)
        assert grown[: CONFIG.devices] == fleet

    def test_empty_catalogue_is_all_healthy(self):
        fleet = sample_fleet(CONFIG, [], 6.0)
        assert all(not spec.faulty for spec in fleet)
        assert all(spec.model is None for spec in fleet)

    def test_faulty_devices_carry_models(self):
        fleet = sample_fleet(CONFIG, MODELS, 6.0)
        faulty = [spec for spec in fleet if spec.faulty]
        assert faulty, "fixture fleet should contain faulty devices"
        for spec in faulty:
            assert spec.model in MODELS
            assert spec.onset_years <= CONFIG.mission_years


class TestCampaignDeterminism:
    def test_worker_count_is_invisible(self, alu_netlist, vega_library):
        serial = make_engine(alu_netlist, vega_library).run()
        parallel_cfg = dataclasses.replace(CONFIG, workers=4)
        parallel = make_engine(
            alu_netlist, vega_library, config=parallel_cfg
        ).run()
        assert serial.to_json() == parallel.to_json()

    def test_faulty_fleet_metrics(self, alu_netlist, vega_library):
        report = make_engine(alu_netlist, vega_library).run()
        assert report.devices == CONFIG.devices
        assert report.faulty_devices + report.healthy_devices == (
            report.devices
        )
        assert report.false_positives == 0
        # Vega detects every injected failure on this pair.
        assert report.suite_coverage_pct("vega") == 100.0
        assert report.escapes + report.detected_devices == (
            report.faulty_devices
        )

    def test_report_round_trips(self, alu_netlist, vega_library):
        report = make_engine(alu_netlist, vega_library).run()
        again = CampaignReport.from_json(report.to_json())
        assert again.to_json() == report.to_json()

    def test_markdown_render(self, alu_netlist, vega_library):
        report = make_engine(alu_netlist, vega_library).run()
        text = report.to_markdown()
        assert "## Detection coverage" in text
        assert "## Corners" in text
        assert "dev-0000" in text


class TestCampaignResume:
    def test_resume_reexecutes_nothing(
        self, alu_netlist, vega_library, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        first = make_engine(alu_netlist, vega_library, cache=cache)
        report = first.run()
        assert first.resumed_shards == []
        assert first.executed_shards  # everything ran

        second = make_engine(alu_netlist, vega_library, cache=cache)
        resumed = second.run(resume=True)
        assert second.executed_shards == []
        assert second.resumed_shards == first.executed_shards
        assert resumed.to_json() == report.to_json()

    def test_killed_campaign_resumes_completed_shards(
        self, alu_netlist, vega_library, tmp_path, monkeypatch
    ):
        from repro.campaign import engine as engine_mod

        cache = ArtifactCache(tmp_path)
        budget = CONFIG.shard_size  # die after the first shard
        real_run_device = engine_mod.DeviceRunner.run_device

        def dying_run_device(self, spec):
            nonlocal budget
            if budget <= 0:
                raise RuntimeError("killed")
            budget -= 1
            return real_run_device(self, spec)

        monkeypatch.setattr(
            engine_mod.DeviceRunner, "run_device", dying_run_device
        )
        killed = make_engine(alu_netlist, vega_library, cache=cache)
        with pytest.raises(RuntimeError):
            killed.run()
        monkeypatch.undo()

        survivor = make_engine(alu_netlist, vega_library, cache=cache)
        report = survivor.run(resume=True)
        assert survivor.resumed_shards == [0]
        assert 0 not in survivor.executed_shards
        # The resumed run equals a from-scratch run.
        fresh = make_engine(alu_netlist, vega_library).run()
        assert report.to_json() == fresh.to_json()

    def test_resume_with_different_workers_is_identical(
        self, alu_netlist, vega_library, tmp_path, monkeypatch
    ):
        """Checkpoints are parallelism-agnostic: a campaign killed at
        one worker count and resumed at another yields a byte-identical
        report (``workers`` never enters the campaign key)."""
        from repro.campaign import engine as engine_mod

        cache = ArtifactCache(tmp_path)
        budget = CONFIG.shard_size  # die after the first shard
        real_run_device = engine_mod.DeviceRunner.run_device

        def dying_run_device(self, spec):
            nonlocal budget
            if budget <= 0:
                raise RuntimeError("killed")
            budget -= 1
            return real_run_device(self, spec)

        monkeypatch.setattr(
            engine_mod.DeviceRunner, "run_device", dying_run_device
        )
        killed = make_engine(alu_netlist, vega_library, cache=cache)
        with pytest.raises(RuntimeError):
            killed.run()
        monkeypatch.undo()

        parallel_cfg = dataclasses.replace(CONFIG, workers=4)
        survivor = make_engine(
            alu_netlist, vega_library, config=parallel_cfg, cache=cache
        )
        report = survivor.run(resume=True)
        assert survivor.resumed_shards == [0]
        fresh = make_engine(alu_netlist, vega_library).run()
        assert report.to_json() == fresh.to_json()

        # Same campaign key at any worker count — that is what lets
        # the checkpoints be shared in the first place.
        fleet = sample_fleet(CONFIG, MODELS, 6.0)
        assert killed.campaign_key(fleet) == survivor.campaign_key(fleet)

    def test_resume_without_cache_runs_everything(
        self, alu_netlist, vega_library
    ):
        engine = make_engine(alu_netlist, vega_library)
        engine.run(resume=True)
        assert engine.resumed_shards == []

    def test_campaign_key_tracks_inputs(self, alu_netlist, vega_library):
        engine = make_engine(alu_netlist, vega_library)
        fleet = sample_fleet(CONFIG, MODELS, 6.0)
        assert engine.campaign_key(fleet) == engine.campaign_key(fleet)
        reseeded = dataclasses.replace(CONFIG, seed=99)
        other = make_engine(alu_netlist, vega_library, config=reseeded)
        other_fleet = sample_fleet(reseeded, MODELS, 6.0)
        assert engine.campaign_key(fleet) != other.campaign_key(other_fleet)


class TestCampaignTelemetry:
    def test_device_events_and_counters(self, alu_netlist, vega_library):
        tele = telemetry.Telemetry(run_id="campaign-test")
        with telemetry.use(tele):
            report = make_engine(alu_netlist, vega_library).run()
        events = [
            r
            for r in tele.records
            if r.get("type") == "event" and r["name"] == "campaign.device"
        ]
        assert len(events) == CONFIG.devices
        assert tele.counters["campaign.devices"] == CONFIG.devices
        assert (
            tele.counters["campaign.faulty_devices"]
            == report.faulty_devices
        )
        spans = [
            r
            for r in tele.records
            if r.get("type") == "span" and r["name"] == "campaign.run"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["devices"] == CONFIG.devices

    def test_trace_round_trips(self, alu_netlist, vega_library, tmp_path):
        tele = telemetry.Telemetry(run_id="campaign-trace")
        with telemetry.use(tele):
            make_engine(alu_netlist, vega_library).run()
        path = tmp_path / "trace.jsonl"
        tele.write_jsonl(str(path))
        records = telemetry.read_trace(str(path))
        assert telemetry.dump_trace(records) == tele.to_jsonl()


class TestCampaignConfigPlumbing:
    def test_vega_config_carries_campaign(self):
        assert VegaConfig().campaign == CampaignConfig()

    def test_unknown_suite_is_rejected(self, alu_netlist, vega_library):
        config = dataclasses.replace(
            CONFIG, suites=("vega", "nonsense")
        )
        with pytest.raises(ValueError, match="unknown campaign suite"):
            make_engine(alu_netlist, vega_library, config=config).run()
