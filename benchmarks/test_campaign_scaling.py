"""Scaling — the campaign engine vs a naive per-device loop.

The naive fleet loop pays every suite's fixed costs once *per device*:
it re-assembles the vega and random suites, regenerates and re-runs the
SiliFuzz corpus against the golden model, and re-instruments the failing
netlist for each device it visits.  The campaign engine hoists all of
that to per-campaign (or per-failure-model) work — devices share
assembled programs, the generated corpus, and instrumented netlists —
so its per-device cost is pure co-simulation.  Sharded fork workers
then scale that across cores where available.

This benchmark samples one fleet, runs it through both paths, checks
the per-device verdicts agree exactly, and records the devices/sec
table.  Acceptance: the engine (serial) is at least 3x faster than the
naive loop — an algorithmic floor that holds on a single CPU.

``VEGA_SMOKE=1`` shrinks the fleet and relaxes the threshold so CI can
exercise every path in seconds.
"""

import os
import time

from repro.baselines.random_tests import random_suite
from repro.baselines.silifuzz_lite import SiliFuzzLite
from repro.campaign import CampaignEngine, sample_fleet
from repro.core.config import CampaignConfig
from repro.core.rng import stream_seed
from repro.cpu.cosim import GateAluBackend
from repro.integration.library_gen import AgingLibrary
from repro.lifting.instrument import make_failing_netlist

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
DEVICES = 6 if SMOKE else 32
MIN_SPEEDUP = 1.5 if SMOKE else 3.0
REPEATS = 1 if SMOKE else 3


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _config(workers):
    return CampaignConfig(
        devices=DEVICES,
        seed=2024,
        shard_size=4,
        workers=workers,
        silifuzz_snapshots=3,
        base_onset_years=6.0,
    )


def _naive_fleet(ctx, fleet, config):
    """Seed-style loop: every per-suite fixed cost paid per device."""
    unit = ctx.alu
    verdicts = []
    size = max(1, len(unit.suite(False).test_cases))
    for spec in fleet:
        # Fresh library objects: assembly happens again for this device.
        vega = AgingLibrary(
            name="vega_naive",
            test_cases=list(unit.suite(False).test_cases),
        )
        rnd = random_suite(
            "alu", size, seed=stream_seed("campaign.random_suite", config.seed)
        )
        fuzz = SiliFuzzLite(
            "alu", seed=stream_seed("campaign.silifuzz", config.seed)
        )
        snapshots = fuzz.corpus(config.silifuzz_snapshots)
        if spec.faulty:
            failing = make_failing_netlist(unit.netlist, spec.model).netlist

            def backends():
                # Fresh backend per suite: each suite sees the device's
                # RNG stream from its seed (as the engine guarantees).
                return {
                    "alu": GateAluBackend(failing, seed=spec.backend_seed)
                }

        else:

            def backends():
                return {}

        verdicts.append(
            (
                spec.device_id,
                vega.run_suite(**backends()).detected,
                rnd.run_suite(**backends()).detected,
                bool(fuzz.detects(snapshots, **backends())["detected"]),
            )
        )
    return verdicts


def _engine_fleet(ctx, workers):
    engine = CampaignEngine(
        ctx.alu.netlist,
        "alu",
        ctx.alu.suite(False),
        ctx.alu.failure_models(),
        _config(workers),
    )
    return engine.run()


def _engine_verdicts(report):
    return [
        (
            row["device"],
            *(
                outcome["detected"]
                for outcome in row["outcomes"]
            ),
        )
        for row in report.device_rows
    ]


def test_campaign_scaling(ctx, benchmark, recorder):
    config = _config(1)
    models = ctx.alu.failure_models()
    fleet = sample_fleet(config, models, config.base_onset_years)
    _engine_fleet(ctx, 1)  # warm compile / assembly / netlist caches

    naive_time, naive_verdicts = _timed(
        lambda: _naive_fleet(ctx, fleet, config), repeats=1
    )
    serial_time, serial_report = _timed(lambda: _engine_fleet(ctx, 1))
    par_time, par_report = _timed(lambda: _engine_fleet(ctx, 0))

    # Both paths must call every device identically, and the report must
    # be worker-count invariant.
    assert _engine_verdicts(serial_report) == naive_verdicts
    assert par_report.to_json() == serial_report.to_json()

    rows = [
        f"ALU campaign: {DEVICES}-device fleet, "
        f"{len(models)} failure models, 3 suites, "
        f"{os.cpu_count()} CPU(s)"
        + (" [smoke]" if SMOKE else ""),
        "path                              | wall (s) | devices/s | speedup",
    ]
    for path_name, label, wall in (
        ("naive_loop", "naive per-device loop", naive_time),
        ("engine_serial", "campaign engine (serial)", serial_time),
        ("engine_parallel", "campaign engine (workers=0)", par_time),
    ):
        rows.append(
            f"{label:33s} | {wall:8.3f} | {DEVICES / wall:9.1f} "
            f"| {naive_time / wall:6.2f}x"
        )
        recorder.sample(
            "campaign_scaling", "wall_time", wall, "seconds",
            path=path_name, devices=DEVICES, seed=config.seed, timing=True,
        )
        recorder.sample(
            "campaign_scaling", "devices_per_second", DEVICES / wall,
            "devices/s", path=path_name, devices=DEVICES, seed=config.seed,
            timing=True, bigger_is_better=True,
        )
    recorder.sample(
        "campaign_scaling", "speedup", naive_time / serial_time, "ratio",
        path="engine_serial", devices=DEVICES, seed=config.seed,
        timing=True, bigger_is_better=True,
    )
    recorder.sample(
        "campaign_scaling", "devices_simulated", serial_report.devices,
        "devices", seed=config.seed, bigger_is_better=True,
    )
    recorder.sample(
        "campaign_scaling", "failure_models", len(models), "models",
        seed=config.seed, bigger_is_better=True,
    )
    recorder.table("campaign_scaling", "\n".join(rows))

    assert naive_time / serial_time >= MIN_SPEEDUP, (
        f"campaign engine only {naive_time / serial_time:.2f}x faster "
        f"than the naive loop"
    )

    report = benchmark(lambda: _engine_fleet(ctx, 1))
    assert report.devices == DEVICES
