#!/usr/bin/env python3
"""Runtime fault response: detect, classify, and mitigate (§1, §3.4.1).

The paper's motivation is a mechanism that "not only detects potentially
aged hardware in the field, but also triggers software mitigations at
application runtime."  This demo closes that loop on a live workload:

1. splice a lifted aging-test suite into an application;
2. run it on a gate-level ALU carrying an injected aging failure;
3. let each response policy react: retire (fail-stop), retry
   (transient-vs-persistent triage), and fallback (software emulation
   that recomputes the correct result).

Run:  python examples/fault_response_demo.py
"""

from repro.core.config import ErrorLiftingConfig, TestIntegrationConfig
from repro.cpu.alu_design import build_alu
from repro.cpu.cosim import GateAluBackend
from repro.cpu.cpu import run_program
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.integration.profile import ProfileGuidedIntegrator
from repro.integration.response import (
    FallbackResponse,
    RetireResponse,
    RetryResponse,
    run_with_protection,
)
from repro.lifting.instrument import make_failing_netlist
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sta.timing import TimingViolation

APP = """
    li s0, 0
    li s1, 32
outer:
    li s2, 48
inner:
    add s0, s0, s2
    xor s0, s0, s1
    addi s2, s2, -1
    bnez s2, inner
    addi s1, s1, -1
    bnez s1, outer
    mv a0, s0
    ecall
"""


def main() -> None:
    baseline = run_program(APP)
    print(f"application baseline: checksum {baseline.exit_value:#010x} "
          f"in {baseline.cycles} cycles\n")

    print("[1/3] Lifting a test suite and splicing it in ...")
    alu = build_alu()
    lifter = ErrorLifter(alu, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    library = AgingLibrary(
        name="guard", test_cases=lifter.lift_pair(violation).test_cases
    )
    app = ProfileGuidedIntegrator(
        library, TestIntegrationConfig(overhead_threshold=0.5)
    ).integrate(APP)
    print(f"  {len(library.test_cases)} tests at {app.plan.label!r} "
          f"(est. overhead {app.plan.estimated_overhead:.1%})")

    print("\n[2/3] Healthy hardware ...")
    outcome = run_with_protection(app, "alu")
    print(f"  action: {outcome.action.value}; checksum "
          f"{outcome.result.exit_value:#010x} (matches: "
          f"{outcome.result.exit_value == baseline.exit_value})")

    print("\n[3/3] Aged hardware (injected setup failure, C=1) ...")
    model = FailureModel(
        "a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE
    )
    failing = make_failing_netlist(alu, model).netlist
    for policy in (RetireResponse(), RetryResponse(), FallbackResponse()):
        outcome = run_with_protection(
            app,
            "alu",
            backends={"alu": GateAluBackend(failing)},
            policy=policy,
        )
        verdict = (
            f"checksum {outcome.result.exit_value:#010x} "
            f"(correct: {outcome.result.exit_value == baseline.exit_value})"
            if outcome.completed
            else "no result (halted)"
        )
        print(f"  policy={policy.name:8s} -> action={outcome.action.value:10s} {verdict}")
        for incident in outcome.incidents:
            print(f"      incident: {incident.detail}")


if __name__ == "__main__":
    main()
