"""Figure 9 — runtime overhead of profile-guided test integration.

Every embench-style workload is profiled, spliced with the aging test
suite at a routinely-but-not-hotly executed block, and re-run.  "-N"
uses the suites built without the §3.3.4 mitigation, "-M" the suites
built with it, matching the paper's configuration labels.

Paper shape: average overhead below ~1% with several benchmarks in the
measurement noise; correctness of every workload is preserved.
"""

from repro.core.config import TestIntegrationConfig
from repro.cpu.cpu import run_program
from repro.integration.library_gen import AgingLibrary
from repro.integration.profile import ProfileGuidedIntegrator
from repro.workloads import WORKLOADS

OVERHEAD_THRESHOLD = 0.01


def _combined_library(ctx, mitigation: bool) -> AgingLibrary:
    """ALU + FPU tests in one library, as an application would embed."""
    library = AgingLibrary(
        name=f"vega_all_{'m' if mitigation else 'n'}"
    )
    library.test_cases.extend(ctx.alu.suite(mitigation).test_cases)
    library.test_cases.extend(ctx.fpu.suite(mitigation).test_cases)
    return library


def test_fig9_integration_overhead(ctx, benchmark, recorder):
    config = TestIntegrationConfig(overhead_threshold=OVERHEAD_THRESHOLD)
    rows = ["workload    | baseline cycles | -N overhead | -M overhead | gated(-N)"]
    overheads = {"-N": [], "-M": []}
    apps = {}
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]
        baseline = run_program(workload.source)
        entry = {"base": baseline.cycles}
        for label, mitigation in (("-N", False), ("-M", True)):
            library = _combined_library(ctx, mitigation)
            integrator = ProfileGuidedIntegrator(library, config)
            app = integrator.integrate(workload.source)
            result, fault = app.run()
            assert not fault, f"{name}{label}: spurious fault"
            assert result.exit_value == baseline.exit_value, (
                f"{name}{label}: result corrupted by integration"
            )
            overhead = result.cycles / baseline.cycles - 1.0
            overheads[label].append(overhead)
            entry[label] = (overhead, app.plan)
            apps[(name, label)] = app
        rows.append(
            f"{name:11s} | {entry['base']:15d} | "
            f"{100*entry['-N'][0]:10.2f}% | {100*entry['-M'][0]:10.2f}% | "
            f"N={entry['-N'][1].gate_period}"
        )
    mean_n = 100 * sum(overheads["-N"]) / len(overheads["-N"])
    mean_m = 100 * sum(overheads["-M"]) / len(overheads["-M"])
    rows.append(f"{'average':11s} | {'':15s} | {mean_n:10.2f}% | {mean_m:10.2f}% |")
    recorder.sample(
        "fig9_integration_overhead", "mean_overhead", mean_n, "percent",
        suites="-N", workloads=len(overheads["-N"]),
    )
    recorder.sample(
        "fig9_integration_overhead", "mean_overhead", mean_m, "percent",
        suites="-M", workloads=len(overheads["-M"]),
    )
    recorder.sample(
        "fig9_integration_overhead", "workloads_integrated",
        len(overheads["-N"]), "workloads", bigger_is_better=True,
    )
    recorder.table("fig9_integration_overhead", "\n".join(rows))

    # Headline claim: average overhead is small (paper: 0.8%).  The
    # integrator's own estimate is held to the 1% threshold; measured
    # cycles stay within a small multiple of it.
    assert mean_n < 5.0
    assert mean_m < 5.0
    for label in ("-N", "-M"):
        assert all(o < 0.15 for o in overheads[label])

    # Benchmark: one integrated run of the quickest workload.
    app = apps[("minver", "-N")]
    result, fault = benchmark(app.run)
    assert not fault
