"""Table 3 — WNS and violated-path counts from aging-aware STA.

Paper shape: both units sign off fresh; after 10 years the FPU shows
two orders of magnitude more setup violations than the ALU (1,363 vs
11 paths; 41 vs 6 unique endpoint pairs), hold violations appear only
in the FPU (3 paths at -1 ps, from clock-gating-induced phase shift),
and the ALU has none.
"""

from repro.sta.timing import DelayModel, StaticTimingAnalyzer


def test_table3_sta_violations(ctx, benchmark, recorder):
    alu = ctx.alu.sta_result
    fpu = ctx.fpu.sta_result

    lines = [
        "Unit | WNS setup | # setup paths (pairs) | WNS hold | # hold paths (pairs) | period",
    ]
    for name, result in (("ALU", alu), ("FPU", fpu)):
        report = result.report
        setup = report.setup_violations()
        hold = report.hold_violations()
        lines.append(
            f"{name}  | {report.wns_setup_ns*1000:8.1f}ps | "
            f"{len(setup):5d} ({len(report.unique_endpoint_pairs('setup')):3d})"
            f"{' [capped]' if report.truncated else ''} | "
            f"{report.wns_hold_ns*1000:7.2f}ps | "
            f"{len(hold):3d} ({len(report.unique_endpoint_pairs('hold')):2d}) | "
            f"{result.period_ns:.3f}ns"
        )
        unit = name.lower()
        recorder.sample(
            "table3_sta_violations", "setup_paths", len(setup), "paths",
            unit=unit,
        )
        recorder.sample(
            "table3_sta_violations", "hold_paths", len(hold), "paths",
            unit=unit,
        )
        recorder.sample(
            "table3_sta_violations", "wns_setup",
            report.wns_setup_ns * 1000, "ps", unit=unit,
            bigger_is_better=True,
        )
        recorder.sample(
            "table3_sta_violations", "endpoint_pairs",
            len(report.unique_endpoint_pairs("setup")), "pairs", unit=unit,
        )
    recorder.table("table3_sta_violations", "\n".join(lines))

    # Fresh designs meet timing (the sign-off premise).
    assert alu.fresh_report.violations == []
    assert fpu.fresh_report.violations == []
    # Aged: ALU has a handful of setup violations, no hold.
    assert 1 <= len(alu.report.setup_violations()) <= 100
    assert alu.report.hold_violations() == []
    # FPU: far more setup violations than the ALU, and >= 1 hold
    # violation from gating-induced clock phase shift.
    assert len(fpu.report.setup_violations()) > 10 * len(
        alu.report.setup_violations()
    )
    assert len(fpu.report.hold_violations()) >= 1
    hold_pairs = fpu.report.unique_endpoint_pairs("hold")
    assert ("v_q_r0", "ov_q_r0") in hold_pairs
    # Hold WNS is marginal (paper: -1 ps), setup WNS much deeper.
    assert -0.02 < fpu.report.wns_hold_ns < 0
    assert fpu.report.wns_setup_ns < alu.report.wns_setup_ns < 0

    # Benchmark: one full STA check pass on the aged FPU model.
    sta = ctx.fpu
    from repro.sta.aging_sta import AgingAwareSta

    aged_model, _ = AgingAwareSta(
        sta.netlist,
        ctx.timing_lib,
        config=ctx.config.aging,
        gated_instances=sta.gated_instances(),
    ).aged_delay_model(sta.sp_profile)

    def run_check():
        analyzer = StaticTimingAnalyzer(sta.netlist, aged_model)
        return analyzer.check(fpu.period_ns, max_paths_per_endpoint=10)

    report = benchmark(run_check)
    assert report.setup_violations()
