"""Deterministic virtual-fleet sampling.

A fleet is a population of devices running the same netlist under
different conditions.  Two findings from related work shape the
sampling model:

* workload skew makes per-device degradation *individual* — targeted
  wearout work shows adversarial instruction mixes age one core far
  faster than its neighbours — so devices must be sampled, not
  replicated;
* ML aging-prediction work frames violation onset as a
  workload-dependent *distribution* over the population, which the
  sampler realizes as a log-normal draw around the unit's base onset,
  scaled by the device's operating corner.

Every draw flows through a named RNG stream
(:func:`repro.core.rng.stream_seed`) keyed by the campaign seed and the
device index, so fleet #"seed 2024, device 7" is the same device in
every process, on every platform, for any worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..aging.corners import TYPICAL_CORNER, WORST_CORNER, OperatingCorner
from ..core.config import CampaignConfig
from ..core.rng import stream_seed
from ..lifting.models import FailureModel

#: Corner catalogue the sampler draws from, by name.
CORNERS = {
    WORST_CORNER.name: WORST_CORNER,
    TYPICAL_CORNER.name: TYPICAL_CORNER,
}


@dataclass(frozen=True)
class DeviceSpec:
    """One sampled device of the virtual fleet.

    Attributes:
        index: Position in the fleet (also the RNG stream index).
        device_id: Stable human-readable id (``dev-0007``).
        corner: Name of the device's operating corner.
        onset_years: Sampled age at which the first violation onsets.
        faulty: Whether the onset lands inside the mission window —
            only faulty devices carry an injected failure model.
        model: The injected circuit-level failure model, or ``None``
            for a healthy device.
        backend_seed: Seed for the device's co-simulation backend RNG
            (drives the per-cycle C of ``CMode.RANDOM`` models).
        mechanism: Dominant wearout mechanism behind the device's onset
            draw — ``"bti"`` (default) or ``"hci"`` when the campaign's
            ``hci_fraction`` mechanism draw selects hot-carrier aging.
    """

    index: int
    device_id: str
    corner: str
    onset_years: float
    faulty: bool
    model: Optional[FailureModel]
    backend_seed: int
    mechanism: str = "bti"

    @property
    def c_mode(self) -> Optional[str]:
        return self.model.c_mode.value if self.model is not None else None

    @property
    def model_label(self) -> Optional[str]:
        return self.model.label if self.model is not None else None


def _corner_acceleration(corner: OperatingCorner) -> float:
    """Relative aging acceleration of a corner.

    The worst corner's hot, undervolted, late-derated view of a unit
    delay is its stress factor; dividing onset by it pulls worst-corner
    devices' violations earlier, exactly the pessimism ordering the
    sign-off flow assumes.
    """
    return corner.scale_max_delay(1.0)


def assign_model(
    rng: random.Random,
    models: Sequence[FailureModel],
    onset_years: float,
    mission_years: float,
) -> Tuple[bool, Optional[FailureModel]]:
    """Shared faulty/model draw for every fleet sampler.

    A device whose onset lands inside the mission window is faulty and
    carries one model drawn from the catalogue; the draw consumes the
    device stream only when faulty, so samplers that learn the onset
    late (the surrogate's exact per-device oracle) make byte-identical
    choices to ones that draw it up front.
    """
    faulty = bool(models) and onset_years <= mission_years
    model = rng.choice(list(models)) if faulty else None
    return faulty, model


def device_draw(
    config: CampaignConfig,
    index: int,
    base_onset_years: float,
) -> Tuple[random.Random, OperatingCorner, float, str]:
    """Corner / onset / mechanism draw for one device.

    Returns ``(rng, corner, onset_years, mechanism)`` with the device's
    ``campaign.fleet`` stream positioned exactly where
    :func:`assign_model` expects it.  Shared by the natural sampler and
    the adversarial sampler (:func:`repro.adversary.sample_attack_fleet`)
    so both describe the *same individuals* — an attack fleet differs
    from its natural twin only in the onset acceleration applied after
    this draw.

    The wearout-mechanism draw consumes its own ``campaign.mechanism``
    stream and only when ``config.hci_fraction > 0``, so default
    campaigns remain byte-identical to pre-HCI ones.  HCI-dominated
    devices' onsets scale by ``hci_onset_scale`` divided by the
    corner's ``hci_stress_scale`` (hotter corners toggle into wearout
    faster).
    """
    rng = random.Random(stream_seed("campaign.fleet", config.seed, index))
    corner = (
        WORST_CORNER
        if rng.random() < config.worst_corner_fraction
        else TYPICAL_CORNER
    )
    onset = (
        base_onset_years
        * rng.lognormvariate(0.0, config.onset_sigma)
        / _corner_acceleration(corner)
    )
    mechanism = "bti"
    if config.hci_fraction > 0.0:
        mech_rng = random.Random(
            stream_seed("campaign.mechanism", config.seed, index)
        )
        if mech_rng.random() < config.hci_fraction:
            mechanism = "hci"
            onset *= config.hci_onset_scale / corner.hci_stress_scale
    return rng, corner, onset, mechanism


def sample_fleet(
    config: CampaignConfig,
    failing_models: Sequence[FailureModel],
    base_onset_years: float,
) -> List[DeviceSpec]:
    """Sample ``config.devices`` devices deterministically.

    ``failing_models`` is the unit's catalogue of constructed failure
    models (order-sensitive: callers must pass a deterministic
    sequence).  A device is *faulty* when its onset draw lands inside
    ``config.mission_years``; it is then assigned one model from the
    catalogue.  An empty catalogue yields an all-healthy fleet.
    """
    models = list(failing_models)
    fleet: List[DeviceSpec] = []
    for index in range(config.devices):
        rng, corner, onset, mechanism = device_draw(
            config, index, base_onset_years
        )
        faulty, model = assign_model(
            rng, models, onset, config.mission_years
        )
        fleet.append(
            DeviceSpec(
                index=index,
                device_id=f"dev-{index:04d}",
                corner=corner.name,
                onset_years=round(onset, 6),
                faulty=faulty,
                model=model,
                backend_seed=stream_seed(
                    "campaign.backend", config.seed, index
                )
                & 0xFFFFFFFF,
                mechanism=mechanism,
            )
        )
    return fleet


def fleet_digest(fleet: Sequence[DeviceSpec]) -> List[tuple]:
    """Canonical identity of a sampled fleet, for cache keys."""
    return [
        (
            spec.index,
            spec.device_id,
            spec.corner,
            spec.onset_years,
            spec.faulty,
            spec.model_label,
            spec.backend_seed,
        )
        for spec in fleet
    ]
