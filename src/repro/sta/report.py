"""Human-readable timing reports (the sign-off tool's report_timing).

Renders the worst paths of an :class:`~repro.sta.timing.StaReport` with
per-stage incremental arrival columns, the way Innovus/PrimeTime
engineers read them — and the way the paper's TCL post-processing
consumed them.
"""

from __future__ import annotations

from typing import Optional

from ..netlist.netlist import Netlist
from .timing import DelayModel, StaReport, TimingViolation


def format_path(
    violation: TimingViolation,
    netlist: Netlist,
    delays: Optional[DelayModel] = None,
) -> str:
    """One path in report_timing style.

    With a delay model, each stage shows its incremental and cumulative
    delay; without, only the structural route is shown.
    """
    lines = [
        f"Startpoint: {violation.start} (clocked flop)",
        f"Endpoint:   {violation.end} (setup check)"
        if violation.kind == "setup"
        else f"Endpoint:   {violation.end} (hold check)",
        "-" * 56,
    ]
    if delays is not None:
        launch = netlist.instances.get(violation.start)
        cumulative = 0.0
        if launch is not None:
            if violation.kind == "setup":
                clk = delays.clk_late(launch)
                edge = delays.tmax(launch)
            else:
                clk = delays.clk_early(launch)
                edge = delays.tmin(launch)
            cumulative = clk + edge
            lines.append(
                f"{violation.start:28s} clk->q  {edge:8.4f}  {cumulative:8.4f}"
            )
        for cell_name in violation.cells:
            inst = netlist.instances[cell_name]
            step = (
                delays.tmax(inst)
                if violation.kind == "setup"
                else delays.tmin(inst)
            )
            cumulative += step
            lines.append(
                f"{cell_name:28s} {inst.ctype.name:>6s}  "
                f"{step:8.4f}  {cumulative:8.4f}"
            )
    else:
        for cell_name in violation.cells:
            inst = netlist.instances[cell_name]
            lines.append(f"{cell_name:28s} {inst.ctype.name:>6s}")
    lines.append("-" * 56)
    lines.append(
        f"arrival {violation.arrival:8.4f}  required {violation.required:8.4f}"
        f"  slack {violation.slack*1000:8.2f} ps"
        + ("  (VIOLATED)" if violation.slack < 0 else "")
    )
    return "\n".join(lines)


def report_timing(
    report: StaReport,
    netlist: Netlist,
    delays: Optional[DelayModel] = None,
    max_paths: int = 5,
    kind: Optional[str] = None,
) -> str:
    """The worst ``max_paths`` violating paths, most critical first."""
    header = [
        f"Timing report for {report.netlist_name!r} "
        f"@ {report.period_ns:.3f} ns "
        f"({1000/report.period_ns:.0f} MHz)",
        f"WNS setup {report.wns_setup_ns*1000:8.2f} ps   "
        f"WNS hold {report.wns_hold_ns*1000:8.2f} ps   "
        f"violating paths: {len(report.violations)}"
        + ("  [enumeration capped]" if report.truncated else ""),
        "=" * 56,
    ]
    chosen = sorted(report.violations, key=lambda v: v.slack)
    if kind is not None:
        chosen = [v for v in chosen if v.kind == kind]
    blocks = [
        format_path(violation, netlist, delays)
        for violation in chosen[:max_paths]
    ]
    if not blocks:
        blocks = ["(no violating paths)"]
    return "\n".join(header) + "\n" + "\n\n".join(blocks)
