"""Fleet campaign execution: shards, fork workers, resume.

The engine turns a sampled fleet into per-device detection results and
aggregates them into a :class:`~repro.campaign.report.CampaignReport`:

* **Per-suite work is hoisted out of the per-device loop.**  The vega
  and random suites assemble once (the :class:`AgingLibrary` program
  memo), the SiliFuzz corpus generates and assembles once, and failing
  netlists are instrumented once per distinct failure model — devices
  sharing a model also share the compiled gate simulator, so the
  per-device cost is pure simulation.  This is where the campaign's
  devices/sec headroom over the one-off ``experiments.py`` path comes
  from, independent of worker count.
* **Shards are the unit of parallelism and of resume.**  Devices are
  chunked into shards of ``CampaignConfig.shard_size``; shards fan out
  across ``fork`` workers (runner state is inherited at fork time,
  never pickled) and results re-assemble in shard order, so any worker
  count produces a byte-identical report.  Each completed shard
  publishes a pickled checkpoint through the artifact cache under a
  content-addressed key; a killed campaign restarted with
  ``resume=True`` loads completed shards and re-executes none of them.
* **Telemetry mirrors the lifting engine's contract.**  Workers ship
  counter deltas back with each shard; the parent folds them in shard
  order and emits the ``campaign.device`` event stream plus per-shard
  spans.  In serial mode each device additionally records its own
  nested span.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.random_tests import random_suite
from ..baselines.silifuzz_lite import SiliFuzzLite
from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import CampaignConfig
from ..core.rng import stream_seed
from ..cpu.cosim import GateAluBackend, GateFpuBackend, GateMduBackend
from ..integration.library_gen import AgingLibrary
from ..lifting.instrument import make_failing_netlist
from ..lifting.models import CMode, FailureModel
from ..lifting.parallel import fork_available
from ..netlist.netlist import Netlist
from .fleet import DeviceSpec, fleet_digest, sample_fleet
from .report import CampaignReport

_BACKENDS = {
    "alu": GateAluBackend,
    "fpu": GateFpuBackend,
    "mdu": GateMduBackend,
}


def device_outcome_key(spec: DeviceSpec) -> tuple:
    """Identity of a device's detection outcomes.

    Outcomes are a pure function of the injected model; the backend
    seed only enters for ``CMode.RANDOM`` models, whose ``fm_c`` port
    the co-simulation RNG drives.  Devices sharing a key share one
    simulation — the fleet-level dedup that makes large campaigns
    cheap.  The online scheduler's client adapter memoizes per-arm
    outcomes under the same key.
    """
    if not spec.faulty:
        return ("healthy",)
    if spec.model.c_mode is CMode.RANDOM:
        return ("model", spec.model.label, spec.backend_seed)
    return ("model", spec.model.label)


@dataclass
class SuiteOutcome:
    """One suite's verdict on one device."""

    suite: str
    detected: bool
    stalled: bool
    cycles: int
    detected_by: Optional[str] = None

    def as_row(self) -> dict:
        return {
            "suite": self.suite,
            "detected": self.detected,
            "stalled": self.stalled,
            "cycles": self.cycles,
            "detected_by": self.detected_by,
        }


@dataclass
class DeviceResult:
    """All campaign outcomes for one device (wall times excluded:
    results must be identical for any worker count)."""

    index: int
    device_id: str
    corner: str
    onset_years: float
    faulty: bool
    model_label: Optional[str]
    c_mode: Optional[str]
    outcomes: List[SuiteOutcome] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return any(outcome.detected for outcome in self.outcomes)

    def as_row(self) -> dict:
        return {
            "device": self.device_id,
            "corner": self.corner,
            "onset_years": self.onset_years,
            "faulty": self.faulty,
            "model": self.model_label,
            "c_mode": self.c_mode,
            "outcomes": [outcome.as_row() for outcome in self.outcomes],
        }


class DeviceRunner:
    """Executes every configured suite against one device at a time.

    Built once per campaign; holds the assembled suite programs, the
    SiliFuzz corpus, and a failure-model → instrumented-netlist memo.
    With the ``fork`` start method the whole runner is inherited by
    worker processes at fork time, so the per-campaign state ships to
    each worker exactly once.
    """

    def __init__(
        self,
        netlist: Netlist,
        unit: str,
        config: CampaignConfig,
        library: AgingLibrary,
    ):
        if unit not in _BACKENDS:
            raise ValueError(f"unknown unit {unit!r}")
        self.netlist = netlist
        self.unit = unit
        self.config = config
        self.library = library
        self._failing: Dict[str, Netlist] = {}
        self._outcomes: Dict[tuple, List[SuiteOutcome]] = {}
        self._suite_outcomes: Dict[tuple, SuiteOutcome] = {}
        self.random_library: Optional[AgingLibrary] = None
        self.snapshots = []
        self.snapshot_programs = []
        self._fuzz: Optional[SiliFuzzLite] = None
        if "vega" in config.suites:
            library.program(config.strategy)  # warm the assembly memo
        if "random" in config.suites:
            size = config.random_suite_size or max(
                1, len(library.test_cases)
            )
            self.random_library = random_suite(
                unit,
                size,
                seed=stream_seed("campaign.random_suite", config.seed),
                name="campaign_random",
            )
            self.random_library.program(config.strategy)
        if "silifuzz" in config.suites:
            self._fuzz = SiliFuzzLite(
                unit,
                seed=stream_seed("campaign.silifuzz", config.seed),
            )
            self.snapshots = self._fuzz.corpus(config.silifuzz_snapshots)
            self.snapshot_programs = self._fuzz.assemble_corpus(
                self.snapshots
            )

    # -- per-device pieces ---------------------------------------------
    def failing_netlist(self, model: FailureModel) -> Netlist:
        """Instrumented netlist for ``model`` (memoized per label).

        Devices sharing a failure model share the netlist object, and
        therefore the gate simulator's compiled step function — each
        device still gets its own simulator *state*.
        """
        netlist = self._failing.get(model.label)
        if netlist is None:
            netlist = make_failing_netlist(self.netlist, model).netlist
            self._failing[model.label] = netlist
        return netlist

    def backends(self, spec: DeviceSpec) -> dict:
        """Backend kwargs for one device; healthy devices run golden."""
        if not spec.faulty:
            return {}
        backend = _BACKENDS[self.unit](
            self.failing_netlist(spec.model), seed=spec.backend_seed
        )
        return {self.unit: backend}

    def _outcome_key(self, spec: DeviceSpec) -> tuple:
        return device_outcome_key(spec)

    def suite_outcome(self, suite: str, spec: DeviceSpec) -> SuiteOutcome:
        """One suite's verdict on one device (memoized per outcome key).

        The scheduler's client adapter dispatches suites individually
        rather than running the whole configured list, so this memo is
        keyed per ``(outcome key, suite)`` — independent of
        :meth:`run_device`'s all-suites memo.  Returned outcomes are
        shared and must not be mutated.
        """
        key = (self._outcome_key(spec), suite)
        outcome = self._suite_outcomes.get(key)
        if outcome is None:
            outcome = self._run_suite(suite, spec)
            self._suite_outcomes[key] = outcome
        else:
            telemetry.add("campaign.outcome_memo_hits")
        return outcome

    def prefilter(self, specs: Sequence[DeviceSpec]) -> None:
        """Resolve pending outcome keys in packed multi-model groups.

        Batches every distinct unresolved outcome key (healthy devices
        resolve from the golden trace directly; each faulty key becomes
        one shadow-mux bit-plane) into groups of ``config.pack_width``
        and runs one packed gate-sim pass per (group, suite), writing
        the results into the per-suite memo that :meth:`run_device`
        consumes.  Exactly equivalent to the serial path — planes that
        never diverge from golden take the golden verdict, diverged
        planes replay at ISA speed or fall back to the serial gate
        co-simulation — so reports stay byte-identical.  No-op for
        units the packed pass cannot batch (the FPU's variable
        handshake).
        """
        from .packed import PACKED_UNITS, PackedPrefilter

        if self.unit not in PACKED_UNITS:
            return
        width = max(1, int(self.config.pack_width))
        suites = self.config.suites
        targets: List[Tuple[tuple, DeviceSpec]] = []
        seen = set()
        want_healthy = False
        for spec in specs:
            key = self._outcome_key(spec)
            if key in seen:
                continue
            seen.add(key)
            if all((key, suite) in self._suite_outcomes for suite in suites):
                continue
            if spec.faulty:
                targets.append((key, spec))
            else:
                want_healthy = True
        if not targets and not want_healthy:
            return
        prefilter = PackedPrefilter(self)
        with telemetry.span(
            "campaign.prefilter",
            unit=self.unit,
            keys=len(targets),
            width=width,
        ):
            if want_healthy:
                # A healthy device is the golden run.
                for suite in suites:
                    self._suite_outcomes.setdefault(
                        (("healthy",), suite), prefilter.trace(suite).outcome
                    )
            for start in range(0, len(targets), width):
                prefilter.resolve_group(targets[start : start + width])

    def run_device(self, spec: DeviceSpec) -> DeviceResult:
        """Run every configured suite against one device."""
        key = self._outcome_key(spec)
        outcomes = self._outcomes.get(key)
        with telemetry.span(
            "campaign.device",
            device=spec.device_id,
            corner=spec.corner,
            faulty=spec.faulty,
        ):
            if outcomes is None:
                outcomes = []
                for suite in self.config.suites:
                    suite_key = (key, suite)
                    outcome = self._suite_outcomes.get(suite_key)
                    if outcome is None:
                        outcome = self._run_suite(suite, spec)
                        self._suite_outcomes[suite_key] = outcome
                    outcomes.append(outcome)
                self._outcomes[key] = outcomes
            else:
                telemetry.add("campaign.outcome_memo_hits")
        outcomes = list(outcomes)  # results are shared, never mutated
        result = DeviceResult(
            index=spec.index,
            device_id=spec.device_id,
            corner=spec.corner,
            onset_years=spec.onset_years,
            faulty=spec.faulty,
            model_label=spec.model_label,
            c_mode=spec.c_mode,
            outcomes=outcomes,
        )
        telemetry.add("campaign.devices")
        if spec.faulty:
            telemetry.add("campaign.faulty_devices")
            telemetry.add(
                "campaign.detected_devices"
                if result.detected
                else "campaign.escapes"
            )
        return result

    def _run_suite(self, suite: str, spec: DeviceSpec) -> SuiteOutcome:
        backends = self.backends(spec)
        if suite in ("vega", "random"):
            library = self.library if suite == "vega" else self.random_library
            result = library.run_suite(
                strategy=self.config.strategy,
                max_instructions=self.config.max_suite_instructions,
                **backends,
            )
            if result.stalled:
                telemetry.add("campaign.stalls")
            return SuiteOutcome(
                suite=suite,
                detected=result.detected,
                stalled=result.stalled,
                cycles=result.cycles,
                detected_by=result.detected_by,
            )
        if suite == "silifuzz":
            verdict = self._fuzz.detects(
                self.snapshots, programs=self.snapshot_programs, **backends
            )
            if verdict["stalled"]:
                telemetry.add("campaign.stalls")
            return SuiteOutcome(
                suite=suite,
                detected=bool(verdict["detected"]),
                stalled=bool(verdict["stalled"]),
                cycles=int(verdict["cycles"]),
                detected_by=verdict["by"],
            )
        raise ValueError(f"unknown campaign suite {suite!r}")


# ---------------------------------------------------------------------
# Fork-worker plumbing (mirrors repro.lifting.parallel).
# ---------------------------------------------------------------------
_WORKER_RUNNER: Optional[DeviceRunner] = None


def _init_worker(runner: DeviceRunner) -> None:
    """Install the campaign runner in a freshly forked worker."""
    global _WORKER_RUNNER
    telemetry.install(telemetry.Telemetry(run_id="campaign-worker"))
    _WORKER_RUNNER = runner


def _run_shard(
    task: Tuple[int, List[DeviceSpec]]
) -> Tuple[int, List[DeviceResult], float, Dict[str, float]]:
    shard_index, specs = task
    assert _WORKER_RUNNER is not None
    tele = telemetry.active()
    base = tele.snapshot() if tele is not None else {}
    t0 = time.perf_counter()
    results = [_WORKER_RUNNER.run_device(spec) for spec in specs]
    wall = time.perf_counter() - t0
    deltas = tele.counter_deltas(base) if tele is not None else {}
    return shard_index, results, wall, deltas


class CampaignEngine:
    """Samples a fleet, executes it in shards, aggregates the report.

    After :meth:`run`, ``executed_shards`` and ``resumed_shards`` list
    which shard indices were computed vs loaded from checkpoints —
    execution bookkeeping that deliberately never enters the report.
    """

    def __init__(
        self,
        netlist: Netlist,
        unit: str,
        library: AgingLibrary,
        failing_models: Sequence[FailureModel],
        config: Optional[CampaignConfig] = None,
        cache: Optional[ArtifactCache] = None,
        base_onset_years: Optional[float] = None,
        fleet: Optional[Sequence[DeviceSpec]] = None,
    ):
        self.netlist = netlist
        self.unit = unit
        self.library = library
        self.failing_models = list(failing_models)
        self.config = config or CampaignConfig()
        self.cache = cache
        #: Explicit fleet override.  ``None`` (the default) samples the
        #: onset-draw fleet from the config; the surrogate-triage path
        #: passes its exactly-analyzed device specs instead, so the
        #: execution/checkpoint/report machinery is shared unchanged.
        self.fleet = list(fleet) if fleet is not None else None
        if base_onset_years is None:
            base_onset_years = self.config.base_onset_years
        if base_onset_years is None:
            # No sweep and no config value: assume mid-life onset.
            base_onset_years = 0.6 * self.config.mission_years
        self.base_onset_years = float(base_onset_years)
        self.executed_shards: List[int] = []
        self.resumed_shards: List[int] = []
        self.report_path = None

    # -- construction from the shared experiment pipeline ---------------
    @classmethod
    def for_unit(
        cls,
        unit_experiment,
        config: Optional[CampaignConfig] = None,
        cache: Optional[ArtifactCache] = None,
        mitigation: bool = False,
        onset_sweep_years: Sequence[float] = (2.5, 5.0, 7.5, 10.0),
    ) -> "CampaignEngine":
        """Engine over a :class:`~repro.core.experiments.UnitExperiment`.

        Pulls the unit's vega library and constructed failure-model
        catalogue from the cached pipeline; when the config does not
        pin ``base_onset_years``, derives it from a coarse
        :class:`~repro.core.lifetime.LifetimeSimulator` sweep (first
        onset across ``onset_sweep_years``, falling back to the mission
        midpoint if nothing onsets inside the sweep).
        """
        config = config or CampaignConfig()
        base = config.base_onset_years
        if base is None:
            from ..core.experiments import CLOCK_CHAIN_LENGTH
            from ..core.lifetime import LifetimeSimulator

            simulator = LifetimeSimulator(
                unit_experiment.netlist,
                unit_experiment.sp_profile,
                config=unit_experiment.context.config.aging,
                gated_instances=unit_experiment.gated_instances(),
                clock_chain_length=CLOCK_CHAIN_LENGTH,
            )
            sweep = simulator.sweep(list(onset_sweep_years))
            base = sweep.first_onset_years
            if base is None:
                base = 0.6 * config.mission_years
        return cls(
            unit_experiment.netlist,
            unit_experiment.unit,
            unit_experiment.suite(mitigation),
            unit_experiment.failure_models(),
            config=config,
            cache=cache,
            base_onset_years=base,
        )

    # -- cache keys ----------------------------------------------------
    def campaign_key(self, fleet: Sequence[DeviceSpec]) -> str:
        """Content-addressed identity of this campaign.

        Everything that changes results enters the digest; ``workers``
        does not (any worker count produces the same report).
        ``shard_size`` does, because it defines the checkpoint units.
        """
        config = self.config
        return ArtifactCache.digest(
            "campaign",
            self.netlist.structural_hash(),
            self.unit,
            [
                config.seed,
                config.devices,
                config.shard_size,
                list(config.suites),
                config.strategy,
                config.mission_years,
                config.onset_sigma,
                config.worst_corner_fraction,
                config.random_suite_size,
                config.silifuzz_snapshots,
                config.max_suite_instructions,
            ],
            round(self.base_onset_years, 9),
            fleet_digest(fleet),
            self.library.suite_source(config.strategy),
        )

    def _shard_key(
        self, campaign_key: str, index: int, shard: Sequence[DeviceSpec]
    ) -> str:
        return ArtifactCache.digest(
            "campaign-shard",
            campaign_key,
            index,
            [spec.device_id for spec in shard],
        )

    def _load_shard(
        self, campaign_key: str, index: int, shard: Sequence[DeviceSpec]
    ) -> Optional[List[DeviceResult]]:
        if self.cache is None:
            return None
        payload = self.cache.load_checkpoint(
            self._shard_key(campaign_key, index, shard)
        )
        if not isinstance(payload, list) or len(payload) != len(shard):
            return None
        if any(
            not isinstance(r, DeviceResult) or r.device_id != spec.device_id
            for r, spec in zip(payload, shard)
        ):
            return None
        return payload

    def _publish_shard(
        self,
        campaign_key: str,
        index: int,
        shard: Sequence[DeviceSpec],
        results: List[DeviceResult],
    ) -> None:
        if self.cache is not None:
            self.cache.store_checkpoint(
                self._shard_key(campaign_key, index, shard), results
            )

    # -- execution -----------------------------------------------------
    def run(self, resume: bool = False) -> CampaignReport:
        """Execute the campaign; returns the aggregated report.

        With a cache attached, every completed shard is checkpointed as
        it finishes and the final report JSON is published under the
        campaign key.  ``resume=True`` loads completed shards instead
        of re-executing them.
        """
        config = self.config
        fleet = (
            self.fleet
            if self.fleet is not None
            else sample_fleet(
                config, self.failing_models, self.base_onset_years
            )
        )
        shards = [
            fleet[start : start + config.shard_size]
            for start in range(0, len(fleet), config.shard_size)
        ]
        key = self.campaign_key(fleet)
        self.executed_shards = []
        self.resumed_shards = []
        results_by_shard: Dict[int, List[DeviceResult]] = {}

        with telemetry.span(
            "campaign.run",
            unit=self.unit,
            devices=len(fleet),
            shards=len(shards),
            suites=",".join(config.suites),
        ) as span:
            pending: List[Tuple[int, List[DeviceSpec]]] = []
            for index, shard in enumerate(shards):
                cached = (
                    self._load_shard(key, index, shard) if resume else None
                )
                if cached is not None:
                    results_by_shard[index] = cached
                    self.resumed_shards.append(index)
                    telemetry.event(
                        "campaign.shard_resumed",
                        shard=index,
                        devices=len(shard),
                    )
                else:
                    pending.append((index, shard))

            runner = DeviceRunner(
                self.netlist, self.unit, config, self.library
            )
            if config.packed and pending:
                # Resolve outcome keys in packed multi-model groups
                # *before* shard dispatch: the parent-side memo crosses
                # shard boundaries (pack width is not capped by
                # shard_size) and is inherited by fork workers.
                runner.prefilter(
                    [spec for _, shard in pending for spec in shard]
                )
            for index, results in self._execute(runner, pending, key):
                results_by_shard[index] = results
                self.executed_shards.append(index)

            results = [
                result
                for index in sorted(results_by_shard)
                for result in results_by_shard[index]
            ]
            report = CampaignReport.from_results(
                self.unit, config, results, self.base_onset_years
            )
            if span is not None:
                span.annotate(
                    executed=len(self.executed_shards),
                    resumed=len(self.resumed_shards),
                    escapes=report.escapes,
                )
            if self.cache is not None:
                self.report_path = self.cache.store(
                    "campaign-report", key, report.to_json()
                )
        return report

    def _execute(
        self,
        runner: DeviceRunner,
        pending: Sequence[Tuple[int, List[DeviceSpec]]],
        campaign_key: str,
    ):
        """Yield ``(shard_index, results)``, checkpointing each shard."""
        workers = int(self.config.workers)
        if workers <= 0:
            workers = os.cpu_count() or 1
        workers = min(workers, len(pending)) if pending else 1
        if workers > 1 and fork_available():
            yield from self._execute_pool(
                runner, pending, campaign_key, workers
            )
            return
        yield from self._execute_serial(runner, pending, campaign_key)

    def _execute_serial(
        self,
        runner: DeviceRunner,
        pending: Sequence[Tuple[int, List[DeviceSpec]]],
        campaign_key: str,
    ):
        for index, shard in pending:
            with telemetry.span(
                "campaign.shard", shard=index, devices=len(shard)
            ):
                t0 = time.perf_counter()
                results = [runner.run_device(spec) for spec in shard]
                self._finish_shard(
                    campaign_key,
                    index,
                    shard,
                    results,
                    time.perf_counter() - t0,
                )
            yield index, results

    def _execute_pool(
        self,
        runner: DeviceRunner,
        pending: Sequence[Tuple[int, List[DeviceSpec]]],
        campaign_key: str,
        workers: int,
    ):
        ctx = multiprocessing.get_context("fork")
        shard_by_index = dict(pending)
        t_pool = time.perf_counter()
        try:
            pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(runner,),
            )
        except (OSError, ValueError):  # pool could not start: degrade
            yield from self._execute_serial(runner, pending, campaign_key)
            return
        tele = telemetry.active()
        busy = 0.0
        with pool:
            # imap preserves submission order and lets finished shards
            # checkpoint while stragglers are still running.
            for index, results, wall, deltas in pool.imap(
                _run_shard, list(pending)
            ):
                if tele is not None:
                    tele.merge_counters(deltas)
                busy += wall
                self._finish_shard(
                    campaign_key,
                    index,
                    shard_by_index[index],
                    results,
                    wall,
                )
                yield index, results
        elapsed = time.perf_counter() - t_pool
        if tele is not None and elapsed > 0:
            telemetry.event(
                "campaign.pool",
                workers=workers,
                elapsed_s=round(elapsed, 6),
                busy_s=round(busy, 6),
                utilization=round(busy / (elapsed * workers), 4),
            )

    def _finish_shard(
        self,
        campaign_key: str,
        index: int,
        shard: Sequence[DeviceSpec],
        results: List[DeviceResult],
        wall_s: float,
    ) -> None:
        """Parent-side bookkeeping: event stream + shard checkpoint."""
        for result in results:
            telemetry.event(
                "campaign.device",
                device=result.device_id,
                corner=result.corner,
                faulty=result.faulty,
                detected=result.detected,
                suites={
                    o.suite: ("stall" if o.stalled else o.detected)
                    for o in result.outcomes
                },
            )
        telemetry.add("campaign.shards")
        telemetry.add("campaign.shard_wall_s", wall_s)
        self._publish_shard(campaign_key, index, shard, results)
