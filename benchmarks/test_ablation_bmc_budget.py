"""Ablation — BMC conflict budget vs formal-failure (FF) outcomes.

The paper's Table 4 has FF entries: queries where the formal tool gave
up.  Our CDCL solver carries an explicit conflict budget; sweeping it
shows the trade-off between verification effort and the fraction of
pairs left unresolved — and that the main experiments' budget is deep
inside the all-resolved regime.
"""

from repro.core.config import ErrorLiftingConfig
from repro.lifting.lifter import ErrorLifter, PairOutcome

BUDGETS = (1, 5, 50, 1_000, 200_000)


def test_ablation_conflict_budget_sweep(ctx, benchmark, recorder):
    unit = ctx.fpu
    violations = unit.sta_result.report.representative_violations()[:8]

    def lift_all(budget):
        lifter = ErrorLifter(
            unit.netlist,
            ErrorLiftingConfig(bmc_conflict_budget=budget, bmc_depth=4),
            unit.mapper,
        )
        outcomes = [lifter.lift_pair(v).outcome for v in violations]
        return outcomes

    rows = ["budget  | S | UR | FF | FC"]
    ff_by_budget = {}
    for budget in BUDGETS:
        outcomes = lift_all(budget)
        counts = {o: outcomes.count(o) for o in PairOutcome}
        ff_by_budget[budget] = counts[PairOutcome.FORMAL_FAILURE]
        rows.append(
            f"{budget:7d} | {counts[PairOutcome.CONSTRUCTED]} | "
            f"{counts[PairOutcome.UNREALIZABLE]:2d} | "
            f"{counts[PairOutcome.FORMAL_FAILURE]:2d} | "
            f"{counts[PairOutcome.CONVERSION_FAILURE]}"
        )
        recorder.sample(
            "ablation_bmc_budget", "formal_failures",
            counts[PairOutcome.FORMAL_FAILURE], "pairs",
            conflict_budget=budget, unit="fpu",
        )
    recorder.sample(
        "ablation_bmc_budget", "pairs_swept", len(violations), "pairs",
        unit="fpu", bigger_is_better=True,
    )
    recorder.table("ablation_bmc_budget", "\n".join(rows))

    # Starving the solver produces FF outcomes; the production budget
    # resolves everything.
    assert ff_by_budget[BUDGETS[0]] > 0
    assert ff_by_budget[BUDGETS[-1]] == 0
    # FF count decreases (weakly) as the budget grows.
    ordered = [ff_by_budget[b] for b in BUDGETS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))

    result = benchmark(lift_all, 1_000)
    assert result is not None
