"""Parallel SP profiling — sharded Aging Analysis workload simulation.

Signal-probability profiling (§3.2.1) is embarrassingly parallel at two
granularities, and this module exploits both with the same architecture
the Error Lifter uses for endpoint pairs (:mod:`repro.lifting.parallel`):

* **across workloads** — each representative workload's operand stream
  is an independent simulation;
* **within a workload** — :func:`repro.sim.probes.profile_operand_stream`
  resets the simulator per packed batch, so a long stream splits into
  *chunks* at lane-batch boundaries, each chunk an independent packed
  simulation over its cycle range.

Chunk boundaries depend only on ``lanes`` and ``chunk_batches`` — never
on the worker count — and each chunk contributes raw integer one-counts
which are summed in deterministic chunk order before a single final
division.  A parallel profile is therefore **bit-identical** to the
serial one for any worker count, and both are bit-identical to the
monolithic :func:`profile_operand_stream` result.

Workers are ``fork`` processes: the netlist and all operand streams
travel once via the pool initializer (inherited copy-on-write), tasks
carry only ``(workload, start, stop)`` index triples, and results are
flat integer count vectors.  Platforms without ``fork`` — or
``workers <= 1``, or a pool that fails to start — fall back to the
serial loop transparently.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import telemetry
from ..netlist.netlist import Netlist
from .gatesim import GateSimulator, pack_vectors
from .probes import SPCounter, SPProfile

#: Packed batches per chunk: chunks of ``chunk_batches * lanes`` operands
#: keep task-dispatch overhead negligible while still load-balancing.
DEFAULT_CHUNK_BATCHES = 4

#: Per-worker state installed by :func:`_init_worker` after the fork.
_WORKER_STATE: Optional[Tuple[Netlist, Dict[str, Sequence], int, int]] = None


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


@dataclass(frozen=True)
class Chunk:
    """One unit of profiling work: a cycle range of one workload."""

    workload: str
    start: int
    stop: int


def plan_chunks(
    stream_lengths: Mapping[str, int],
    lanes: int,
    chunk_batches: int = DEFAULT_CHUNK_BATCHES,
) -> List[Chunk]:
    """Split every workload into lane-aligned chunks.

    The plan is a pure function of the stream lengths and batching
    parameters, so serial and parallel runs (of any width) simulate the
    exact same packed batches.
    """
    size = max(1, lanes * chunk_batches)
    chunks: List[Chunk] = []
    for workload, length in stream_lengths.items():
        for start in range(0, length, size):
            chunks.append(Chunk(workload, start, min(start + size, length)))
    return chunks


def _count_chunk(
    netlist: Netlist,
    operands: Sequence[Mapping[str, int]],
    lanes: int,
    drain_cycles: int,
    sim: Optional[GateSimulator] = None,
) -> Tuple[List[int], int]:
    """Packed-simulate one chunk; return (per-net one-counts, samples).

    The batch loop mirrors :func:`profile_operand_stream` exactly —
    reset per batch, ``1 + drain_cycles`` steps, sample after each —
    so per-chunk counts add up to the monolithic run's counts.
    """
    if sim is None:
        sim = GateSimulator(netlist)
    counter = SPCounter(netlist)
    ports = {p.name: p.width for p in netlist.input_ports()}
    for start in range(0, len(operands), lanes):
        batch = operands[start : start + lanes]
        mask = (1 << len(batch)) - 1
        packed_inputs: Dict[str, list] = {}
        for name, width in ports.items():
            values = [op.get(name, 0) for op in batch]
            packed_inputs[name] = pack_vectors(values, width)
        sim.reset()
        for _ in range(1 + drain_cycles):
            sim.step(packed_inputs, mask=mask, packed=True)
            counter.sample(sim, mask=mask)
    return list(counter.ones.values()), counter.samples


def _init_worker(netlist, streams, lanes, drain_cycles) -> None:
    """Stash the shared profiling state in the forked child."""
    global _WORKER_STATE
    # Fresh per-worker telemetry: counter deltas (simulated cycles,
    # compile hits) travel back with each chunk result.
    telemetry.install(telemetry.Telemetry(run_id="profile-worker"))
    _WORKER_STATE = (netlist, streams, lanes, drain_cycles)


def _profile_chunk(
    task: Tuple[int, str, int, int]
) -> Tuple[int, List[int], int, Dict[str, float]]:
    index, workload, start, stop = task
    assert _WORKER_STATE is not None
    netlist, streams, lanes, drain_cycles = _WORKER_STATE
    tele = telemetry.active()
    base = tele.snapshot() if tele is not None else {}
    ones, samples = _count_chunk(
        netlist, streams[workload][start:stop], lanes, drain_cycles
    )
    deltas = tele.counter_deltas(base) if tele is not None else {}
    return index, ones, samples, deltas


def profile_workload_streams(
    netlist: Netlist,
    streams: Mapping[str, Sequence[Mapping[str, int]]],
    lanes: int = 256,
    drain_cycles: int = 2,
    workers: int = 1,
    chunk_batches: int = DEFAULT_CHUNK_BATCHES,
) -> SPProfile:
    """Profile one or more workload operand streams, sharded by chunk.

    ``streams`` maps a workload id to its operand stream (the id only
    names the work; results depend on stream contents alone).
    ``workers <= 0`` means one per CPU.  The merged profile carries raw
    one-counts and is bit-identical across worker counts.
    """
    streams = {name: list(ops) for name, ops in streams.items()}
    if not streams or all(not ops for ops in streams.values()):
        raise ValueError("empty operand stream")
    chunks = plan_chunks(
        {name: len(ops) for name, ops in streams.items()}, lanes, chunk_batches
    )
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    workers = min(workers, len(chunks))

    names = list(netlist.nets)
    totals = [0] * len(names)
    samples = 0

    def _accumulate(ones: List[int], chunk_samples: int) -> None:
        nonlocal samples
        for i, count in enumerate(ones):
            totals[i] += count
        samples += chunk_samples

    if workers <= 1 or not fork_available():
        sim = GateSimulator(netlist)
        for chunk in chunks:
            ones, n = _count_chunk(
                netlist,
                streams[chunk.workload][chunk.start : chunk.stop],
                lanes,
                drain_cycles,
                sim=sim,
            )
            _accumulate(ones, n)
    else:
        ctx = multiprocessing.get_context("fork")
        tasks = [
            (i, c.workload, c.start, c.stop) for i, c in enumerate(chunks)
        ]
        t_pool = time.perf_counter()
        try:
            with ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(netlist, streams, lanes, drain_cycles),
            ) as pool:
                results = pool.map(_profile_chunk, tasks)
        except (OSError, ValueError):  # pool could not start: degrade
            return profile_workload_streams(
                netlist, streams, lanes, drain_cycles,
                workers=1, chunk_batches=chunk_batches,
            )
        # Integer sums are order-independent, but accumulate in chunk
        # order anyway so the code path mirrors the serial loop (and so
        # telemetry counter merges are deterministic too).
        tele = telemetry.active()
        for _index, ones, n, deltas in sorted(results, key=lambda r: r[0]):
            if tele is not None:
                tele.merge_counters(deltas)
            _accumulate(ones, n)
        telemetry.event(
            "profile.pool",
            workers=workers,
            chunks=len(chunks),
            elapsed_s=round(time.perf_counter() - t_pool, 6),
        )

    sp = {name: totals[i] / samples for i, name in enumerate(names)}
    ones_by_net = {name: totals[i] for i, name in enumerate(names)}
    return SPProfile(
        netlist_name=netlist.name, sp=sp, samples=samples, ones=ones_by_net
    )


def profile_operand_stream_parallel(
    netlist: Netlist,
    operands: Sequence[Mapping[str, int]],
    lanes: int = 256,
    drain_cycles: int = 2,
    workers: int = 1,
    chunk_batches: int = DEFAULT_CHUNK_BATCHES,
) -> SPProfile:
    """Sharded drop-in for :func:`~repro.sim.probes.profile_operand_stream`.

    Bit-identical to the monolithic packed run for any ``workers``.
    """
    return profile_workload_streams(
        netlist,
        {"stream": operands},
        lanes=lanes,
        drain_cycles=drain_cycles,
        workers=workers,
        chunk_batches=chunk_batches,
    )


def profile_operand_stream_reference(
    netlist: Netlist,
    operands: Sequence[Mapping[str, int]],
    drain_cycles: int = 2,
) -> SPProfile:
    """Seed-style serial scalar profiling — the equivalence oracle.

    One operand per simulated cycle group (reset, then ``1 +
    drain_cycles`` scalar steps, sampling each): exactly the per-lane
    semantics of the packed run, so its counts — and therefore its SP
    values — equal the packed/parallel engines' bit-for-bit.  Kept as
    the benchmark baseline and for equivalence testing; it is orders of
    magnitude slower than packed profiling.
    """
    if not operands:
        raise ValueError("empty operand stream")
    sim = GateSimulator(netlist)
    counter = SPCounter(netlist)
    port_names = [p.name for p in netlist.input_ports()]
    for op in operands:
        sim.reset()
        frame = {name: op.get(name, 0) for name in port_names}
        for _ in range(1 + drain_cycles):
            sim.step(frame)
            counter.sample(sim)
    return counter.profile()
