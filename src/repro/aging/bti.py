"""Reaction-diffusion model for BTI transistor aging (§2.3.3).

The paper's Equation 1 gives the threshold-voltage shift of a transistor
under bias-temperature-instability stress::

    dVth ∝ exp(Ea / kT) · (t - t0)^(1/6)

(with the Arrhenius factor written so that the fitted prefactor absorbs
the sign convention; physically, hotter devices age faster, which is the
form implemented here).  Two well-known properties of the model are
reproduced and property-tested:

* the **front-loading** of degradation — (1/10)^(1/6) ≈ 0.68, i.e. ~70 %
  of a 10-year shift accrues within the first year (§2.3.3), and
* **duty-cycle dependence** — a transistor stressed only a fraction
  ``d`` of the time degrades as ``d^(1/2)`` of the DC-stress shift,
  capturing partial recovery when stress is removed (the square-root
  attenuation matches measured AC/DC NBTI ratios).

Signal probability (SP) is the fraction of time a cell's *output* is at
logic "1".  CMOS pull-ups (p-type, NBTI-susceptible) are stressed while
the output idles at the cell's ``stress_state`` (logic 0 for every
vega28 cell); pull-downs (n-type, PBTI) are stressed in the opposite
state but contribute less (§2.3.1).  The combined threshold for a cell
is a weighted mix of both duties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5

#: Seconds in one (Julian) year.
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class BtiParameters:
    """Fitted constants of the reaction-diffusion model.

    Attributes:
        prefactor: Technology-dependent magnitude constant (volts),
            fitted so a fully-stressed vega28 cell accrues ~26 mV over
            ten years at 105 °C — which the alpha-power delay model maps
            to the ~6 % worst-bucket delay increase the paper reports.
        activation_energy_ev: Arrhenius activation energy Ea.
        time_exponent: The reaction-diffusion 1/6 power law in time.
        duty_exponent: Attenuation of AC (partial-duty) stress relative
            to DC stress.  The square-root form matches the measured
            AC/DC degradation ratios of ~0.7 at 50 % duty reported for
            NBTI, and it is what keeps rarely-switching cells clearly
            ahead of toggling ones in the aging ranking (§2.3.1).
        pmos_weight: Share of delay-relevant stress carried by the
            p-type pull-up network (NBTI); the remainder is n-type PBTI.
    """

    prefactor: float = 3430.0
    activation_energy_ev: float = 0.49
    time_exponent: float = 1.0 / 6.0
    duty_exponent: float = 0.5
    pmos_weight: float = 0.8

    def arrhenius(self, temperature_c: float) -> float:
        t_kelvin = temperature_c + 273.15
        return math.exp(
            -self.activation_energy_ev / (BOLTZMANN_EV * t_kelvin)
        )


DEFAULT_BTI = BtiParameters()


def delta_vth(
    stress_seconds: float,
    duty: float,
    temperature_c: float,
    params: BtiParameters = DEFAULT_BTI,
) -> float:
    """Threshold-voltage shift for one transistor network.

    Args:
        stress_seconds: Wall-clock device lifetime ``t - t0``.
        duty: Fraction of that lifetime spent under static stress,
            in [0, 1].  Models AC stress with partial recovery.
        temperature_c: Operating temperature.
        params: Fitted model constants.

    Returns:
        dVth in volts (>= 0).
    """
    if stress_seconds < 0:
        raise ValueError("stress time must be non-negative")
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be within [0, 1], got {duty}")
    if stress_seconds == 0 or duty == 0:
        return 0.0
    return (
        params.prefactor
        * params.arrhenius(temperature_c)
        * stress_seconds**params.time_exponent
        * duty**params.duty_exponent
    )


def cell_delta_vth(
    sp: float,
    years: float,
    temperature_c: float,
    stress_state: int = 0,
    params: BtiParameters = DEFAULT_BTI,
) -> float:
    """Effective dVth of a logic cell given its output SP.

    The pull-up (p-type) network is stressed while the output idles at
    ``stress_state``; the pull-down (n-type) in the opposite state.  The
    result is the delay-relevant weighted combination.
    """
    if not 0.0 <= sp <= 1.0:
        raise ValueError(f"SP must be within [0, 1], got {sp}")
    seconds = years * SECONDS_PER_YEAR
    duty_p = (1.0 - sp) if stress_state == 0 else sp
    duty_n = 1.0 - duty_p
    shift_p = delta_vth(seconds, duty_p, temperature_c, params)
    shift_n = delta_vth(seconds, duty_n, temperature_c, params)
    return params.pmos_weight * shift_p + (1.0 - params.pmos_weight) * shift_n


def recovery_fraction(
    stress_seconds: float,
    recovery_seconds: float,
    params: BtiParameters = DEFAULT_BTI,
) -> float:
    """Fraction of accrued dVth that anneals out after stress removal.

    Mirrors the paper's note that "once the stress is removed, some of
    the degradation can be reversed" with the standard log-like
    recovery curve; bounded to recover at most half the shift.
    """
    if recovery_seconds <= 0 or stress_seconds <= 0:
        return 0.0
    ratio = recovery_seconds / (recovery_seconds + 0.5 * stress_seconds)
    return 0.5 * ratio


def delay_factor(
    dvth: float,
    vdd: float,
    vth0: float,
    alpha: float,
) -> float:
    """Alpha-power-law switching-delay multiplier for a dVth shift.

    ``delay ∝ Vdd / (Vdd - Vth)^alpha`` — this is the analytic stand-in
    for the paper's per-cell SPICE characterization.  A zero shift
    returns exactly 1.0.
    """
    headroom = vdd - vth0
    aged = headroom - dvth
    if aged <= 0:
        raise ValueError(
            f"dVth {dvth:.3f} V exceeds gate overdrive {headroom:.3f} V"
        )
    return (headroom / aged) ** alpha
