"""Targeted wearout-attack scenarios (ROADMAP item 4a).

Recent work shows attackers can craft instruction mixes that skew
signal probabilities toward the BTI-stressed state on chosen victim
paths, aging one core far faster than its neighbours (targeted wearout
attacks, arXiv 2508.16868).  This package turns that threat model into
a deterministic scenario engine:

* :mod:`~repro.adversary.search` — seeded candidate generation plus
  beam hill-climbing over operand streams, scored by the packed SP
  profiler against the victim cone's stress duty; byte-identical for
  any worker count, resumable via per-round checkpoints;
* :mod:`~repro.adversary.fleet` — materializes *attack fleets*:
  :class:`~repro.campaign.fleet.DeviceSpec` devices sharing the natural
  fleet's per-device draws, with onsets accelerated by the attacker's
  stress ratio, ready to drop into the campaign engine, the packed
  prefilter, and the scheduler's belief priors;
* :mod:`~repro.adversary.report` — the canonical-JSON
  :class:`~repro.adversary.report.AttackReport` comparing detection of
  attacker-accelerated vs natural aging at equal budget.
"""

from .fleet import (
    accelerate_fleet,
    attack_device_prior,
    derive_base_onset,
    sample_attack_fleet,
)
from .report import AttackReport
from .search import (
    AttackSearch,
    AttackSearchResult,
    AttackTarget,
    generate_candidate,
    mutate_candidate,
    select_target,
    stress_score,
)

__all__ = [
    "AttackReport",
    "AttackSearch",
    "AttackSearchResult",
    "AttackTarget",
    "accelerate_fleet",
    "attack_device_prior",
    "derive_base_onset",
    "generate_candidate",
    "mutate_candidate",
    "sample_attack_fleet",
    "select_target",
    "stress_score",
]
