"""Workflow observability: spans, counters, JSONL traces, metrics.

The Vega workflow is a long three-phase pipeline dominated by gate-level
simulation and bounded model checking.  This module is the
dependency-free self-measurement layer every phase reports into:

* **Spans** — context-managed wall-clock intervals with hierarchical
  ids (``phase2.error_lifting/pair:a_q_r0~res_q_r1``).  A span records
  the *deltas* of every counter that moved while it was open, so a
  trace shows not just how long phase 1 took but how many cycles it
  simulated and how many cache hits it got.
* **Counters** — named monotonic totals (int or float).  Producers call
  :func:`add` unconditionally; when no telemetry is active the call is
  a dictionary lookup and a ``None`` check, cheap enough for simulator
  and solver hot paths.
* **Events** — point-in-time records (per-endpoint wall times, pair
  errors, pool utilization).

Counters merge across ``fork`` workers the same way the profiling and
lifting shards merge results: a worker snapshots its counters around a
task (:meth:`Telemetry.snapshot`), ships the integer/float *deltas*
back with the task result, and the parent folds them in with
:meth:`Telemetry.merge_counters` in deterministic submission order.
Nothing is shared between processes, so the merge is race-free by
construction.

The trace serializes as JSONL (:data:`TRACE_SCHEMA`): a ``meta`` line,
one line per event/span in completion order, and a closing ``counters``
line.  :func:`parse_trace` validates and round-trips it;
:func:`summarize_trace` renders the markdown summary behind
``repro trace summarize`` and ``repro run --metrics``.
"""

from __future__ import annotations

import io
import json
import os
import time
from contextlib import contextmanager
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Trace format version, bumped on any incompatible record change.
TRACE_SCHEMA = 1

Number = Union[int, float]


class TraceError(ValueError):
    """An on-disk trace is empty, truncated, or not valid JSONL."""


class Span:
    """One open interval; yielded by :meth:`Telemetry.span`.

    ``annotate`` attaches attributes that land in the span's trace
    record (e.g. ``resumed=True`` on a checkpoint hit).
    """

    __slots__ = ("id", "name", "parent", "attrs", "_t0", "_start_s", "_base")

    def __init__(
        self,
        span_id: str,
        name: str,
        parent: Optional[str],
        start_s: float,
        base: Dict[str, Number],
    ):
        self.id = span_id
        self.name = name
        self.parent = parent
        self.attrs: Dict[str, object] = {}
        self._t0 = time.perf_counter()
        self._start_s = start_s
        self._base = base

    def annotate(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self


class Telemetry:
    """One run's worth of spans, counters, and events.

    Producers normally reach the *active* instance through the
    module-level helpers (:func:`add`, :func:`event`, :func:`span`)
    rather than threading the object through every call; the workflow
    installs it with :func:`use`.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id or f"vega-{os.getpid()}-{time.time_ns():x}"
        self.counters: Dict[str, Number] = {}
        self.records: List[dict] = []
        self._t0 = time.perf_counter()
        self._stack: List[str] = []
        self._seq = 0

    # -- counters ------------------------------------------------------
    def add(self, name: str, value: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> Dict[str, Number]:
        """Copy of the counters, for delta computation around a task."""
        return dict(self.counters)

    def counter_deltas(self, base: Dict[str, Number]) -> Dict[str, Number]:
        """Counters that moved since ``base`` (a :meth:`snapshot`)."""
        deltas: Dict[str, Number] = {}
        for name, value in self.counters.items():
            change = value - base.get(name, 0)
            if change:
                deltas[name] = change
        return deltas

    def merge_counters(self, deltas: Dict[str, Number]) -> None:
        """Fold a worker's counter deltas into this (parent) instance."""
        for name, value in deltas.items():
            self.add(name, value)

    # -- events and spans ----------------------------------------------
    def event(self, name: str, **attrs: object) -> None:
        self.records.append(
            {
                "type": "event",
                "name": name,
                "t_s": round(time.perf_counter() - self._t0, 6),
                "attrs": attrs,
            }
        )

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        parent = self._stack[-1] if self._stack else None
        self._seq += 1
        span_id = f"{parent}/{name}" if parent else name
        span = Span(
            span_id,
            name,
            parent,
            round(time.perf_counter() - self._t0, 6),
            self.snapshot(),
        )
        span.attrs.update(attrs)
        self._stack.append(span_id)
        try:
            yield span
        finally:
            self._stack.pop()
            self.records.append(
                {
                    "type": "span",
                    "id": span.id,
                    "name": span.name,
                    "parent": span.parent,
                    "seq": self._seq,
                    "start_s": span._start_s,
                    "dur_s": round(time.perf_counter() - span._t0, 6),
                    "counters": self.counter_deltas(span._base),
                    "attrs": span.attrs,
                }
            )

    # -- serialization -------------------------------------------------
    def trace_records(self) -> List[dict]:
        """The full trace as records (meta + events/spans + counters)."""
        return (
            [{"type": "meta", "schema": TRACE_SCHEMA, "run_id": self.run_id}]
            + self.records
            + [{"type": "counters", "counters": dict(self.counters)}]
        )

    def to_jsonl(self) -> str:
        out = io.StringIO()
        for record in self.trace_records():
            out.write(json.dumps(record, sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def write_jsonl(self, path: str) -> None:
        # pid-suffixed tmp + fsync: concurrent writers (shard workers,
        # fork workers) publishing under one path must not clobber each
        # other's half-written tmp, and the rename must never publish a
        # partially flushed trace after a crash.
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fp:
            fp.write(self.to_jsonl())
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)

    def summary_markdown(self) -> str:
        return summarize_trace(self.trace_records())


# ---------------------------------------------------------------------
# The active instance and the cheap producer-side helpers.
# ---------------------------------------------------------------------
_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The telemetry instance installed by :func:`use`, if any."""
    return _ACTIVE


@contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the process-wide active instance."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


def install(telemetry: Telemetry) -> None:
    """Permanently install ``telemetry`` (for fork-worker processes)."""
    global _ACTIVE
    _ACTIVE = telemetry


def add(name: str, value: Number = 1) -> None:
    """Bump a counter on the active telemetry; no-op when inactive."""
    if _ACTIVE is not None:
        _ACTIVE.add(name, value)


def event(name: str, **attrs: object) -> None:
    if _ACTIVE is not None:
        _ACTIVE.event(name, **attrs)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Span on the active telemetry; yields None when inactive."""
    if _ACTIVE is None:
        yield None
        return
    with _ACTIVE.span(name, **attrs) as sp:
        yield sp


# ---------------------------------------------------------------------
# Prometheus text export.
# ---------------------------------------------------------------------
def prometheus_name(name: str) -> str:
    """Sanitize a counter name into a valid Prometheus metric name.

    Dots (the telemetry counter convention, ``scheduler.dispatches``)
    and any other illegal character become underscores.
    """
    sanitized = "".join(
        ch if (ch.isalnum() or ch in "_:") else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def render_prometheus(
    counters: Mapping[str, Number],
    gauges: Sequence[Tuple[str, Mapping[str, str], Number]] = (),
    prefix: str = "repro",
) -> str:
    """Telemetry counters (plus gauge samples) as Prometheus text.

    ``counters`` maps telemetry names to monotonic totals; each renders
    as ``<prefix>_<name>_total`` with a ``# TYPE`` line.  ``gauges``
    are ``(name, labels, value)`` samples for point-in-time state
    (queue depth, heartbeat age).  Output is fully sorted, so a
    snapshot is deterministic for a given input — scrapes diff cleanly
    in tests and CI.
    """
    lines: List[str] = []
    for name in sorted(counters):
        metric = prometheus_name(f"{prefix}_{name}_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    grouped: Dict[str, List[Tuple[Mapping[str, str], Number]]] = {}
    for name, labels, value in gauges:
        metric = prometheus_name(f"{prefix}_{name}")
        grouped.setdefault(metric, []).append((labels, value))
    for metric in sorted(grouped):
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in sorted(
            grouped[metric], key=lambda entry: sorted(entry[0].items())
        ):
            if labels:
                label_text = ",".join(
                    f'{prometheus_name(key)}="{labels[key]}"'
                    for key in sorted(labels)
                )
                lines.append(
                    f"{metric}{{{label_text}}} {_format_value(value)}"
                )
            else:
                lines.append(f"{metric} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------
# Trace files: parsing, validation, summarization.
# ---------------------------------------------------------------------
def parse_trace(text: str) -> List[dict]:
    """Parse and validate a JSONL trace; raises :class:`TraceError`.

    The inverse of :meth:`Telemetry.to_jsonl` — parsing and
    re-serializing yields byte-identical JSONL (the round-trip the
    trace-schema tests pin down).
    """
    records: List[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: not valid JSON ({exc})") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TraceError(f"line {lineno}: record has no 'type' field")
        records.append(record)
    if not records:
        raise TraceError("trace is empty")
    head = records[0]
    if head.get("type") != "meta":
        raise TraceError("trace does not start with a 'meta' record")
    if head.get("schema") != TRACE_SCHEMA:
        raise TraceError(
            f"unsupported trace schema {head.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})"
        )
    return records


def dump_trace(records: List[dict]) -> str:
    """Re-serialize parsed records to canonical JSONL."""
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


def read_trace(path: str) -> List[dict]:
    try:
        text = open(path).read()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from exc
    return parse_trace(text)


def _format_value(value: Number) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summarize_trace(records: List[dict]) -> str:
    """Markdown metrics summary of a trace (phases, then counters)."""
    meta = records[0] if records and records[0].get("type") == "meta" else {}
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    totals: Dict[str, Number] = {}
    for record in records:
        if record.get("type") == "counters":
            totals = record.get("counters", {})
    lines = [f"# Vega run metrics — `{meta.get('run_id', '?')}`", ""]

    top_level = [s for s in spans if not s.get("parent")]
    if top_level:
        lines += [
            "## Phases",
            "",
            "| span | wall s | notes |",
            "|---|---:|---|",
        ]
        for record in sorted(top_level, key=lambda s: s.get("start_s", 0.0)):
            attrs = record.get("attrs", {})
            notes = ", ".join(
                f"{k}={v}" for k, v in sorted(attrs.items())
            )
            lines.append(
                f"| {record['name']} | {record.get('dur_s', 0.0):.3f} "
                f"| {notes} |"
            )
        lines.append("")
        nested = [s for s in spans if s.get("parent")]
        if nested:
            lines.append(f"({len(nested)} nested span(s) in the trace)")
            lines.append("")
    elif not spans:
        # A header-only trace (meta line, nothing recorded) renders a
        # clear verdict instead of an empty table.
        lines.append("no spans recorded")
        lines.append("")
    if totals:
        lines += ["## Counters", "", "| counter | total |", "|---|---:|"]
        for name in sorted(totals):
            lines.append(f"| {name} | {_format_value(totals[name])} |")
        lines.append("")
    errors = [e for e in events if e.get("name", "").endswith("error")]
    if errors:
        lines += ["## Recorded errors", ""]
        for record in errors:
            attrs = record.get("attrs", {})
            detail = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"- `{record['name']}`: {detail}")
        lines.append("")
    if events:
        lines.append(f"{len(events)} event(s) recorded.")
    return "\n".join(lines).rstrip() + "\n"
