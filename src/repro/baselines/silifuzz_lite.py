"""A SiliFuzz-style top-down baseline (§6.1's comparison frameworks).

Google's SiliFuzz "generates test cases by fuzzing the instruction set
architecture of a CPU" — treating the hardware as a black box and
relying on volume: ~500,000 test programs, each a random instruction
sequence whose result is checked against a golden snapshot.

This module builds that style of corpus for our core:

* each *snapshot* is a random, self-terminating instruction sequence
  over the unit's ISA subset with randomized register seeds;
* the golden end-state checksum is recorded on the software model;
* detection = replaying the corpus on the (possibly failing) hardware
  and comparing checksums.

The ablation benchmark contrasts this top-down approach with Vega's
bottom-up suites on detection rate *per executed cycle* — the axis on
which the paper argues bottom-up wins (§1, §6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cpu.asm import assemble
from ..cpu.cpu import Cpu, CpuStall
from ..cpu.mappers import ALU_MNEMONIC, FPU_MNEMONIC, MDU_MNEMONIC

#: Integer scratch registers a snapshot may touch.
_SNAPSHOT_REGS = ("t1", "t2", "t3", "t4", "s2", "s3", "s4", "s5")
_SNAPSHOT_FREGS = ("ft0", "ft1", "ft2", "ft3", "fs0", "fs1")


@dataclass
class Snapshot:
    """One fuzzed test program with its golden checksum."""

    name: str
    source: str
    golden: Optional[int] = None
    cycles: int = 0


class SiliFuzzLite:
    """Corpus generator + detection harness."""

    def __init__(self, unit: str = "alu", seed: int = 0):
        if unit not in ("alu", "fpu", "mdu"):
            raise ValueError(f"unknown unit {unit!r}")
        self.unit = unit
        self.seed = seed

    # -- generation -----------------------------------------------------
    def _random_snapshot(self, rng: random.Random, index: int) -> Snapshot:
        lines = ["    # silifuzz-lite snapshot", ".text"]
        # Seed the register file.
        for reg in _SNAPSHOT_REGS:
            lines.append(f"    li {reg}, {rng.getrandbits(32)}")
        if self.unit == "fpu":
            for freg in _SNAPSHOT_FREGS:
                lines.append(f"    li t0, {rng.getrandbits(16)}")
                lines.append(f"    fmv.h.x {freg}, t0")
        # A straight-line burst of unit instructions.
        length = rng.randint(6, 14)
        for _ in range(length):
            if self.unit == "alu":
                mnemonic = rng.choice(list(ALU_MNEMONIC.values()))
                rd = rng.choice(_SNAPSHOT_REGS)
                rs1 = rng.choice(_SNAPSHOT_REGS)
                rs2 = rng.choice(_SNAPSHOT_REGS)
                lines.append(f"    {mnemonic} {rd}, {rs1}, {rs2}")
            elif self.unit == "mdu":
                mnemonic = rng.choice(list(MDU_MNEMONIC.values()))
                rd = rng.choice(_SNAPSHOT_REGS)
                rs1 = rng.choice(_SNAPSHOT_REGS)
                rs2 = rng.choice(_SNAPSHOT_REGS)
                lines.append(f"    {mnemonic} {rd}, {rs1}, {rs2}")
            else:
                mnemonic = rng.choice(list(FPU_MNEMONIC.values()))
                if mnemonic in ("feq.h", "flt.h", "fle.h"):
                    rd = rng.choice(_SNAPSHOT_REGS)
                    lines.append(
                        f"    {mnemonic} {rd}, "
                        f"{rng.choice(_SNAPSHOT_FREGS)}, "
                        f"{rng.choice(_SNAPSHOT_FREGS)}"
                    )
                else:
                    lines.append(
                        f"    {mnemonic} {rng.choice(_SNAPSHOT_FREGS)}, "
                        f"{rng.choice(_SNAPSHOT_FREGS)}, "
                        f"{rng.choice(_SNAPSHOT_FREGS)}"
                    )
        # Fold the end state into a checksum.
        lines.append("    li a0, 0")
        for reg in _SNAPSHOT_REGS:
            lines.append(f"    xor a0, a0, {reg}")
            lines.append("    slli t0, a0, 1")
            lines.append("    srli a0, a0, 31")
            lines.append("    or a0, t0, a0")
        if self.unit == "fpu":
            for freg in _SNAPSHOT_FREGS:
                lines.append(f"    fmv.x.h t0, {freg}")
                lines.append("    xor a0, a0, t0")
            lines.append("    frflags t0")
            lines.append("    xor a0, a0, t0")
        lines.append("    ecall")
        return Snapshot(name=f"snap_{index}", source="\n".join(lines))

    def corpus(self, size: int) -> List[Snapshot]:
        """Generate ``size`` snapshots with golden checksums attached."""
        rng = random.Random(self.seed)
        snapshots = []
        for index in range(size):
            snapshot = self._random_snapshot(rng, index)
            result = Cpu(assemble(snapshot.source)).run()
            snapshot.golden = result.exit_value
            snapshot.cycles = result.cycles
            snapshots.append(snapshot)
        return snapshots

    # -- detection -------------------------------------------------------
    def assemble_corpus(self, snapshots: Sequence[Snapshot]) -> List:
        """Pre-assembled programs for :meth:`detects`.

        A campaign replays one corpus against every device of a fleet;
        assembling each snapshot once and passing the programs back in
        moves assembly out of the per-device loop.
        """
        return [assemble(snapshot.source) for snapshot in snapshots]

    def detects(
        self,
        snapshots: Sequence[Snapshot],
        alu=None,
        fpu=None,
        mdu=None,
        programs: Optional[Sequence] = None,
    ) -> Dict[str, object]:
        """Replay the corpus against hardware backends.

        ``programs`` (from :meth:`assemble_corpus`) skips re-assembly;
        when omitted each snapshot is assembled on the fly.

        Returns {"detected": bool, "by": snapshot name or None,
        "cycles": cycles executed until detection (or total)}.
        """
        if programs is None:
            programs = self.assemble_corpus(snapshots)
        executed = 0
        for snapshot, program in zip(snapshots, programs):
            cpu = Cpu(program, alu=alu, fpu=fpu, mdu=mdu)
            try:
                result = cpu.run()
            except CpuStall:
                return {
                    "detected": True,
                    "by": snapshot.name,
                    "cycles": executed + cpu.cycles,
                    "stalled": True,
                }
            executed += result.cycles
            if result.exit_value != snapshot.golden:
                return {
                    "detected": True,
                    "by": snapshot.name,
                    "cycles": executed,
                    "stalled": False,
                }
        return {
            "detected": False,
            "by": None,
            "cycles": executed,
            "stalled": False,
        }
