"""Aging-Aware Static Timing Analysis — the driver for phase 1 (§3.2.2).

Given an SP profile from simulation and a characterized aging timing
library, this module updates every cell's timing to its 10-year aged
value, ages the clock tree, and runs setup/hold STA at the pessimistic
sign-off corner.  The result — the set of aging-prone paths and their
unique endpoint pairs — is the input to Error Lifting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..aging.charlib import AgingTimingLibrary
from ..aging.corners import OperatingCorner, WORST_CORNER
from ..core import telemetry
from ..core.config import AgingAnalysisConfig
from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile
from .clocktree import ClockTree
from .timing import DelayModel, StaReport, StaticTimingAnalyzer


@dataclass
class AgingStaResult:
    """Everything phase 1 hands to phase 2.

    Attributes:
        report: the aged STA report (violations, WNS).
        fresh_report: the pre-aging report at the same period (should
            be clean, confirming the design signed off).
        period_ns: derived or supplied clock period.
        delay_increase: per-instance fractional delay increase, the raw
            data behind Figure 8's histogram.
        clock_tree: the (aged) clock network model.
    """

    report: StaReport
    fresh_report: StaReport
    period_ns: float
    delay_increase: Dict[str, float]
    clock_tree: ClockTree


class AgingAwareSta:
    """Applies aged timing to a netlist and checks its constraints."""

    def __init__(
        self,
        netlist: Netlist,
        timing_lib: Optional[AgingTimingLibrary],
        config: Optional[AgingAnalysisConfig] = None,
        corner: OperatingCorner = WORST_CORNER,
        gated_instances: Optional[Mapping[str, float] | Sequence[str]] = None,
        clock_fanout_per_leaf: int = 8,
        clock_chain_length: int = 1,
        vectorized: bool = True,
    ):
        # ``timing_lib`` may be None when every analyze() call supplies a
        # precomputed aged model (the artifact-cache hit path).
        self.netlist = netlist
        self.timing_lib = timing_lib
        self.config = config or AgingAnalysisConfig()
        self.corner = corner
        self.vectorized = vectorized
        if gated_instances is None:
            gated: Dict[str, float] = {}
        elif isinstance(gated_instances, Mapping):
            gated = dict(gated_instances)
        else:
            # Bare names get a high default duty: the unit is assumed
            # clock-gated whenever idle.
            gated = {
                name: 1.0 - self.config.clock_gating_sp * 2.0
                for name in gated_instances
            }
        self.clock_tree = ClockTree.build(
            netlist,
            fanout_per_leaf=clock_fanout_per_leaf,
            gated_sinks=gated,
            chain_length=clock_chain_length,
        )

    # ------------------------------------------------------------------
    def derive_period(self) -> float:
        """Target period the design "signed off" at, fresh.

        Mirrors timing closure: take the fresh critical delay and leave
        ``clock_margin`` of positive slack.  The margin is what aging
        must erode before violations appear — the paper's designs also
        initially meet timing and only violate after 10 simulated years.
        """
        analyzer = StaticTimingAnalyzer(
            self.netlist,
            DelayModel.fresh(self.netlist, self.corner),
            vectorized=self.vectorized,
        )
        # Insertion delay is common-mode for a balanced fresh tree and
        # does not change the critical delay.
        return analyzer.critical_delay() * (1.0 + self.config.clock_margin)

    def aged_delay_model(self, profile: SPProfile) -> Tuple[DelayModel, Dict[str, float]]:
        """Per-instance aged delays + the Figure 8 delay-increase map."""
        if self.timing_lib is None:
            raise ValueError(
                "AgingAwareSta was built without a timing library; "
                "supply aged_model to analyze() instead"
            )
        delays: Dict[str, Tuple[float, float]] = {}
        increase: Dict[str, float] = {}
        for inst in self.netlist.instances.values():
            sp = profile.sp.get(inst.output_net.name)
            if sp is None:
                # Instrumentation cells absent from the profile age at
                # the pessimistic extreme.
                sp = 0.0
            tmin, tmax = self.timing_lib.aged_delays(inst.ctype, sp)
            delays[inst.name] = (tmin, tmax)
            if inst.ctype.tmax > 0:
                increase[inst.name] = tmax / inst.ctype.tmax - 1.0
            else:
                increase[inst.name] = 0.0
        clock_arrivals = self.clock_tree.aged_arrivals(self.timing_lib)
        model = DelayModel(
            delays=delays,
            clock_early=clock_arrivals,
            clock_late=clock_arrivals,
            corner=self.corner,
        )
        return model, increase

    def analyze(
        self,
        profile: SPProfile,
        clock_period_ns: Optional[float] = None,
        aged_model: Optional[DelayModel] = None,
        delay_increase: Optional[Dict[str, float]] = None,
    ) -> AgingStaResult:
        """Full phase-1 analysis: fresh sign-off check + aged STA.

        ``aged_model``/``delay_increase`` inject a precomputed (e.g.
        artifact-cached) aged delay model, skipping library lookups.
        """
        period = clock_period_ns or self.derive_period()

        with telemetry.span("sta.fresh", period_ns=round(period, 4)):
            fresh_arrivals = self.clock_tree.fresh_arrivals()
            fresh_model = DelayModel.fresh(self.netlist, self.corner)
            fresh_model.clock_early = fresh_arrivals
            fresh_model.clock_late = fresh_arrivals
            fresh_report = StaticTimingAnalyzer(
                self.netlist, fresh_model, vectorized=self.vectorized
            ).check(period, self.config.max_paths_per_endpoint)

        with telemetry.span("sta.aged", period_ns=round(period, 4)):
            if aged_model is None:
                aged_model, increase = self.aged_delay_model(profile)
            else:
                increase = dict(delay_increase or {})
            aged_report = StaticTimingAnalyzer(
                self.netlist, aged_model, vectorized=self.vectorized
            ).check(period, self.config.max_paths_per_endpoint)
        telemetry.add("sta.analyses")
        telemetry.add(
            "sta.paths_timed",
            len(fresh_report.violations) + len(aged_report.violations),
        )
        telemetry.add("sta.violations", len(aged_report.violations))
        return AgingStaResult(
            report=aged_report,
            fresh_report=fresh_report,
            period_ns=period,
            delay_increase=increase,
            clock_tree=self.clock_tree,
        )


def delay_increase_histogram(
    delay_increase: Mapping[str, float],
    bucket_edges: Sequence[float] = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08),
) -> List[Tuple[float, float, int]]:
    """Bucket per-cell delay increases — the data series of Figure 8.

    Returns (low_edge, high_edge, count) triples covering all samples.
    """
    edges = list(bucket_edges)
    counts = [0] * (len(edges) - 1)
    for value in delay_increase.values():
        for i in range(len(edges) - 1):
            if edges[i] <= value < edges[i + 1] or (
                i == len(edges) - 2 and value >= edges[-1]
            ):
                counts[i] += 1
                break
    return [
        (edges[i], edges[i + 1], counts[i]) for i in range(len(edges) - 1)
    ]
