"""Gate-level simulation: compiled simulator, SP probes, VCD output."""

from .gatesim import (
    GateSimulator,
    SimulationError,
    pack_vectors,
    unpack_vectors,
)
from .probes import (
    ActivityProfile,
    SPCounter,
    SPProfile,
    profile_activity,
    profile_operand_stream,
    profile_stimulus,
)
from .vcd import VcdWriter
from .vcd_reader import VcdParseError, parse_vcd, sp_profile_from_vcd

__all__ = [
    "GateSimulator",
    "SimulationError",
    "pack_vectors",
    "unpack_vectors",
    "ActivityProfile",
    "SPCounter",
    "SPProfile",
    "profile_activity",
    "profile_operand_stream",
    "profile_stimulus",
    "VcdWriter",
    "VcdParseError",
    "parse_vcd",
    "sp_profile_from_vcd",
]
