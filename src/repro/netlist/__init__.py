"""Gate-level netlist substrate: cells, netlist graph, Verilog I/O."""

from .cells import CellLibrary, CellType, VEGA28, make_vega28_library
from .netlist import Instance, Net, Netlist, NetlistError, Port
from .opt import NetlistOptimizer, optimize
from .parser import VerilogParseError, parse_verilog
from .verilog import netlist_to_verilog

__all__ = [
    "CellLibrary",
    "CellType",
    "VEGA28",
    "make_vega28_library",
    "Instance",
    "Net",
    "Netlist",
    "NetlistError",
    "Port",
    "NetlistOptimizer",
    "optimize",
    "VerilogParseError",
    "parse_verilog",
    "netlist_to_verilog",
]
