"""Online fleet scheduler: adaptive dispatch, streaming detection.

The offline campaign (:mod:`repro.campaign`) answers "what would the
fleet look like if every device ran every suite".  This package runs
the same fleet as an *online service*: devices request their next test,
stream verdicts back, and a per-device aging belief state steers what
gets dispatched next — detection value per cycle instead of a fixed
test list.

Modules:

* :mod:`~repro.scheduler.belief` — Beta-Bernoulli posteriors per
  (device, failure-model class), fleet-level evidence sharing, priors
  from the fleet's corner/onset distributions.
* :mod:`~repro.scheduler.policy` — sequential / greedy /
  Thompson-sampling dispatch policies; pure functions of a belief
  snapshot.
* :mod:`~repro.scheduler.service` — the asyncio service: batching,
  bounded-queue backpressure, belief checkpoints, graceful drain, and
  the deterministic TRACE_SCHEMA event log.
* :mod:`~repro.scheduler.replay` — simulated device clients over the
  campaign's :class:`~repro.campaign.engine.DeviceRunner`, session
  driver, schedule reports, byte-exact replay verification.
"""

from .belief import ArmSpec, DeviceBelief, FleetBelief, fleet_prior
from .policy import (
    Dispatch,
    PlanRequest,
    POLICIES,
    Policy,
    Schedule,
    make_policy,
)
from .replay import (
    FleetAdapter,
    ScheduleOutcome,
    ScheduleReport,
    ScheduleSession,
    build_arms,
    verify_replay,
)
from .service import (
    DetectionService,
    EventLog,
    ResultEvent,
    RetryAfter,
)

__all__ = [
    "ArmSpec",
    "DeviceBelief",
    "DetectionService",
    "Dispatch",
    "EventLog",
    "FleetAdapter",
    "FleetBelief",
    "PlanRequest",
    "POLICIES",
    "Policy",
    "ResultEvent",
    "RetryAfter",
    "Schedule",
    "ScheduleOutcome",
    "ScheduleReport",
    "ScheduleSession",
    "build_arms",
    "fleet_prior",
    "make_policy",
    "verify_replay",
]
