"""Bounded model checking over netlists — the JasperGold substitute.

Given a netlist, a *cover objective* (a set of net pairs that must
differ, or nets that must be 1, in some cycle), and optional *assume*
constraints on input ports, the checker unrolls the circuit frame by
frame into CNF and asks the CDCL solver for a witness.

Semantics match SystemVerilog ``cover property`` / ``assume property``
as the paper uses them (§3.3.3):

* ``cover``: find any input sequence making the objective true at some
  cycle ≤ depth; report the shortest one (we solve depth 1, 2, ...).
* ``assume``: restrict module inputs in every frame, e.g. "the opcode
  is a valid ALU operation".

Completeness note: returning UNSAT at the configured depth proves
unreachability only up to that bound.  Every module this repo checks is
a feed-forward pipeline (no state feedback between stages), for which
behaviour is time-invariant once the pipeline is full; pipeline depth
plus one frame therefore suffices, and ``suggested_depth`` computes it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core import telemetry
from ..netlist.netlist import Instance, Net, Netlist
from .encode import encode_in_set, encode_instance, encode_xor_var
from .sat import SatSolver, SatStatus
from .trace import Trace


class BmcStatus(Enum):
    COVERED = "covered"        # witness found
    UNREACHABLE = "unreachable"  # proven impossible within depth
    BUDGET_EXCEEDED = "budget"   # solver gave up (paper's "FF")


@dataclass
class InputAssumption:
    """An ``assume property`` on one input port, applied every cycle.

    ``allowed`` restricts the port to a set of values; ``fixed`` pins it
    to one value (a degenerate set).
    """

    port: str
    allowed: Sequence[int]

    @classmethod
    def fixed(cls, port: str, value: int) -> "InputAssumption":
        return cls(port=port, allowed=(value,))


@dataclass
class CoverObjective:
    """The covered expression.

    The objective holds in a cycle when *any* of the OR-group conditions
    holds AND *every* AND-group condition holds:

    * ``differ`` (OR group): net-name pairs satisfied when unequal —
      the shadow-vs-original comparison of §3.3.3;
    * ``asserted`` (OR group): nets satisfied when 1;
    * ``asserted_all`` (AND group): nets that must all be 1.

    At least one group must be non-empty.
    """

    differ: Sequence[Tuple[str, str]] = ()
    asserted: Sequence[str] = ()
    asserted_all: Sequence[str] = ()

    def support(self) -> List[str]:
        nets = [n for pair in self.differ for n in pair]
        nets.extend(self.asserted)
        nets.extend(self.asserted_all)
        return nets


@dataclass
class BmcResult:
    status: BmcStatus
    trace: Optional[Trace] = None
    depth_checked: int = 0
    conflicts: int = 0

    def __bool__(self) -> bool:
        return self.status is BmcStatus.COVERED


def suggested_depth(netlist: Netlist) -> int:
    """Pipeline depth (longest DFF chain) + 1 spare frame.

    For feed-forward pipelines this bounds the reachable-behaviour
    horizon; cyclic designs fall back to a conservative default.
    """
    order = netlist.levelize()
    # Longest chain of DFFs: rank DFFs by longest DFF-path feeding them.
    rank: Dict[str, int] = {}

    def dff_rank(dff: Instance, visiting: Set[str]) -> int:
        if dff.name in rank:
            return rank[dff.name]
        if dff.name in visiting:
            return 3  # cycle: conservative constant
        visiting.add(dff.name)
        best = 0
        frontier = [dff.pins["D"]]
        seen: Set[str] = set()
        while frontier:
            net = frontier.pop()
            if net.driver is None:
                continue
            inst = net.driver[0]
            if inst.ctype.is_seq:
                best = max(best, dff_rank(inst, visiting) + 1)
                continue
            if inst.name in seen:
                continue
            seen.add(inst.name)
            frontier.extend(inst.input_nets())
        visiting.discard(dff.name)
        rank[dff.name] = best
        return best

    depth = 0
    for dff in netlist.dffs():
        depth = max(depth, dff_rank(dff, set()))
    return depth + 2


def _static_coi(netlist: Netlist, targets: Sequence[str]) -> Set[str]:
    """Instance names whose behaviour can influence ``targets`` nets.

    Walks fan-in transitively, crossing DFFs (the unroller needs their
    previous-frame D cones too).
    """
    instances: Set[str] = set()
    frontier: List[Net] = [netlist.get_net(n) for n in targets]
    seen_nets: Set[str] = {n.name for n in frontier}
    while frontier:
        net = frontier.pop()
        if net.driver is None:
            continue
        inst = net.driver[0]
        if inst.name in instances:
            continue
        instances.add(inst.name)
        for in_net in inst.input_nets():
            if in_net.name not in seen_nets:
                seen_nets.add(in_net.name)
                frontier.append(in_net)
    return instances


@dataclass
class _FramePlan:
    """COI-reduced cell selection shared by every unrolled frame.

    Computing the static cone of influence and the topological order
    once per (netlist, objective-support) pair — instead of once per
    depth — is one of the lifting-path caches: the same shadow netlist
    is queried at depths 1, 2, … and the plan never changes.
    """

    comb_order: List[Instance]
    dffs: List[Instance]
    input_nets: List[str]


class BoundedModelChecker:
    """Unrolls a netlist and solves cover queries against it.

    Two solving strategies share one frame encoder:

    * **incremental** (default): one persistent :class:`SatSolver`
      receives one frame's CNF per depth; the per-frame cover selector
      is asserted as a solve-time *assumption literal*, so learned
      clauses, variable activities, and saved phases carry over from
      depth ``d`` to ``d+1``.
    * **fresh** (``incremental=False``): the original rebuild-per-depth
      loop, kept as the reference the incremental engine is equivalence-
      tested (and benchmarked) against.
    """

    def __init__(
        self,
        netlist: Netlist,
        assumptions: Sequence[InputAssumption] = (),
        conflict_budget: int = 200_000,
        incremental: bool = True,
    ):
        netlist.validate()
        self.netlist = netlist
        self.assumptions = list(assumptions)
        self.conflict_budget = conflict_budget
        self.incremental = incremental
        self._plan_cache: Dict[Tuple[str, ...], _FramePlan] = {}
        for assumption in self.assumptions:
            if assumption.port not in netlist.ports:
                raise ValueError(f"no input port {assumption.port!r}")

    # ------------------------------------------------------------------
    def _frame_plan(self, objective: CoverObjective) -> _FramePlan:
        """COI reduction for ``objective``, cached per support set."""
        key = tuple(sorted(set(objective.support())))
        plan = self._plan_cache.get(key)
        if plan is None:
            coi = _static_coi(self.netlist, key)
            plan = _FramePlan(
                comb_order=[
                    inst
                    for inst in self.netlist.levelize()
                    if inst.name in coi
                ],
                dffs=[d for d in self.netlist.dffs() if d.name in coi],
                input_nets=sorted(
                    net.name
                    for port in self.netlist.input_ports()
                    for net in port.nets
                ),
            )
            self._plan_cache[key] = plan
        return plan

    def _add_frame(
        self,
        solver: SatSolver,
        frames: List[Dict[str, int]],
        objective_vars: List[int],
        objective: CoverObjective,
        plan: _FramePlan,
    ) -> None:
        """Encode one more frame of the unrolling into ``solver``.

        Appends the frame's net-to-var map to ``frames`` and its cover
        selector variable to ``objective_vars``.  The selector is only
        *implied* towards the conditions (``frame_obj -> conditions``):
        asserting it positively — via a clause in the fresh path or an
        assumption literal in the incremental path — forces the
        objective at that cycle, while leaving it unconstrained keeps
        the frame's CNF satisfiable by any circuit behaviour.
        """
        t = len(frames)
        var_of: Dict[str, int] = {}
        # Input nets: fresh free variables each frame.
        for name in plan.input_nets:
            var_of[name] = solver.new_var()
        # DFF outputs: frame 0 pinned to init; later frames alias
        # the previous frame's D-net variable.
        for dff in plan.dffs:
            q_name = dff.output_net.name
            if t == 0:
                q_var = solver.new_var()
                solver.add_clause([q_var] if dff.init else [-q_var])
                var_of[q_name] = q_var
            else:
                var_of[q_name] = frames[t - 1][dff.pins["D"].name]
        # Combinational cells in topological order.
        for inst in plan.comb_order:
            out_name = inst.output_net.name
            var_of[out_name] = solver.new_var()
            missing = [
                n.name
                for n in inst.input_nets()
                if n.name not in var_of
            ]
            for name in missing:
                # Input outside the COI (e.g. a net fed by a
                # non-COI cell was impossible by construction, but
                # dangling module inputs may appear): free variable.
                var_of[name] = solver.new_var()
            encode_instance(solver, inst, var_of)
        # Assumptions per frame.
        for assumption in self.assumptions:
            port = self.netlist.ports[assumption.port]
            bit_vars = [var_of[n.name] for n in port.nets]
            encode_in_set(solver, bit_vars, assumption.allowed)
        # Objective selector for this frame.
        or_vars: List[int] = []
        for left, right in objective.differ:
            or_vars.append(
                encode_xor_var(solver, var_of[left], var_of[right])
            )
        for name in objective.asserted:
            or_vars.append(var_of[name])
        all_vars = [var_of[name] for name in objective.asserted_all]
        if or_vars or all_vars:
            frame_obj = solver.new_var()
            if or_vars:
                solver.add_clause([-frame_obj] + or_vars)
            for v in all_vars:
                solver.add_clause([-frame_obj, v])
            objective_vars.append(frame_obj)
        frames.append(var_of)

    # ------------------------------------------------------------------
    def cover(
        self,
        objective: CoverObjective,
        max_depth: Optional[int] = None,
        observe: Sequence[str] = (),
        incremental: Optional[bool] = None,
    ) -> BmcResult:
        """Find the shortest witness reaching the objective.

        Depths 1..max_depth are tried in order so the returned trace is
        minimal, matching the paper's emphasis on tiny test cases.
        ``incremental`` overrides the checker-level strategy for this
        query; both strategies return identical verdicts and trace
        lengths (enforced by the equivalence test suite).
        """
        if incremental is None:
            incremental = self.incremental
        max_depth = max_depth or suggested_depth(self.netlist)
        plan = self._frame_plan(objective)
        if incremental:
            result = self._cover_incremental(objective, max_depth, observe, plan)
        else:
            result = self._cover_fresh(objective, max_depth, observe, plan)
        telemetry.add("bmc.queries")
        telemetry.add(f"bmc.{result.status.value}")
        telemetry.add("bmc.frames", result.depth_checked)
        return result

    def _cover_incremental(
        self,
        objective: CoverObjective,
        max_depth: int,
        observe: Sequence[str],
        plan: _FramePlan,
    ) -> BmcResult:
        """One persistent solver; cover gated behind assumption literals.

        Depth ``d`` adds frame ``d``'s CNF and solves under the single
        assumption "frame ``d``'s selector holds".  Earlier selectors
        revert to unconstrained, so the query is exactly the fresh
        path's "objective at the last frame" — but the solver keeps its
        learned clauses and heuristic state between depths.  Each depth
        receives a fresh ``conflict_budget`` on top of the cumulative
        conflict count.
        """
        solver = SatSolver()
        frames: List[Dict[str, int]] = []
        objective_vars: List[int] = []
        for depth in range(1, max_depth + 1):
            self._add_frame(solver, frames, objective_vars, objective, plan)
            if not objective_vars:
                raise ValueError("objective has no conditions")
            t0 = time.perf_counter()
            result = solver.solve(
                conflict_limit=solver.conflicts + self.conflict_budget,
                assumptions=[objective_vars[-1]],
            )
            telemetry.add(f"bmc.solve_s.depth{depth}", time.perf_counter() - t0)
            if result.status is SatStatus.UNKNOWN:
                return BmcResult(
                    BmcStatus.BUDGET_EXCEEDED,
                    depth_checked=depth,
                    conflicts=solver.conflicts,
                )
            if result.status is SatStatus.SAT:
                trace = self._extract(result.model, frames, observe)
                trace.property_cycle = depth - 1
                return BmcResult(
                    BmcStatus.COVERED,
                    trace=trace,
                    depth_checked=depth,
                    conflicts=solver.conflicts,
                )
        return BmcResult(
            BmcStatus.UNREACHABLE,
            depth_checked=max_depth,
            conflicts=solver.conflicts,
        )

    def _cover_fresh(
        self,
        objective: CoverObjective,
        max_depth: int,
        observe: Sequence[str],
        plan: _FramePlan,
    ) -> BmcResult:
        """The seed engine: a fresh solver and full re-unroll per depth."""
        total_conflicts = 0
        for depth in range(1, max_depth + 1):
            solver = SatSolver()
            frames: List[Dict[str, int]] = []
            obj_vars: List[int] = []
            for _ in range(depth):
                self._add_frame(solver, frames, obj_vars, objective, plan)
            if not obj_vars:
                raise ValueError("objective has no conditions")
            # Require the objective exactly at the last frame (earlier
            # frames were covered by earlier iterations).
            solver.add_clause([obj_vars[-1]])
            t0 = time.perf_counter()
            result = solver.solve(conflict_limit=self.conflict_budget)
            telemetry.add(f"bmc.solve_s.depth{depth}", time.perf_counter() - t0)
            total_conflicts += result.conflicts
            if result.status is SatStatus.UNKNOWN:
                return BmcResult(
                    BmcStatus.BUDGET_EXCEEDED,
                    depth_checked=depth,
                    conflicts=total_conflicts,
                )
            if result.status is SatStatus.SAT:
                trace = self._extract(result.model, frames, observe)
                trace.property_cycle = depth - 1
                return BmcResult(
                    BmcStatus.COVERED,
                    trace=trace,
                    depth_checked=depth,
                    conflicts=total_conflicts,
                )
        return BmcResult(
            BmcStatus.UNREACHABLE,
            depth_checked=max_depth,
            conflicts=total_conflicts,
        )

    def _extract(
        self,
        model: Mapping[int, bool],
        frames: List[Dict[str, int]],
        observe: Sequence[str],
    ) -> Trace:
        trace = Trace(netlist_name=self.netlist.name)
        for var_of in frames:
            frame_inputs: Dict[str, int] = {}
            for port in self.netlist.input_ports():
                value = 0
                for i, net in enumerate(port.nets):
                    var = var_of.get(net.name)
                    if var is not None and model.get(var, False):
                        value |= 1 << i
                frame_inputs[port.name] = value
            observed: Dict[str, int] = {}
            for name in observe:
                var = var_of.get(name)
                if var is not None:
                    observed[name] = int(model.get(var, False))
            trace.inputs.append(frame_inputs)
            trace.observed.append(observed)
        return trace
