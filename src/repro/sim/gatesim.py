"""Compiled, bit-parallel gate-level simulator.

This is the repo's stand-in for Verilator: it evaluates a synthesized
:class:`~repro.netlist.Netlist` cycle by cycle.  Two tricks keep pure
Python fast enough for whole-workload signal-probability profiling:

* **Compilation** — the levelized netlist is translated once into a
  Python function (one local assignment per gate) and ``exec``'d, so the
  per-cycle cost is straight-line bytecode, not graph interpretation.
* **Bit-parallelism** — net values are arbitrary-width Python ints; bit
  ``i`` of every value belongs to independent stimulus vector ``i``.
  One call to :meth:`GateSimulator.step` therefore simulates up to
  thousands of input vectors at once, which is how SP profiling over a
  long operand stream stays cheap.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..core import telemetry
from ..netlist.netlist import Instance, Net, Netlist

#: Compiled evaluation functions, keyed by netlist identity and tagged
#: with the netlist's structural version.  Building a simulator for the
#: same (unmodified) netlist twice — the Error Lifter does this once per
#: golden-output replay — then reuses the compiled bytecode instead of
#: re-exec'ing the generated source.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Netlist, Tuple[int, Callable]]" = (
    weakref.WeakKeyDictionary()
)

#: Process-wide count of simulated clock edges, across every simulator
#: instance.  The artifact-cache tests (and benchmarks) read this to
#: prove a cached Aging Analysis run re-simulated nothing.
_CYCLE_TALLY = 0


def simulated_cycles() -> int:
    """Total clock edges stepped by this process, across all simulators."""
    return _CYCLE_TALLY

_GATE_EXPR = {
    "BUF": "{a}",
    "CLKBUF": "{a}",
    "INV": "(~{a} & mask)",
    "AND2": "({a} & {b})",
    "OR2": "({a} | {b})",
    "NAND2": "(~({a} & {b}) & mask)",
    "NOR2": "(~({a} | {b}) & mask)",
    "XOR2": "({a} ^ {b})",
    "XNOR2": "(~({a} ^ {b}) & mask)",
    "MUX2": "((({a}) & ~{s} | ({b}) & {s}) & mask)",
    "TIE0": "0",
    "TIE1": "mask",
}


class SimulationError(Exception):
    """Raised for bad stimulus (unknown port, value overflow)."""


def pack_vectors(values: Sequence[int], width: int) -> List[int]:
    """Transpose per-vector port values into bit-plane masks.

    ``values`` holds one integer per stimulus vector; the result holds
    one mask per bit position, where bit ``v`` of mask ``i`` is bit ``i``
    of ``values[v]``.

    Single pass over the *set* bits of each value: zero values cost one
    truth test, and a value with k set bits costs k isolate-lowest-bit
    steps — O(vectors + popcount) instead of O(vectors × width).  Bits
    at positions >= ``width`` are ignored, as before.
    """
    planes = [0] * width
    value_mask = (1 << width) - 1
    for vec_index, value in enumerate(values):
        rest = value & value_mask
        if not rest:
            continue
        vec_bit = 1 << vec_index
        while rest:
            low = rest & -rest
            planes[low.bit_length() - 1] |= vec_bit
            rest ^= low
    return planes


def unpack_vectors(
    planes: Sequence[int], count: int, strict: bool = True
) -> List[int]:
    """Inverse of :func:`pack_vectors` for ``count`` stimulus vectors.

    A plane bit at vector index >= ``count`` indicates a mask/count
    mismatch upstream (the planes were simulated with a wider mask than
    the caller believes) and raises :class:`ValueError`; pass
    ``strict=False`` to truncate such bits deliberately.
    """
    values = [0] * count
    for bit_index, plane in enumerate(planes):
        rest = plane
        while rest:
            low = rest & -rest
            vec = low.bit_length() - 1
            if vec < count:
                values[vec] |= 1 << bit_index
            elif strict:
                raise ValueError(
                    f"plane {bit_index} has a bit at vector index {vec}, "
                    f"beyond the {count} vectors requested — mask/count "
                    "mismatch (pass strict=False to truncate)"
                )
            rest ^= low
    return values


class GateSimulator:
    """Cycle-based two-state simulator for a single-clock netlist.

    Outputs are combinationally visible within the cycle (before the
    clock edge); :meth:`step` then advances every DFF.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._net_index: Dict[str, int] = {
            name: i for i, name in enumerate(netlist.nets)
        }
        self._net_names: List[str] = list(netlist.nets)
        self._dffs: List[Instance] = netlist.dffs()
        self._dff_d_index: List[int] = [
            self._net_index[d.pins["D"].name] for d in self._dffs
        ]
        self._dff_q_index: List[int] = [
            self._net_index[d.output_net.name] for d in self._dffs
        ]
        self._input_nets: List[Net] = [
            net
            for port in netlist.input_ports()
            for net in port.nets
        ]
        self._input_index: List[int] = [
            self._net_index[n.name] for n in self._input_nets
        ]
        self._eval = self._compile()
        self.state: List[int] = [0] * len(self._dffs)
        self.values: List[int] = [0] * len(self._net_names)
        self.cycle_count = 0
        self.reset()

    # ------------------------------------------------------------------
    def _compile(self):
        """Compiled evaluation function, reused across simulators.

        The generated source depends only on the netlist's structure, so
        the exec'd function is cached per (netlist, structural version)
        and shared by every :class:`GateSimulator` over that netlist.
        """
        cached = _COMPILE_CACHE.get(self.netlist)
        version = self.netlist.version
        if cached is not None and cached[0] == version:
            telemetry.add("sim.compile.hits")
            return cached[1]
        telemetry.add("sim.compile.misses")
        fn = self._compile_uncached()
        _COMPILE_CACHE[self.netlist] = (version, fn)
        return fn

    def _compile_uncached(self):
        """Build the straight-line evaluation function."""
        order = self.netlist.levelize()
        lines = ["def _cycle(vals, mask):"]
        # Load sources (inputs + DFF Q) from the shared value array.
        loaded = set(self._input_index) | set(self._dff_q_index)
        for idx in sorted(loaded):
            lines.append(f"    v{idx} = vals[{idx}]")
        for inst in order:
            out_idx = self._net_index[inst.output_net.name]
            template = _GATE_EXPR.get(inst.ctype.name)
            if template is None:
                raise SimulationError(
                    f"no simulation model for cell {inst.ctype.name}"
                )
            pins = {
                pin.lower(): f"v{self._net_index[inst.pins[pin].name]}"
                for pin in inst.ctype.inputs
            }
            expr = template.format(**pins)
            lines.append(f"    v{out_idx} = {expr}")
            lines.append(f"    vals[{out_idx}] = v{out_idx}")
        lines.append("    return vals")
        source = "\n".join(lines)
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<gatesim:{self.netlist.name}>", "exec"), namespace)
        return namespace["_cycle"]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Apply the reset state: every DFF returns to its init value.

        In bit-parallel mode the init bit is broadcast to all vectors on
        the next :meth:`step` via the mask.  The reset width is not yet
        known here (the mask arrives with the stimulus), so an init of 1
        is stored as the all-ones integer ``-1`` — ``-1 & mask`` in
        :meth:`_load_state` then broadcasts it to every vector, however
        wide the next packed stimulus turns out to be.
        """
        self.state = [-1 if d.init else 0 for d in self._dffs]
        self.cycle_count = 0

    def _apply_inputs(self, inputs: Dict[str, int], mask: int) -> None:
        consumed = set()
        for port in self.netlist.input_ports():
            if port.name not in inputs:
                raise SimulationError(f"missing stimulus for port {port.name!r}")
            value = inputs[port.name]
            consumed.add(port.name)
            for bit_index, net in enumerate(port.nets):
                plane = (value >> bit_index) & 1
                self.values[self._net_index[net.name]] = mask if plane else 0
        extra = set(inputs) - consumed
        if extra:
            raise SimulationError(f"unknown input ports {sorted(extra)}")

    def _apply_packed_inputs(
        self, inputs: Dict[str, Sequence[int]], mask: int
    ) -> None:
        consumed = set()
        for port in self.netlist.input_ports():
            planes = inputs.get(port.name)
            if planes is None:
                raise SimulationError(f"missing stimulus for port {port.name!r}")
            if len(planes) != port.width:
                raise SimulationError(
                    f"port {port.name!r} needs {port.width} planes, "
                    f"got {len(planes)}"
                )
            consumed.add(port.name)
            for bit_index, net in enumerate(port.nets):
                self.values[self._net_index[net.name]] = planes[bit_index] & mask
        extra = set(inputs) - consumed
        if extra:
            raise SimulationError(f"unknown input ports {sorted(extra)}")

    def _load_state(self, mask: int) -> None:
        for q_idx, value in zip(self._dff_q_index, self.state):
            self.values[q_idx] = value & mask

    def evaluate(
        self,
        inputs: Dict[str, int],
        mask: int = 1,
        packed: bool = False,
    ) -> Dict[str, int]:
        """Combinationally evaluate without clocking the DFFs.

        ``inputs`` maps port name to an integer value (scalar mode), or
        to a list of bit-plane masks when ``packed`` is true.
        """
        if packed:
            self._apply_packed_inputs(inputs, mask)  # type: ignore[arg-type]
        else:
            self._apply_inputs(inputs, mask)
        self._load_state(mask)
        self._eval(self.values, mask)
        return self.read_outputs()

    def step(
        self,
        inputs: Dict[str, int],
        mask: int = 1,
        packed: bool = False,
    ) -> Dict[str, int]:
        """Evaluate one cycle and advance the clock edge."""
        global _CYCLE_TALLY
        outputs = self.evaluate(inputs, mask, packed)
        self.state = [self.values[d_idx] & mask for d_idx in self._dff_d_index]
        self.cycle_count += 1
        _CYCLE_TALLY += 1
        telemetry.add("sim.cycles")
        return outputs

    # ------------------------------------------------------------------
    def read_outputs(self) -> Dict[str, int]:
        """Current output-port values as bit-plane lists (width>1 packed).

        In scalar mode (mask=1) the planes collapse back to the port's
        integer value; use :meth:`read_output_value` for that.
        """
        result: Dict[str, int] = {}
        for port in self.netlist.output_ports():
            value = 0
            for bit_index, net in enumerate(port.nets):
                if self.values[self._net_index[net.name]] & 1:
                    value |= 1 << bit_index
            result[port.name] = value
        return result

    def read_output_planes(self, port_name: str) -> List[int]:
        port = self.netlist.ports[port_name]
        return [self.values[self._net_index[n.name]] for n in port.nets]

    def read_net(self, net_name: str) -> int:
        return self.values[self._net_index[net_name]]

    def net_values(self) -> Dict[str, int]:
        """Snapshot of every net's current (possibly packed) value."""
        return {
            name: self.values[idx]
            for name, idx in self._net_index.items()
        }

    def run(
        self,
        stimulus: Iterable[Dict[str, int]],
        mask: int = 1,
        packed: bool = False,
    ) -> List[Dict[str, int]]:
        """Clock the netlist through a stimulus sequence; collect outputs.

        Equivalent to calling :meth:`step` per vector, but the compiled
        ``_cycle`` function, input applicator, and hot attribute lookups
        are hoisted out of the loop, so the per-cycle cost is the
        compiled straight-line evaluation plus state capture only —
        no re-entry into the :meth:`_compile` cache machinery or method
        dispatch per cycle.
        """
        global _CYCLE_TALLY
        eval_fn = self._eval
        apply_fn = self._apply_packed_inputs if packed else self._apply_inputs
        load_state = self._load_state
        read_outputs = self.read_outputs
        values = self.values
        d_index = self._dff_d_index
        outputs: List[Dict[str, int]] = []
        cycles = 0
        for vec in stimulus:
            apply_fn(vec, mask)  # type: ignore[arg-type]
            load_state(mask)
            eval_fn(values, mask)
            outputs.append(read_outputs())
            self.state = [values[d_idx] & mask for d_idx in d_index]
            cycles += 1
        self.cycle_count += cycles
        _CYCLE_TALLY += cycles
        telemetry.add("sim.cycles", cycles)
        return outputs

    def run_planes(
        self,
        stimulus: Iterable[Dict[str, Sequence[int]]],
        mask: int,
        watch: Sequence[str],
    ) -> List[Tuple[List[int], ...]]:
        """Packed-only :meth:`run` that captures raw bit-planes.

        :meth:`read_outputs` collapses every plane to its vector-0 bit,
        which throws away exactly what a multi-plane consumer (the
        packed campaign prefilter) needs.  This variant drives packed
        stimulus with the same hoisted hot loop and records, per cycle,
        the undisturbed plane list of each port named in ``watch`` —
        bit ``k`` of plane ``i`` is output bit ``i`` of stimulus plane
        ``k``.
        """
        global _CYCLE_TALLY
        watch_indices = [
            [self._net_index[net.name] for net in self.netlist.ports[p].nets]
            for p in watch
        ]
        eval_fn = self._eval
        apply_fn = self._apply_packed_inputs
        load_state = self._load_state
        values = self.values
        d_index = self._dff_d_index
        captured: List[Tuple[List[int], ...]] = []
        cycles = 0
        for vec in stimulus:
            apply_fn(vec, mask)
            load_state(mask)
            eval_fn(values, mask)
            captured.append(
                tuple([values[i] for i in idxs] for idxs in watch_indices)
            )
            self.state = [values[d_idx] & mask for d_idx in d_index]
            cycles += 1
        self.cycle_count += cycles
        _CYCLE_TALLY += cycles
        telemetry.add("sim.cycles", cycles)
        return captured
