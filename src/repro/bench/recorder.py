"""The session benchmark recorder and shared atomic file writes.

:class:`BenchRecorder` collects :class:`~repro.bench.sample.Sample`
records per benchmark name and, when the benchmark registers its human
table, atomically publishes both artifacts:

* ``<results_dir>/<name>.txt`` — the unchanged human-readable table,
  newline-terminated;
* ``<json_dir>/BENCH_<name>.json`` — the canonical sample document.

Writes go through :func:`atomic_write_text` (temp file + ``os.replace``
with ``parents=True``), so an interrupted run never leaves a partial
table or document addressable, and a fresh checkout with no
``results/`` directory just works.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import time
from typing import Any, Dict, List, Optional

from .sample import Sample, canonical_dumps, document_from_samples


def atomic_write_text(path: pathlib.Path, text: str) -> pathlib.Path:
    """Atomically write ``text`` (newline-terminated) to ``path``.

    Creates missing parent directories, writes to a same-directory temp
    file, then publishes with ``os.replace`` so readers never observe a
    partial file.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not text.endswith("\n"):
        text += "\n"
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()
    return path


def git_revision(cwd: Optional[pathlib.Path] = None) -> str:
    """Short git rev of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


class BenchRecorder:
    """Collects samples + tables per benchmark and publishes both.

    ``common_metadata`` (git rev, timestamp, cpu count, smoke flag) is
    folded into every sample; per-sample keyword metadata wins on
    collision.
    """

    def __init__(
        self,
        results_dir: pathlib.Path,
        json_dir: pathlib.Path,
        common_metadata: Optional[Dict[str, Any]] = None,
    ):
        self.results_dir = pathlib.Path(results_dir)
        self.json_dir = pathlib.Path(json_dir)
        if common_metadata is None:
            common_metadata = default_common_metadata()
        self.common_metadata = dict(common_metadata)
        self._samples: Dict[str, List[Sample]] = {}
        self._published: Dict[str, pathlib.Path] = {}

    # -- registration --------------------------------------------------
    def sample(
        self,
        bench: str,
        metric: str,
        value: float,
        unit: str,
        /,
        **metadata: Any,
    ) -> Sample:
        """Register one measurement for benchmark ``bench``.

        The leading parameters are positional-only so metadata keys
        may reuse their names — ``unit="alu"`` (the design unit) is a
        metadata key on half the paper-table benchmarks, distinct from
        the sample's measurement unit.
        """
        merged = dict(self.common_metadata)
        merged.update(metadata)
        sample = Sample(metric=metric, value=value, unit=unit,
                        metadata=merged)
        self._samples.setdefault(bench, []).append(sample)
        return sample

    def samples_for(self, bench: str) -> List[Sample]:
        return list(self._samples.get(bench, []))

    # -- publication ---------------------------------------------------
    def table(self, bench: str, text: str) -> None:
        """Register the human table and flush both artifacts."""
        atomic_write_text(self.results_dir / f"{bench}.txt", text)
        print(f"\n=== {bench} ===\n{text}")
        self.flush(bench)

    def flush(self, bench: str) -> pathlib.Path:
        """Write (or rewrite) BENCH_<bench>.json from registered samples."""
        document = document_from_samples(bench, self._samples.get(bench, []))
        path = atomic_write_text(
            self.json_dir / f"BENCH_{bench}.json", canonical_dumps(document)
        )
        self._published[bench] = path
        return path

    def flush_all(self) -> List[pathlib.Path]:
        """Publish every benchmark that registered samples but no table."""
        return [
            self.flush(bench)
            for bench in sorted(self._samples)
            if bench not in self._published
        ]


def default_common_metadata() -> Dict[str, Any]:
    return {
        "git_rev": git_revision(),
        "timestamp": int(time.time()),
        "cpus": os.cpu_count() or 1,
        "smoke": os.environ.get("VEGA_SMOKE") == "1",
    }
