"""Checkpoint/resume of the full workflow, plus phase-2 degradation.

The contract under test: every completed phase publishes a pickled
checkpoint through the artifact cache, a run restarted with
``resume=True`` recomputes nothing that already completed (a resumed
phase 1 steps **zero** gate-simulator cycles), and the resumed run's
report is bit-identical to an uninterrupted one.
"""

import pytest

from repro.core.artifacts import ArtifactCache
from repro.core.config import (
    AgingAnalysisConfig,
    ErrorLiftingConfig,
    VegaConfig,
)
from repro.core import telemetry
from repro.core.workflow import VegaWorkflow
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.sim.gatesim import simulated_cycles
from repro.workloads import collect_operand_streams


@pytest.fixture(scope="module")
def alu():
    return build_alu()


@pytest.fixture(scope="module")
def alu_stream():
    stream, _ = collect_operand_streams(["minver"])
    return stream


def _config(cache_dir) -> VegaConfig:
    return VegaConfig(
        aging=AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=50),
        lifting=ErrorLiftingConfig(bmc_depth=4),
        cache_dir=str(cache_dir),
    )


@pytest.fixture(scope="module")
def baseline(alu, alu_stream, tmp_path_factory):
    """One uninterrupted cached run; (report, workflow) for reuse."""
    workflow = VegaWorkflow(_config(tmp_path_factory.mktemp("ckpt-a")))
    report = workflow.run(alu, alu_stream, AluMapper())
    return report, workflow


def _raise_on_unpickle():
    raise RuntimeError("bug in checkpointed object")


class _ExplodesOnLoad:
    """Pickles fine; reconstruction raises a non-corruption error."""

    def __reduce__(self):
        return (_raise_on_unpickle, ())


class TestCheckpointStore:
    def test_pickle_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store_checkpoint("ab" * 32, {"answer": 42})
        assert cache.load_checkpoint("ab" * 32) == {"answer": 42}

    def test_missing_counts_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load_checkpoint("cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_checkpoint_counts_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.store_checkpoint("ef" * 32, [1, 2, 3])
        path.write_bytes(b"\x80\x04 truncated garbage")
        with pytest.warns(UserWarning, match="[Cc]orrupt"):
            assert cache.load_checkpoint("ef" * 32) is None
        assert cache.misses == 1

    def test_corrupt_checkpoint_is_quarantined_and_reported(self, tmp_path):
        # Regression: a truncated checkpoint used to vanish into a
        # silent miss — no warning, no telemetry, and the bad file
        # left in place to be "loaded" again next run.
        cache = ArtifactCache(tmp_path)
        path = cache.store_checkpoint("12" * 32, {"phase": 1})
        path.write_bytes(path.read_bytes()[:7])  # truncate mid-stream

        collector = telemetry.Telemetry()
        with telemetry.use(collector):
            with pytest.warns(UserWarning, match="quarantined"):
                assert cache.load_checkpoint("12" * 32) is None

        # The poisoned file no longer answers to its cache key...
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()
        # ...so the next lookup is a clean miss, not another warning.
        assert cache.load_checkpoint("12" * 32) is None
        assert cache.misses == 2

        assert collector.counters.get("cache.checkpoint_corrupt") == 1
        events = [
            r for r in collector.records
            if r["type"] == "event" and r["name"] == "cache.checkpoint_corrupt"
        ]
        assert len(events) == 1
        assert events[0]["attrs"]["quarantined"] == str(quarantined)
        assert "Error" in events[0]["attrs"]["error"]

    def test_unrelated_errors_still_propagate(self, tmp_path):
        # The except is narrow: a bug *inside* a checkpointed object's
        # reconstruction is not file corruption and must not be
        # silently converted into a cache miss.
        cache = ArtifactCache(tmp_path)
        cache.store_checkpoint("34" * 32, _ExplodesOnLoad())
        with pytest.raises(RuntimeError, match="checkpointed object"):
            cache.load_checkpoint("34" * 32)


class TestCheckpointKeys:
    def test_changed_aging_input_invalidates_every_phase(
        self, alu, alu_stream
    ):
        base = VegaWorkflow(
            _config("unused")
        )._checkpoint_keys(alu, list(alu_stream), None, None, AluMapper())
        changed_config = _config("unused")
        changed_config.aging.lifetime_years *= 2
        changed = VegaWorkflow(changed_config)._checkpoint_keys(
            alu, list(alu_stream), None, None, AluMapper()
        )
        # Keys cascade: a phase-1 input change invalidates all three.
        assert base["phase1"] != changed["phase1"]
        assert base["phase2"] != changed["phase2"]
        assert base["phase3"] != changed["phase3"]

    def test_parallelism_knobs_do_not_change_keys(self, alu, alu_stream):
        base = VegaWorkflow(
            _config("unused")
        )._checkpoint_keys(alu, list(alu_stream), None, None, AluMapper())
        knobbed_config = _config("unused")
        knobbed_config.lifting.workers = 8
        knobbed_config.lifting.keep_going = False
        knobbed = VegaWorkflow(knobbed_config)._checkpoint_keys(
            alu, list(alu_stream), None, None, AluMapper()
        )
        assert base == knobbed


class TestFullResume:
    def test_resume_simulates_zero_cycles(self, baseline, alu, alu_stream):
        report, workflow = baseline
        before = simulated_cycles()
        resumed = workflow.run(alu, alu_stream, AluMapper(), resume=True)
        assert simulated_cycles() == before
        assert resumed.resumed_phases == ["phase1", "phase2", "phase3"]
        assert resumed.to_markdown() == report.to_markdown()

    def test_resumed_spans_annotated(self, baseline, alu, alu_stream):
        _, workflow = baseline
        resumed = workflow.run(alu, alu_stream, AluMapper(), resume=True)
        spans = {
            r["name"]: r
            for r in resumed.telemetry.records
            if r["type"] == "span" and r["parent"] is None
        }
        assert all(spans[name]["attrs"]["resumed"] for name in spans)

    def test_without_resume_flag_nothing_loads(self, baseline, alu, alu_stream):
        _, workflow = baseline
        before = simulated_cycles()
        fresh = workflow.run(alu, alu_stream, AluMapper())
        assert fresh.resumed_phases == []
        assert simulated_cycles() > before


class TestCrashAfterPhase1:
    def test_resume_skips_phase1_entirely(
        self, baseline, alu, alu_stream, tmp_path, monkeypatch
    ):
        report, _ = baseline
        workflow = VegaWorkflow(_config(tmp_path))

        class Boom(RuntimeError):
            pass

        def crash(self, *args, **kwargs):
            raise Boom("killed after phase 1")

        with monkeypatch.context() as patch:
            patch.setattr(VegaWorkflow, "run_error_lifting", crash)
            with pytest.raises(Boom):
                workflow.run(alu, alu_stream, AluMapper())

        # Phase 1 must come from its checkpoint: poison recomputation.
        with monkeypatch.context() as patch:
            patch.setattr(VegaWorkflow, "run_aging_analysis", crash)
            resumed = workflow.run(alu, alu_stream, AluMapper(), resume=True)
        assert resumed.resumed_phases == ["phase1"]
        phase1 = next(
            r
            for r in resumed.telemetry.records
            if r["type"] == "span" and r["name"] == "phase1.aging_analysis"
        )
        assert phase1["attrs"]["resumed"] is True
        # Zero simulation attributed to the resumed phase.
        assert "sim.cycles" not in phase1["counters"]
        # The completed run is indistinguishable from an uninterrupted one.
        assert resumed.to_markdown() == report.to_markdown()


class TestTraceCoversAllPhases:
    def test_top_level_spans(self, baseline):
        report, _ = baseline
        names = {
            r["name"]
            for r in report.telemetry.records
            if r["type"] == "span" and r["parent"] is None
        }
        assert names == {
            "phase1.aging_analysis",
            "phase2.error_lifting",
            "phase3.test_integration",
        }

    def test_counters_from_every_layer(self, baseline):
        report, _ = baseline
        counters = report.telemetry.counters
        for name in (
            "sim.cycles",        # gate simulator
            "sta.violations",    # aging STA
            "sat.decisions",     # CDCL core
            "bmc.queries",       # BMC driver
            "lifting.pairs",     # phase-2 fan-out
            "integration.suite_cycles",  # phase-3 suite
        ):
            assert counters.get(name, 0) > 0, name

    def test_trace_round_trips(self, baseline):
        report, _ = baseline
        text = report.telemetry.to_jsonl()
        records = telemetry.parse_trace(text)
        assert telemetry.dump_trace(records) == text


class TestPhase2Degradation:
    def _poison(self, monkeypatch, victim_start):
        from repro.lifting.lifter import ErrorLifter

        original = ErrorLifter.lift_pair

        def lift_pair(self, violation):
            if violation.start == victim_start:
                raise RuntimeError("poisoned pair")
            return original(self, violation)

        monkeypatch.setattr(ErrorLifter, "lift_pair", lift_pair)

    def test_keep_going_records_error_and_continues(
        self, baseline, alu, monkeypatch
    ):
        from repro.lifting.lifter import ErrorLifter, PairOutcome

        report, _ = baseline
        pairs = report.lifting_report.pairs
        assert len(pairs) > 1
        victim = pairs[0].start
        self._poison(monkeypatch, victim)
        lifter = ErrorLifter(
            alu, ErrorLiftingConfig(bmc_depth=4, keep_going=True), AluMapper()
        )
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            lifting = lifter.lift(report.sta_report.report)
        # The poisoned pair is accounted, not fatal.
        assert len(lifting.pairs) == len(pairs)
        errors = lifting.error_pairs
        assert [p.start for p in errors] == [victim]
        assert errors[0].outcome is PairOutcome.FORMAL_FAILURE
        assert "RuntimeError: poisoned pair" in errors[0].error
        # The survivors still produced their tests.
        assert lifting.test_cases
        # And the crash landed in the trace.
        assert tele.counters["lifting.pair_errors"] == 1
        events = [
            r
            for r in tele.records
            if r["type"] == "event" and r["name"] == "lifting.pair_error"
        ]
        assert len(events) == 1
        assert events[0]["attrs"]["start"] == victim

    def test_keep_going_off_reraises(self, baseline, alu, monkeypatch):
        from repro.lifting.lifter import ErrorLifter

        report, _ = baseline
        self._poison(monkeypatch, report.lifting_report.pairs[0].start)
        lifter = ErrorLifter(
            alu, ErrorLiftingConfig(bmc_depth=4, keep_going=False), AluMapper()
        )
        with pytest.raises(RuntimeError, match="poisoned"):
            lifter.lift(report.sta_report.report)
