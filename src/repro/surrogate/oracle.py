"""Exact per-device aging oracle: the surrogate's label source.

One oracle wraps the exact bottom-up pipeline — charlib aging-library
characterization at the device's corner temperature plus aging-aware
STA — and answers two questions per (SP profile, corner):

* ``onset(profile, corner)``: first age on the configured grid whose
  aged STA violates, scanning the grid in order with early exit.  The
  linear scan is deliberate: it matches the "first violating age in
  the sweep grid" semantics of
  :class:`repro.core.lifetime.LifetimeSimulator`, with no monotonicity
  assumption layered on top.
* ``label(...)``: the dataset row's targets — (onset or censored,
  worst setup slack at a sampled age).

Characterized libraries are cached per (age, corner temperature): the
Arrhenius term makes the typical corner's 25 degC BTI ~57x slower than
the sign-off corner's 105 degC, which is exactly the per-corner signal
the surrogate's corner features learn.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..aging.charlib import AgingTimingLibrary
from ..aging.corners import OperatingCorner
from ..core import telemetry
from ..core.config import AgingAnalysisConfig, SurrogateConfig
from ..netlist.cells import CellLibrary
from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile
from ..sta.aging_sta import AgingAwareSta
from ..sta.timing import StaticTimingAnalyzer


class ExactAgingOracle:
    """Labels (profile, corner, age) triples with the exact pipeline.

    Probes are cheap relative to a full phase-1 run: paths are only
    enumerated one per endpoint (the oracle needs the violation *bit*
    and the WNS, not the Table 3 path census), and the derived sign-off
    period plus per-(age, temperature) aging libraries are computed
    once and reused across every device the oracle labels.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: CellLibrary,
        config: Optional[SurrogateConfig] = None,
        aging_config: Optional[AgingAnalysisConfig] = None,
        gated_instances: Optional[Mapping[str, float]] = None,
    ):
        self.netlist = netlist
        self.library = library
        self.config = config or SurrogateConfig()
        self.aging_config = aging_config or AgingAnalysisConfig()
        self.age_grid: Tuple[float, ...] = tuple(self.config.age_grid)
        self._libs: Dict[Tuple[float, float], AgingTimingLibrary] = {}
        self._sta: Dict[str, AgingAwareSta] = {}
        self._period: Dict[str, float] = {}
        self._gated = gated_instances

    # ------------------------------------------------------------------
    @property
    def censored_onset(self) -> float:
        """Right-censored onset label for never-violating devices."""
        return round(self.config.censor_factor * self.age_grid[-1], 6)

    def sta_for(self, corner: OperatingCorner) -> AgingAwareSta:
        """The (library-less) aging STA driver for one corner."""
        sta = self._sta.get(corner.name)
        if sta is None:
            sta = AgingAwareSta(
                self.netlist,
                timing_lib=None,
                config=self.aging_config,
                corner=corner,
                gated_instances=self._gated,
            )
            self._sta[corner.name] = sta
        return sta

    def period_for(self, corner: OperatingCorner) -> float:
        """Fresh sign-off period at ``corner`` (cached)."""
        period = self._period.get(corner.name)
        if period is None:
            period = self.sta_for(corner).derive_period()
            self._period[corner.name] = period
        return period

    def _library_at(
        self, age_years: float, corner: OperatingCorner
    ) -> AgingTimingLibrary:
        key = (age_years, corner.temperature_c)
        lib = self._libs.get(key)
        if lib is None:
            lib = AgingTimingLibrary.characterize(
                self.library,
                lifetime_years=age_years,
                temperature_c=corner.temperature_c,
            )
            self._libs[key] = lib
        return lib

    # ------------------------------------------------------------------
    def probe(
        self, profile: SPProfile, corner: OperatingCorner, age_years: float
    ) -> Tuple[bool, float]:
        """(violates?, worst setup slack ns) at one aged operating point."""
        sta = self.sta_for(corner)
        sta.timing_lib = self._library_at(age_years, corner)
        model, _ = sta.aged_delay_model(profile)
        report = StaticTimingAnalyzer(self.netlist, model).check(
            self.period_for(corner),
            max_paths_per_endpoint=1,
            max_total_paths=64,
        )
        telemetry.add("surrogate.oracle.probes")
        return bool(report.violations), report.wns_setup_ns

    def onset(
        self, profile: SPProfile, corner: OperatingCorner
    ) -> Optional[float]:
        """First violating age on the grid, or None (clean horizon).

        Linear scan with early exit — the same "first violating age in
        the sweep" definition as ``LifetimeSimulator.sweep``.  Clean
        devices pay the full grid; that asymmetry is precisely what the
        surrogate's cleared cohort amortizes away.
        """
        for age in self.age_grid:
            violates, _ = self.probe(profile, corner, age)
            if violates:
                return age
        return None

    def label(
        self,
        profile: SPProfile,
        corner: OperatingCorner,
        slack_age_years: float,
    ) -> Tuple[float, bool, float]:
        """Dataset targets: (onset_years, censored?, slack at sampled age).

        ``onset_years`` is the censored value
        (``censor_factor * age_grid[-1]``) when the device never
        violates inside the horizon, keeping the regression target
        finite while placing clean devices strictly beyond every real
        onset.
        """
        onset = self.onset(profile, corner)
        censored = onset is None
        _, slack = self.probe(profile, corner, slack_age_years)
        return (
            self.censored_onset if censored else onset,
            censored,
            slack,
        )
