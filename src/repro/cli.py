"""Command-line interface: ``python -m repro <command>``.

Drives the Vega workflow from a shell, mirroring how the paper's tools
would be packaged for a silicon/reliability team:

=============  =====================================================
command        effect
=============  =====================================================
workloads      list the embench-style benchmark programs
run            all three phases, with --trace/--metrics/--resume
profile        phase 1 front half: cached/parallel SP profiling + aged STA
sta            phase 1: SP profiling + aging-aware STA for a unit
lift           phase 2: formal test construction (Table 4 view)
suite          emit test-suite artifacts (assembly / C / routine)
inject         emit a failing netlist as Verilog
detect         run the generated suite against an injected failure
integrate      phase 3: profile-guided splicing into a workload
trace          summarize a JSONL telemetry trace
campaign       fleet-scale fault-injection campaigns (run / report)
bench          canonical benchmark trajectory (compare / report)
surrogate      ML aging surrogate (train / validate / triage)
attack         adversarial wearout scenarios (search / run)
respond        detection→response reconfiguration policies
=============  =====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .core.experiments import default_context
from .lifting.models import CMode, FailureModel, ViolationKind


def _add_unit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--unit", choices=("alu", "fpu"), default="alu",
        help="functional unit under analysis",
    )


def _add_mitigation(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mitigation", action="store_true",
        help="enable the initial-value-dependency mitigation (edge-"
             "qualified failure models, §3.3.4)",
    )


def _add_surrogate_data(p: argparse.ArgumentParser) -> None:
    """Arguments shared by ``surrogate train`` and ``surrogate validate``."""
    _add_unit(p)
    p.add_argument("--samples", type=int, default=96,
                   help="labeled sweep size (default: 96)")
    p.add_argument("--seed", type=int, default=7,
                   help="surrogate seed; drives every dataset draw")
    p.add_argument("--workers", type=int, default=1,
                   help="fork workers for oracle labeling; 0 = one per "
                        "CPU (rows are byte-identical for any count)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache and re-label")
    p.add_argument("--cache-dir", default=".vega-cache",
                   help="artifact cache root (default: .vega-cache)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vega: proactive runtime detection of aging-related "
                    "silent data corruptions (ASPLOS'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list benchmark workloads")

    p = sub.add_parser(
        "run",
        help="full three-phase workflow with tracing and checkpoints",
    )
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument(
        "--trace", metavar="FILE",
        help="write the run's JSONL telemetry trace to FILE",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print the markdown metrics summary after the report",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume a killed/failed run from its phase checkpoints "
             "(requires the artifact cache)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for profiling and lifting; 0 = one per "
             "CPU (results are identical for any worker count)",
    )
    p.add_argument(
        "--max-paths", type=int, default=50,
        help="violating-path cap per endpoint for phase-1 STA",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache (also disables checkpoints)",
    )
    p.add_argument(
        "--cache-dir", default=".vega-cache",
        help="artifact cache root (default: .vega-cache)",
    )

    p = sub.add_parser(
        "trace", help="inspect JSONL telemetry traces"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser(
        "summarize",
        help="render a trace's metrics summary (non-zero exit when the "
             "trace is empty or unparseable)",
    )
    p.add_argument("file", help="JSONL trace written by repro run --trace")

    p = sub.add_parser(
        "profile",
        help="SP profiling + aged delay model (phase 1, parallel + cached)",
    )
    _add_unit(p)
    p.add_argument(
        "--workers", type=int, default=1,
        help="shard the workload's cycle ranges across N profiling "
             "processes; 0 = one per CPU (profiles are bit-identical "
             "for any worker count; serial fallback without fork)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="skip the content-addressed artifact cache and re-simulate",
    )
    p.add_argument(
        "--cache-dir", default=".vega-cache",
        help="artifact cache root (default: .vega-cache)",
    )
    p.add_argument(
        "--reference-sta", action="store_true",
        help="use the dict-walking reference STA instead of the "
             "vectorized engine (for A/B comparison)",
    )

    p = sub.add_parser("sta", help="aging analysis (phase 1)")
    _add_unit(p)
    p.add_argument("--paths", type=int, default=0,
                   help="also print the N worst violating paths in "
                        "report_timing style")

    p = sub.add_parser("lift", help="error lifting (phase 2)")
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument(
        "--workers", type=int, default=1,
        help="shard endpoint pairs across N processes; 0 = one per CPU "
             "(results are deterministic; serial fallback when fork is "
             "unavailable)",
    )

    p = sub.add_parser("suite", help="emit test-suite artifacts")
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument(
        "--format", choices=("asm", "c", "routine"), default="asm",
        help="artifact flavour: standalone assembly suite, C library "
             "source, or the spliceable __vega_tests routine",
    )
    p.add_argument("-o", "--output", help="write to file instead of stdout")

    p = sub.add_parser("inject", help="emit a failing netlist (Verilog)")
    _add_unit(p)
    p.add_argument("--start", required=True, help="launch flop (X)")
    p.add_argument("--end", required=True, help="capture flop (Y)")
    p.add_argument("--kind", choices=("setup", "hold"), default="setup")
    p.add_argument("--c", choices=("0", "1", "R"), default="0",
                   help="wrongly-sampled value C")
    p.add_argument("-o", "--output", help="write to file instead of stdout")

    p = sub.add_parser("detect", help="run the suite against a failure")
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument("--start", required=True)
    p.add_argument("--end", required=True)
    p.add_argument("--kind", choices=("setup", "hold"), default="setup")
    p.add_argument("--c", choices=("0", "1", "R"), default="0")

    p = sub.add_parser(
        "verify",
        help="formally check the unit's Verilog round-trip and the "
             "optimizer with the built-in equivalence checker",
    )
    _add_unit(p)
    p.add_argument("--depth", type=int, default=3)

    p = sub.add_parser(
        "models", help="export the circuit-level failure-model library"
    )
    _add_unit(p)
    p.add_argument("-o", "--output", required=True, help="output directory")

    p = sub.add_parser(
        "campaign",
        help="fleet-scale fault-injection detection campaigns",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)
    p = campaign_sub.add_parser(
        "run",
        help="sample a virtual fleet and run the detection suites "
             "against every device (bit-identical for any --workers)",
    )
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument("--devices", type=int, default=12,
                   help="fleet size (default: 12)")
    p.add_argument("--seed", type=int, default=2024,
                   help="campaign seed; drives every fleet draw")
    p.add_argument("--workers", type=int, default=1,
                   help="fork workers for device shards; 0 = one per CPU "
                        "(reports are bit-identical for any worker count)")
    p.add_argument("--shard-size", type=int, default=4,
                   help="devices per shard (the checkpoint/resume unit)")
    p.add_argument("--no-packed", action="store_true",
                   help="disable the packed multi-model prefilter and "
                        "co-simulate every failure model serially "
                        "(results are bit-identical either way)")
    p.add_argument("--pack-width", type=int, default=64,
                   help="max failure-model bit-planes per packed "
                        "gate-sim group (default: 64)")
    p.add_argument("--suites", default="vega,random,silifuzz",
                   help="comma-separated detection suites to run")
    p.add_argument("--strategy", choices=("sequential", "random"),
                   default="sequential", help="suite scheduling strategy")
    p.add_argument("--onset-years", type=float, default=None,
                   help="base violation-onset age; defaults to a "
                        "lifetime-sweep estimate for the unit")
    p.add_argument("--resume", action="store_true",
                   help="skip device shards already checkpointed in the "
                        "artifact cache")
    p.add_argument("--report", metavar="FILE",
                   help="write the CampaignReport JSON to FILE")
    p.add_argument("--trace", metavar="FILE",
                   help="write the campaign's JSONL telemetry trace")
    p.add_argument("--metrics", action="store_true",
                   help="print the markdown metrics summary")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache (and shard resume)")
    p.add_argument("--cache-dir", default=".vega-cache",
                   help="artifact cache root (default: .vega-cache)")
    p = campaign_sub.add_parser(
        "report", help="render a CampaignReport JSON file as markdown"
    )
    p.add_argument("file", help="report JSON written by campaign run --report")

    p = sub.add_parser(
        "attack",
        help="adversarial wearout scenarios: craft a stress-maximizing "
             "workload and measure Vega's detection lead on the "
             "attacked fleet",
    )
    attack_sub = p.add_subparsers(dest="attack_command", required=True)

    def _add_attack_search(p: argparse.ArgumentParser) -> None:
        _add_unit(p)
        p.add_argument("--attack-seed", type=int, default=99,
                       help="adversary seed; drives every candidate, "
                            "mutation, and attacked-subset draw")
        p.add_argument("--candidates", type=int, default=8,
                       help="seeded candidate streams (default: 8)")
        p.add_argument("--rounds", type=int, default=3,
                       help="beam-refinement rounds (default: 3)")
        p.add_argument("--beam", type=int, default=3,
                       help="survivors kept per round (default: 3)")
        p.add_argument("--mutations", type=int, default=4,
                       help="mutants per survivor per round (default: 4)")
        p.add_argument("--stream-ops", type=int, default=192,
                       help="operations per candidate stream")
        p.add_argument("--lanes", type=int, default=64,
                       help="packed profiling lanes per candidate")
        p.add_argument("--workers", type=int, default=1,
                       help="fork workers for profiling and device "
                            "shards; 0 = one per CPU (results are "
                            "byte-identical for any count)")
        p.add_argument("--resume", action="store_true",
                       help="resume from round/shard checkpoints in the "
                            "artifact cache")
        p.add_argument("--report", metavar="FILE",
                       help="write the result JSON to FILE")
        p.add_argument("--trace", metavar="FILE",
                       help="write the JSONL telemetry trace")
        p.add_argument("--metrics", action="store_true",
                       help="print the markdown metrics summary")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the artifact cache (and resume)")
        p.add_argument("--cache-dir", default=".vega-cache",
                       help="artifact cache root (default: .vega-cache)")

    p = attack_sub.add_parser(
        "search",
        help="search for the operand stream maximizing BTI stress on "
             "the unit's violating cones",
    )
    _add_attack_search(p)
    p = attack_sub.add_parser(
        "run",
        help="attack-fleet campaign: natural vs attacked twins at "
             "equal suite budget, reporting detection lead",
    )
    _add_attack_search(p)
    _add_mitigation(p)
    p.add_argument("--devices", type=int, default=12,
                   help="fleet size (default: 12)")
    p.add_argument("--seed", type=int, default=2024,
                   help="campaign seed; both fleets draw the same "
                        "individuals from it")
    p.add_argument("--shard-size", type=int, default=4,
                   help="devices per shard (the checkpoint/resume unit)")
    p.add_argument("--suites", default="vega,random",
                   help="comma-separated detection suites to run")
    p.add_argument("--attack-fraction", type=float, default=1.0,
                   help="fraction of the fleet the attacker reaches")
    p.add_argument("--onset-years", type=float, default=None,
                   help="base violation-onset age; defaults to a "
                        "lifetime-sweep estimate for the unit")

    p = sub.add_parser(
        "respond",
        help="evaluate reconfiguration responses (derate / resynth / "
             "approximate) against the unit's aged timing",
    )
    _add_unit(p)
    p.add_argument("--policies", default="derate,resynth,approximate",
                   help="comma-separated response policies to evaluate")
    p.add_argument("--mission-years", type=float, default=10.0,
                   help="deployment window recovery is measured against")
    p.add_argument("--accuracy-samples", type=int, default=128,
                   help="operand frames sampled for the approximate "
                        "policy's accuracy cost")
    p.add_argument("--seed", type=int, default=17,
                   help="seed for the response.accuracy RNG stream")
    p.add_argument("--workers", type=int, default=1,
                   help="fork workers for re-profiling modified "
                        "netlists; 0 = one per CPU (reports are "
                        "byte-identical for any count)")
    p.add_argument("--resume", action="store_true",
                   help="resume from per-policy checkpoints in the "
                        "artifact cache")
    p.add_argument("--report", metavar="FILE",
                   help="write the ResponseReport JSON to FILE")
    p.add_argument("--trace", metavar="FILE",
                   help="write the JSONL telemetry trace")
    p.add_argument("--metrics", action="store_true",
                   help="print the markdown metrics summary")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache (and resume)")
    p.add_argument("--cache-dir", default=".vega-cache",
                   help="artifact cache root (default: .vega-cache)")

    p = sub.add_parser(
        "bench",
        help="canonical benchmark sample documents (BENCH_*.json): "
             "regression gate and markdown trajectory",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    p = bench_sub.add_parser(
        "compare",
        help="diff candidate samples against a committed baseline; "
             "exits nonzero on >threshold slowdowns, missing metrics, "
             "or unit mismatches",
    )
    p.add_argument("baseline", help="baseline BENCH_<name>.json")
    p.add_argument("candidate", help="candidate BENCH_<name>.json")
    p.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="tolerated worsening per metric, percent (default: 10)",
    )
    p.add_argument(
        "--timing-warn-only", action="store_true",
        help="downgrade regressions of timing-tagged samples to "
             "warnings (for noisy shared CI runners); count-derived "
             "metrics still hard-fail",
    )
    p = bench_sub.add_parser(
        "report", help="render BENCH_*.json documents as markdown"
    )
    p.add_argument("files", nargs="+", help="BENCH_<name>.json documents")

    p = sub.add_parser(
        "surrogate",
        help="ML aging surrogate: train on exact charlib+STA labels, "
             "validate held-out recall, triage fleets",
    )
    surrogate_sub = p.add_subparsers(dest="surrogate_command", required=True)
    p = surrogate_sub.add_parser(
        "train",
        help="generate the labeled sweep (cached, parallel), fit the "
             "ridge surrogate, calibrate the triage threshold, and "
             "validate held-out recall (fails closed below the floor)",
    )
    _add_surrogate_data(p)
    p.add_argument("-o", "--output", default=None, metavar="FILE",
                   help="model snapshot path (default: "
                        "surrogate_<unit>.json)")
    p = surrogate_sub.add_parser(
        "validate",
        help="re-validate a trained surrogate snapshot against the "
             "held-out rows of its labeled sweep",
    )
    _add_surrogate_data(p)
    p.add_argument("--model", required=True, metavar="FILE",
                   help="trained surrogate snapshot (surrogate train -o)")
    p = surrogate_sub.add_parser(
        "triage",
        help="score a sampled fleet with the surrogate, clear the "
             "safe cohort, and run the campaign suites against the "
             "exactly re-verified risky tail",
    )
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument("--model", required=True, metavar="FILE",
                   help="trained surrogate snapshot (surrogate train -o)")
    p.add_argument("--devices", type=int, default=32,
                   help="fleet size (default: 32)")
    p.add_argument("--seed", type=int, default=2024,
                   help="fleet seed (surrogate.fleet streams)")
    p.add_argument("--suites", default="vega",
                   help="comma-separated detection suites for the tail")
    p.add_argument("--surrogate-seed", type=int, default=7,
                   help="surrogate seed (per-net workload noise streams; "
                        "must match the training sweep's)")
    p.add_argument("--report", metavar="FILE",
                   help="write the tail CampaignReport JSON to FILE")
    p.add_argument("--verify-exact", action="store_true",
                   help="also run the all-exact profiled campaign and "
                        "assert the flagged devices' report rows are "
                        "byte-identical (exits nonzero on divergence)")

    p = sub.add_parser(
        "serve",
        help="run the online detection service over a simulated fleet "
             "(streaming ingestion, belief checkpoints, event log)",
    )
    _add_scheduler(p)
    p.add_argument("--kill-after", type=int, default=None, metavar="N",
                   help="simulate an abrupt service death after N "
                        "ingested results (for restart drills; with "
                        "--shards, N counts the killed shard's events)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the latest belief checkpoint "
                        "instead of starting fresh")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="shard the fleet belief across N worker "
                        "processes behind the frame-protocol router "
                        "(default: single-process service)")
    p.add_argument("--local-shards", action="store_true",
                   help="with --shards: drive the shard services "
                        "in-process instead of forking workers (the "
                        "byte-identical determinism reference)")
    p.add_argument("--kill-shard", type=int, default=None, metavar="K",
                   help="with --shards and --kill-after: kill shard K "
                        "after N shard-local ingested results")
    p.add_argument("--metrics-port", type=int, default=None, metavar="P",
                   help="serve Prometheus text on 127.0.0.1:P/metrics "
                        "during the run (0 picks an ephemeral port)")
    p.add_argument("--metrics-linger", type=float, default=0.0,
                   metavar="SEC",
                   help="keep the /metrics endpoint up SEC seconds "
                        "after the run drains (for one-shot scrapes)")
    p.add_argument("--stale-after", type=float, default=5.0,
                   metavar="SEC",
                   help="heartbeat staleness threshold before a "
                        "shard-stall alert fires (default: 5s)")
    p.add_argument("--webhook", metavar="URL", default=None,
                   help="POST shard-stall/death and divergence alerts "
                        "to URL as JSON (best-effort)")

    p = sub.add_parser(
        "schedule",
        help="drive an adaptive dispatch schedule to completion and "
             "report per-policy detection outcomes",
    )
    _add_scheduler(p)
    p.add_argument("--report", metavar="FILE",
                   help="write the ScheduleReport JSON to FILE")
    p.add_argument("--verify-replay", action="store_true",
                   help="re-execute the run and verify the event log "
                        "reproduces byte for byte")

    p = sub.add_parser("integrate", help="profile-guided integration")
    p.add_argument("--workload", default="crc32")
    p.add_argument("--threshold", type=float, default=0.01,
                   help="overhead budget (fraction of instructions)")
    p.add_argument("--units", default="alu,fpu",
                   help="comma-separated units whose suites to embed")
    _add_mitigation(p)

    return parser


def _add_scheduler(p) -> None:
    """Arguments shared by the ``serve`` and ``schedule`` verbs."""
    _add_unit(p)
    _add_mitigation(p)
    p.add_argument("--devices", type=int, default=12,
                   help="fleet size (default: 12)")
    p.add_argument("--seed", type=int, default=2024,
                   help="fleet seed (same streams as campaign run)")
    p.add_argument("--policy", default="thompson",
                   help="dispatch policy: sequential, greedy, thompson")
    p.add_argument("--policy-seed", type=int, default=7,
                   help="seed for the policy's sampling streams")
    p.add_argument("--budget", type=int, default=25_000,
                   help="per-device cycle budget (default: 25000)")
    p.add_argument("--batch-size", type=int, default=16,
                   help="max dispatches per planning tick")
    p.add_argument("--batch-window", type=int, default=4,
                   help="scheduler passes to wait for a full batch")
    p.add_argument("--queue", type=int, default=64,
                   help="ingest queue bound (backpressure threshold)")
    p.add_argument("--checkpoint-every", type=int, default=25,
                   help="belief checkpoint period, in ingested results")
    p.add_argument("--suites", default="vega,random,silifuzz",
                   help="comma-separated suites providing dispatch arms")
    p.add_argument("--strategy", choices=("sequential", "random"),
                   default="sequential", help="suite assembly strategy")
    p.add_argument("--onset-years", type=float, default=None,
                   help="base violation-onset age; defaults to a "
                        "lifetime-sweep estimate for the unit")
    p.add_argument("--log", metavar="FILE",
                   help="write the JSONL event log to FILE")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache (and checkpoints)")
    p.add_argument("--cache-dir", default=".vega-cache",
                   help="artifact cache root (default: .vega-cache)")


def _model_from_args(args) -> FailureModel:
    return FailureModel(
        start=args.start,
        end=args.end,
        kind=ViolationKind.SETUP if args.kind == "setup" else ViolationKind.HOLD,
        c_mode={"0": CMode.ZERO, "1": CMode.ONE, "R": CMode.RANDOM}[args.c],
    )


def cmd_workloads(args, out) -> int:
    from .workloads import WORKLOADS

    for name, workload in sorted(WORKLOADS.items()):
        print(f"{name:12s} [{workload.kind}] {workload.description}", file=out)
    return 0


def cmd_run(args, out) -> int:
    from .core.config import (
        AgingAnalysisConfig,
        ErrorLiftingConfig,
        VegaConfig,
    )
    from .core.workflow import VegaWorkflow

    if args.resume and args.no_cache:
        print("--resume needs the artifact cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    ctx = default_context()
    unit = ctx.unit(args.unit)
    config = VegaConfig(
        aging=AgingAnalysisConfig(
            clock_margin=0.03,
            max_paths_per_endpoint=args.max_paths,
            profile_workers=args.workers,
        ),
        lifting=ErrorLiftingConfig(
            enable_mitigation=args.mitigation,
            workers=args.workers,
        ),
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    workflow = VegaWorkflow(config)
    report = workflow.run(
        unit.netlist,
        ctx.stream(args.unit),
        unit.mapper,
        gated_instances=unit.gated_instances(),
        resume=args.resume,
    )
    print(report.summary(), file=out)
    if report.resumed_phases:
        print("  resumed from checkpoints: "
              + ", ".join(report.resumed_phases), file=out)
    if args.trace:
        report.write_trace(args.trace)
        print(f"  trace written to {args.trace}", file=out)
    if args.metrics:
        print(file=out)
        print(report.metrics_markdown(), file=out)
    return 0


def cmd_trace(args, out) -> int:
    from .core import telemetry

    try:
        records = telemetry.read_trace(args.file)
    except telemetry.TraceError as exc:
        if "empty" in str(exc):
            print(f"no spans recorded: {args.file} is empty", file=sys.stderr)
        else:
            print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    print(telemetry.summarize_trace(records), file=out)
    return 0


def cmd_profile(args, out) -> int:
    import time

    from .core.config import AgingAnalysisConfig, VegaConfig
    from .core.workflow import VegaWorkflow
    from .workloads import REPRESENTATIVE

    ctx = default_context()
    unit = ctx.unit(args.unit)
    config = VegaConfig(
        aging=AgingAnalysisConfig(
            profile_workers=args.workers,
            sta_vectorized=not args.reference_sta,
        ),
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    workflow = VegaWorkflow(config)
    start = time.perf_counter()
    profile, result = workflow.run_aging_analysis(
        unit.netlist,
        ctx.stream(args.unit),
        gated_instances=unit.gated_instances(),
        workload_id=f"{args.unit}:{REPRESENTATIVE}",
    )
    elapsed = time.perf_counter() - start
    print(f"unit: {args.unit} ({unit.netlist.stats()['_cells']} cells)",
          file=out)
    print(f"profiled {profile.samples} samples "
          f"({len(profile.sp)} nets) in {elapsed:.3f}s "
          f"[workers={args.workers}, "
          f"sta={'reference' if args.reference_sta else 'vectorized'}]",
          file=out)
    print(f"derived period: {result.period_ns:.3f} ns", file=out)
    print(f"aged violations: {len(result.report.violations)} "
          f"({len(result.report.unique_endpoint_pairs())} unique pairs)",
          file=out)
    if workflow.last_cache_stats is not None:
        hits, misses = workflow.last_cache_stats
        print(f"artifact cache: {hits} hit(s), {misses} miss(es) "
              f"at {args.cache_dir}", file=out)
    else:
        print("artifact cache: disabled", file=out)
    return 0


def cmd_sta(args, out) -> int:
    ctx = default_context()
    unit = ctx.unit(args.unit)
    result = unit.sta_result
    report = result.report
    print(f"unit: {args.unit} ({unit.netlist.stats()['_cells']} cells)", file=out)
    print(f"derived period: {result.period_ns:.3f} ns "
          f"({1000/result.period_ns:.0f} MHz)", file=out)
    print(f"fresh violations: {len(result.fresh_report.violations)}", file=out)
    print(f"aged setup: {len(report.setup_violations())} paths, "
          f"WNS {report.wns_setup_ns*1000:.1f} ps", file=out)
    print(f"aged hold:  {len(report.hold_violations())} paths, "
          f"WNS {report.wns_hold_ns*1000:.2f} ps", file=out)
    print("unique endpoint pairs:", file=out)
    for start, end in report.unique_endpoint_pairs():
        print(f"  {start} ~> {end}", file=out)
    if getattr(args, "paths", 0):
        from .sta.aging_sta import AgingAwareSta
        from .sta.report import report_timing

        aged_model, _ = AgingAwareSta(
            unit.netlist,
            ctx.timing_lib,
            config=ctx.config.aging,
            gated_instances=unit.gated_instances(),
        ).aged_delay_model(unit.sp_profile)
        print(file=out)
        print(
            report_timing(
                report, unit.netlist, aged_model, max_paths=args.paths
            ),
            file=out,
        )
    return 0


def cmd_lift(args, out) -> int:
    ctx = default_context()
    unit = ctx.unit(args.unit)
    report = unit.lifting(args.mitigation, workers=getattr(args, "workers", 1))
    print(f"unit: {args.unit}  mitigation: {args.mitigation}", file=out)
    for pair in report.pairs:
        print(f"  {pair.start} ~> {pair.end}: {pair.outcome.value} "
              f"({len(pair.test_cases)} tests)", file=out)
    pct = report.outcome_percentages()
    print(f"S={pct['S']:.1f}% UR={pct['UR']:.1f}% "
          f"FF={pct['FF']:.1f}% FC={pct['FC']:.1f}%", file=out)
    print(f"total tests: {len(report.test_cases)}", file=out)
    return 0


def cmd_suite(args, out) -> int:
    ctx = default_context()
    unit = ctx.unit(args.unit)
    suite = unit.suite(args.mitigation)
    if args.format == "asm":
        text = suite.suite_source()
    elif args.format == "c":
        text = suite.c_source()
    else:
        text = suite.routine_source()
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_inject(args, out) -> int:
    from .lifting.instrument import make_failing_netlist

    ctx = default_context()
    unit = ctx.unit(args.unit)
    failing = make_failing_netlist(unit.netlist, _model_from_args(args))
    text = failing.to_verilog()
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_detect(args, out) -> int:
    from .lifting.instrument import make_failing_netlist

    ctx = default_context()
    unit = ctx.unit(args.unit)
    suite = unit.suite(args.mitigation)
    failing = make_failing_netlist(unit.netlist, _model_from_args(args))
    result = unit.run_suite_against(suite, failing.netlist)
    print(f"injected: {failing.model.label}", file=out)
    if result.stalled:
        print("DETECTED: CPU stall (handshake failure)", file=out)
    elif result.detected:
        print(f"DETECTED by {result.detected_by!r} after "
              f"{result.cycles} cycles", file=out)
    else:
        print("not detected by this suite", file=out)
    return 0 if result.detected else 1


def cmd_verify(args, out) -> int:
    from .formal.equiv import check_equivalence
    from .netlist.opt import optimize
    from .netlist.parser import parse_verilog
    from .netlist.verilog import netlist_to_verilog

    ctx = default_context()
    netlist = ctx.unit(args.unit).netlist
    print(f"unit: {args.unit} ({netlist.stats()['_cells']} cells)", file=out)

    roundtrip = parse_verilog(netlist_to_verilog(netlist))
    verdict = check_equivalence(netlist, roundtrip, depth=args.depth)
    print(f"verilog round-trip equivalent: {verdict.equivalent}", file=out)
    ok = verdict.equivalent is True

    optimized = netlist.clone()
    removed = optimize(optimized)
    verdict2 = check_equivalence(
        netlist, optimized, depth=args.depth, conflict_budget=100_000
    )
    status = (
        "inconclusive (solver budget)"
        if verdict2.equivalent is None
        else verdict2.equivalent
    )
    print(
        f"optimizer ({removed} cells removed) equivalent: {status}",
        file=out,
    )
    ok = ok and verdict2.equivalent is not False
    return 0 if ok else 1


def cmd_models(args, out) -> int:
    from .core.artifacts import export_failure_models, export_suite_artifacts

    ctx = default_context()
    unit = ctx.unit(args.unit)
    failing = unit.failing_netlists(constructed_only=False)
    index = export_failure_models(failing, args.output, unit=args.unit)
    suite_files = export_suite_artifacts(unit.suite(False), args.output)
    print(f"exported {len(index.files)} failure models and "
          f"{len(suite_files)} suite artifacts to {args.output}", file=out)
    return 0


def cmd_campaign(args, out) -> int:
    from .campaign import CampaignEngine, CampaignReport

    if args.campaign_command == "report":
        try:
            text = open(args.file).read()
            report = CampaignReport.from_json(text)
        except (OSError, ValueError, TypeError) as exc:
            print(f"invalid campaign report: {exc}", file=sys.stderr)
            return 1
        print(report.to_markdown(), file=out)
        return 0

    from .core import telemetry
    from .core.artifacts import ArtifactCache
    from .core.config import CampaignConfig

    if args.resume and args.no_cache:
        print("--resume needs the artifact cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    suites = tuple(s.strip() for s in args.suites.split(",") if s.strip())
    config = CampaignConfig(
        devices=args.devices,
        seed=args.seed,
        shard_size=args.shard_size,
        workers=args.workers,
        suites=suites,
        strategy=args.strategy,
        base_onset_years=args.onset_years,
        packed=not args.no_packed,
        pack_width=args.pack_width,
    )
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    ctx = default_context()
    tele = telemetry.Telemetry()
    with telemetry.use(tele):
        engine = CampaignEngine.for_unit(
            ctx.unit(args.unit),
            config=config,
            cache=cache,
            mitigation=args.mitigation,
        )
        report = engine.run(resume=args.resume)
    print(report.summary(), file=out)
    if engine.resumed_shards:
        print(f"  resumed {len(engine.resumed_shards)} shard(s) from "
              f"checkpoints; executed {len(engine.executed_shards)}",
              file=out)
    if engine.report_path is not None:
        print(f"  report cached at {engine.report_path}", file=out)
    if args.report:
        with open(args.report, "w") as fp:
            fp.write(report.to_json())
        print(f"  report written to {args.report}", file=out)
    if args.trace:
        tele.write_jsonl(args.trace)
        print(f"  trace written to {args.trace}", file=out)
    if args.metrics:
        print(file=out)
        print(tele.summary_markdown(), file=out)
    return 0


def cmd_bench(args, out) -> int:
    from .bench import compare_files, render_report
    from .bench.compare import BenchCompareError

    if args.bench_command == "report":
        try:
            report = render_report(args.files)
        except (OSError, ValueError) as exc:
            print(f"invalid bench document: {exc}", file=sys.stderr)
            return 2
        print(report, file=out)
        return 0
    try:
        result = compare_files(
            args.baseline,
            args.candidate,
            threshold_pct=args.threshold,
            timing_warn_only=args.timing_warn_only,
        )
    except BenchCompareError as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"invalid bench document: {exc}", file=sys.stderr)
        return 2
    for finding in result.findings:
        print(f"  {finding.format()}", file=out)
    print(result.summary(), file=out)
    return 1 if result.failed else 0


def _print_validation(report, out) -> None:
    print(f"validation: {report.rows} held-out row(s), "
          f"{report.risky_rows} risky", file=out)
    print(f"  risky-tail recall: {report.recall:.3f} "
          f"(threshold {report.threshold:.3f}y, "
          f"flagged {report.flagged_fraction:.1%})", file=out)
    print(f"  onset MAE: {report.onset_mae_years:.3f}y  "
          f"slack spearman: {report.slack_spearman:.3f}", file=out)


def _surrogate_dataset(args, unit, tele, out):
    from .core import telemetry
    from .core.artifacts import ArtifactCache
    from .core.config import SurrogateConfig
    from .netlist.cells import VEGA28
    from .surrogate import generate_dataset

    config = SurrogateConfig(
        samples=args.samples, seed=args.seed, workers=args.workers
    )
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    with telemetry.use(tele):
        dataset = generate_dataset(
            unit.netlist, VEGA28, unit.sp_profile, config, cache=cache
        )
    print(f"dataset: {len(dataset.rows)} labeled row(s) on {args.unit} "
          f"(digest {dataset.digest()[:16]})", file=out)
    return config, dataset


def _load_surrogate_model(path, verb):
    from .surrogate import RidgeSurrogate

    try:
        with open(path) as fp:
            return RidgeSurrogate.from_json(fp.read())
    except (OSError, ValueError) as exc:
        print(f"surrogate {verb}: cannot load model {path}: {exc}",
              file=sys.stderr)
        return None


def cmd_surrogate(args, out) -> int:
    import json

    from .core import telemetry
    from .surrogate import SurrogateValidationError

    ctx = default_context()
    unit = ctx.unit(args.unit)
    tele = telemetry.Telemetry()

    if args.surrogate_command == "train":
        from .surrogate import train_surrogate

        config, dataset = _surrogate_dataset(args, unit, tele, out)
        try:
            with telemetry.use(tele):
                model, report = train_surrogate(dataset, config)
        except SurrogateValidationError as exc:
            print(f"surrogate train: {exc}", file=sys.stderr)
            return 1
        path = args.output or f"surrogate_{args.unit}.json"
        with open(path, "w") as fp:
            fp.write(model.to_json() + "\n")
        print(f"model written to {path} "
              f"(digest {model.digest()[:16]})", file=out)
        _print_validation(report, out)
        return 0

    if args.surrogate_command == "validate":
        from .surrogate import validate_model

        model = _load_surrogate_model(args.model, "validate")
        if model is None:
            return 2
        config, dataset = _surrogate_dataset(args, unit, tele, out)
        _, holdout_rows = dataset.split(
            config.holdout_fraction, config.seed
        )
        try:
            report = validate_model(
                model, holdout_rows, recall_floor=config.recall_floor
            )
        except SurrogateValidationError as exc:
            print(f"surrogate validate: FAILED: {exc}", file=sys.stderr)
            return 1
        _print_validation(report, out)
        return 0

    # triage
    from .campaign.engine import CampaignEngine
    from .core.config import CampaignConfig, SurrogateConfig
    from .netlist.cells import VEGA28
    from .surrogate import profiled_fleet, run_surrogate_campaign

    model = _load_surrogate_model(args.model, "triage")
    if model is None:
        return 2
    suites = tuple(s.strip() for s in args.suites.split(",") if s.strip())
    config = CampaignConfig(
        devices=args.devices, seed=args.seed, suites=suites
    )
    surrogate = SurrogateConfig(seed=args.surrogate_seed)
    models = unit.failure_models()
    library = unit.suite(args.mitigation)
    with telemetry.use(tele):
        outcome, report = run_surrogate_campaign(
            unit.netlist,
            args.unit,
            library,
            VEGA28,
            unit.sp_profile,
            models,
            model,
            config=config,
            surrogate=surrogate,
        )
    print(f"triage: {len(outcome.cleared)} cleared, "
          f"{len(outcome.flagged)} flagged of {config.devices} device(s) "
          f"(threshold {outcome.threshold:.3f}y)", file=out)
    print(report.summary(), file=out)
    if args.report:
        with open(args.report, "w") as fp:
            fp.write(report.to_json())
        print(f"  tail report written to {args.report}", file=out)
    if args.verify_exact:
        with telemetry.use(tele):
            exact = profiled_fleet(
                unit.netlist, VEGA28, unit.sp_profile, models,
                config, surrogate,
            )
            exact_report = CampaignEngine(
                unit.netlist, args.unit, library, models,
                config=config, fleet=exact,
            ).run()
        flagged_ids = {d.device_id for d in outcome.flagged}
        exact_rows = [
            row for row in exact_report.device_rows
            if row["device"] in flagged_ids
        ]
        identical = (
            json.dumps(exact_rows, sort_keys=True)
            == json.dumps(report.device_rows, sort_keys=True)
        )
        print(f"  flagged rows byte-identical to exact campaign: "
              f"{'yes' if identical else 'NO - DIVERGED'}", file=out)
        if not identical:
            return 1
    return 0


def _scheduler_session(args):
    """Build a ScheduleSession from shared serve/schedule arguments."""
    from .core.artifacts import ArtifactCache
    from .core.config import CampaignConfig, SchedulerConfig
    from .scheduler import ScheduleSession

    suites = tuple(s.strip() for s in args.suites.split(",") if s.strip())
    config = CampaignConfig(
        devices=args.devices,
        seed=args.seed,
        suites=suites,
        strategy=args.strategy,
        base_onset_years=args.onset_years,
    )
    scheduler = SchedulerConfig(
        policy=args.policy,
        policy_seed=args.policy_seed,
        batch_size=args.batch_size,
        batch_window=args.batch_window,
        ingest_queue=args.queue,
        checkpoint_every=args.checkpoint_every,
        cycle_budget=args.budget,
    )
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    ctx = default_context()
    return ScheduleSession.for_unit(
        ctx.unit(args.unit),
        config=config,
        scheduler=scheduler,
        cache=cache,
        mitigation=args.mitigation,
    )


def cmd_serve(args, out) -> int:
    from .scheduler.policy import POLICIES

    if args.policy not in POLICIES:
        print(f"unknown policy {args.policy!r} "
              f"(known: {', '.join(sorted(POLICIES))})", file=sys.stderr)
        return 2
    if args.resume and args.no_cache:
        print("--resume needs the artifact cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    if args.kill_shard is not None and args.shards is None:
        print("--kill-shard needs --shards", file=sys.stderr)
        return 2
    session = _scheduler_session(args)
    if args.shards is not None:
        return _serve_distributed(args, session, out)
    outcome = session.run(
        resume=args.resume, kill_after_events=args.kill_after
    )
    report = outcome.report
    state = "killed" if outcome.killed else "drained"
    print(f"service {state}: {report.events} result(s) ingested over "
          f"{report.ticks} tick(s), policy={report.policy}", file=out)
    if outcome.resumed:
        print("  resumed from belief checkpoint", file=out)
    print(f"  devices={report.devices} detected={report.detected} "
          f"escapes={report.escapes}", file=out)
    print(f"  belief checkpoint key: {outcome.checkpoint_key[:16]}…",
          file=out)
    print(f"  belief digest: {outcome.belief.digest()}", file=out)
    if args.log:
        outcome.log.write_jsonl(args.log)
        print(f"  event log written to {args.log}", file=out)
    return 0


def _serve_distributed(args, session, out) -> int:
    """``repro serve --shards N``: the sharded multi-process service."""
    from .core import telemetry

    if telemetry.active() is not None:
        return _serve_distributed_run(args, session, out)
    # Give the router somewhere to land counters (its own and the
    # workers' merged deltas) so /metrics is populated — scoped, so an
    # in-process caller (tests, embedding) gets its global telemetry
    # state back afterwards.
    with telemetry.use(telemetry.Telemetry(run_id="serve-distributed")):
        return _serve_distributed_run(args, session, out)


def _serve_distributed_run(args, session, out) -> int:
    import time as _time

    from .scheduler.distributed import (
        DistributedSession,
        WebhookAlertHook,
    )

    hooks = []
    if args.webhook:
        hooks.append(WebhookAlertHook(args.webhook))
    dist = DistributedSession(session, shards=args.shards)
    metrics_sink = [] if args.metrics_port is not None else None
    outcome = dist.run(
        mode="local" if args.local_shards else "process",
        resume=args.resume,
        kill_shard=args.kill_shard,
        kill_after_events=(
            args.kill_after if args.kill_shard is not None else None
        ),
        stale_after=args.stale_after,
        alert_hooks=hooks,
        metrics_port=args.metrics_port,
        metrics_sink=metrics_sink,
    )
    shards_run = [s for s in outcome.shards if s is not None]
    state = "killed" if outcome.killed_shards else "drained"
    events = sum(s.events for s in shards_run)
    ticks = sum(s.tick for s in shards_run)
    print(f"distributed service {state}: {events} result(s) over "
          f"{ticks} tick(s) across {len(outcome.shards)} shard(s), "
          f"policy={session.scheduler.policy}", file=out)
    for shard in outcome.shards:
        if shard is None:
            continue
        spec = shard.spec
        flags = " resumed" if shard.resumed else ""
        print(f"  shard {spec.index}: devices [{spec.lo},{spec.hi}) "
              f"events={shard.events} ticks={shard.tick}{flags}",
              file=out)
    for index in outcome.killed_shards:
        print(f"  shard {index}: KILLED (resume with --resume)", file=out)
    if outcome.merged_digest is not None:
        print(f"  merged belief digest: {outcome.merged_digest}",
              file=out)
        if outcome.fold_digest is None:
            # Resumed shards log only post-checkpoint events, so the
            # fold referee has no complete stream to replay.
            print("  event-stream fold digest: skipped "
                  "(resumed from checkpoints)", file=out)
        else:
            fold_ok = outcome.fold_digest == outcome.merged_digest
            print(f"  event-stream fold digest matches: "
                  f"{'yes' if fold_ok else 'NO — DIVERGED'}", file=out)
    if outcome.report is not None:
        print(f"  devices={outcome.report.devices} "
              f"detected={outcome.report.detected} "
              f"escapes={outcome.report.escapes}", file=out)
    for alert in outcome.alerts:
        print(f"  alert: {alert}", file=out)
    if "events_per_second" in outcome.stats:
        print(f"  sustained ingest: "
              f"{outcome.stats['events_per_second']:.1f} events/s",
              file=out)
    if args.log:
        for shard in shards_run:
            path = f"{args.log}.shard{shard.spec.index}"
            with open(path, "w") as fp:
                fp.write(shard.log_jsonl)
        with open(args.log, "w") as fp:
            fp.write(outcome.concatenated_jsonl())
        print(f"  event logs written to {args.log} (+ per-shard "
              f".shard<K> files)", file=out)
    if metrics_sink:
        server = metrics_sink[0]
        if args.metrics_linger > 0:
            print(f"  /metrics on http://{server.host}:{server.port}"
                  f"/metrics for {args.metrics_linger:.0f}s", file=out)
            out.flush()
            _time.sleep(args.metrics_linger)
        server.stop()
    diverged = any(a["kind"] == "belief-divergence"
                   for a in outcome.alerts)
    return 1 if diverged else 0


def cmd_schedule(args, out) -> int:
    from .scheduler import verify_replay
    from .scheduler.policy import POLICIES

    if args.policy not in POLICIES:
        print(f"unknown policy {args.policy!r} "
              f"(known: {', '.join(sorted(POLICIES))})", file=sys.stderr)
        return 2
    session = _scheduler_session(args)
    outcome = session.run()
    for line in outcome.report.summary_lines():
        print(line, file=out)
    if args.log:
        outcome.log.write_jsonl(args.log)
        print(f"  event log written to {args.log}", file=out)
    if args.report:
        with open(args.report, "w") as fp:
            fp.write(outcome.report.to_json())
        print(f"  report written to {args.report}", file=out)
    if args.verify_replay:
        matches, _ = verify_replay(session, outcome)
        print(f"  replay: {'byte-identical' if matches else 'DIVERGED'}",
              file=out)
        if not matches:
            return 1
    return 0


def cmd_integrate(args, out) -> int:
    from .core.config import TestIntegrationConfig
    from .cpu.cpu import run_program
    from .integration.library_gen import AgingLibrary
    from .integration.profile import ProfileGuidedIntegrator
    from .workloads import WORKLOADS

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    ctx = default_context()
    library = AgingLibrary(name="vega_all")
    for unit_name in args.units.split(","):
        unit_name = unit_name.strip()
        if unit_name not in ("alu", "fpu"):
            print(f"unknown unit {unit_name!r}", file=sys.stderr)
            return 2
        library.test_cases.extend(
            ctx.unit(unit_name).suite(args.mitigation).test_cases
        )
    integrator = ProfileGuidedIntegrator(
        library, TestIntegrationConfig(overhead_threshold=args.threshold)
    )
    source = WORKLOADS[args.workload].source
    baseline = run_program(source)
    app = integrator.integrate(source)
    result, fault = app.run()
    overhead = result.cycles / baseline.cycles - 1.0
    print(f"workload: {args.workload}", file=out)
    print(f"integration point: {app.plan.label!r} "
          f"(runs {app.plan.block_count}x, gate 1/{app.plan.gate_period})",
          file=out)
    print(f"estimated overhead: {app.plan.estimated_overhead:.2%}", file=out)
    print(f"measured overhead:  {overhead:+.2%} "
          f"({baseline.cycles} -> {result.cycles} cycles)", file=out)
    print(f"result preserved: {result.exit_value == baseline.exit_value}; "
          f"fault: {fault}", file=out)
    return 0


def cmd_attack(args, out) -> int:
    from .adversary import (
        AttackReport,
        AttackSearch,
        derive_base_onset,
        sample_attack_fleet,
    )
    from .core import telemetry
    from .core.artifacts import ArtifactCache
    from .core.config import AdversaryConfig

    if args.resume and args.no_cache:
        print("--resume needs the artifact cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    adv_config = AdversaryConfig(
        seed=args.attack_seed,
        candidates=args.candidates,
        rounds=args.rounds,
        beam=args.beam,
        mutations=args.mutations,
        stream_ops=args.stream_ops,
        lanes=args.lanes,
        workers=args.workers,
    )
    ctx = default_context()
    unit = ctx.unit(args.unit)
    tele = telemetry.Telemetry()
    with telemetry.use(tele):
        pairs = unit.sta_result.report.unique_endpoint_pairs()
        search = AttackSearch(
            unit.netlist, args.unit, unit.sp_profile, pairs,
            config=adv_config, cache=cache,
        )
        result, _best_stream = search.run(resume=args.resume)
        report = None
        if args.attack_command == "run":
            from .campaign import CampaignEngine
            from .campaign.fleet import sample_fleet
            from .core.config import CampaignConfig

            suites = tuple(
                s.strip() for s in args.suites.split(",") if s.strip()
            )
            config = CampaignConfig(
                devices=args.devices,
                seed=args.seed,
                shard_size=args.shard_size,
                workers=args.workers,
                suites=suites,
                base_onset_years=args.onset_years,
            )
            base = derive_base_onset(unit, config)
            models = unit.failure_models()
            library = unit.suite(args.mitigation)
            natural_fleet = sample_fleet(config, models, base)
            attack_fleet = sample_attack_fleet(
                config, models, base, result.acceleration,
                attack_fraction=args.attack_fraction,
                attack_seed=args.attack_seed,
            )
            campaigns = []
            for fleet in (natural_fleet, attack_fleet):
                engine = CampaignEngine(
                    unit.netlist, args.unit, library, models,
                    config=config, cache=cache, base_onset_years=base,
                    fleet=fleet,
                )
                campaigns.append(engine.run(resume=args.resume))
            report = AttackReport.from_campaigns(
                result, natural_fleet, attack_fleet,
                campaigns[0], campaigns[1],
                attack_fraction=args.attack_fraction,
                attack_seed=args.attack_seed,
                budget_instructions=config.max_suite_instructions,
            )
    print(result.summary(), file=out)
    if search.resumed_rounds:
        print(f"  resumed from round checkpoint "
              f"(skipped {search.resumed_rounds} round(s))", file=out)
    if report is not None:
        print(report.summary(), file=out)
    if args.report:
        with open(args.report, "w") as fp:
            fp.write((report or result).to_json())
        print(f"  report written to {args.report}", file=out)
    if args.trace:
        tele.write_jsonl(args.trace)
        print(f"  trace written to {args.trace}", file=out)
    if args.metrics:
        print(file=out)
        print(tele.summary_markdown(), file=out)
    return 0


def cmd_respond(args, out) -> int:
    from .core import telemetry
    from .core.artifacts import ArtifactCache
    from .core.config import ResponseConfig
    from .core.experiments import CLOCK_CHAIN_LENGTH
    from .response import ResponseEngine

    if args.resume and args.no_cache:
        print("--resume needs the artifact cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    policies = tuple(
        p.strip() for p in args.policies.split(",") if p.strip()
    )
    config = ResponseConfig(
        policies=policies,
        mission_years=args.mission_years,
        accuracy_samples=args.accuracy_samples,
        seed=args.seed,
        workers=args.workers,
    )
    ctx = default_context()
    unit = ctx.unit(args.unit)
    tele = telemetry.Telemetry()
    with telemetry.use(tele):
        engine = ResponseEngine(
            unit.netlist,
            args.unit,
            unit.sp_profile,
            aging=ctx.config.aging,
            config=config,
            gated_instances=unit.gated_instances(),
            clock_chain_length=CLOCK_CHAIN_LENGTH,
            cache=cache,
            operands=ctx.stream(args.unit),
        )
        report = engine.evaluate(resume=args.resume)
    print(report.summary(), file=out)
    if engine.resumed_policies:
        print(f"  resumed from checkpoints: "
              f"{', '.join(engine.resumed_policies)}", file=out)
    if args.report:
        with open(args.report, "w") as fp:
            fp.write(report.to_json())
        print(f"  report written to {args.report}", file=out)
    if args.trace:
        tele.write_jsonl(args.trace)
        print(f"  trace written to {args.trace}", file=out)
    if args.metrics:
        print(file=out)
        print(tele.summary_markdown(), file=out)
    return 0


def main(argv: Optional[list] = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "workloads": cmd_workloads,
        "run": cmd_run,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "sta": cmd_sta,
        "lift": cmd_lift,
        "suite": cmd_suite,
        "inject": cmd_inject,
        "detect": cmd_detect,
        "verify": cmd_verify,
        "models": cmd_models,
        "campaign": cmd_campaign,
        "bench": cmd_bench,
        "surrogate": cmd_surrogate,
        "attack": cmd_attack,
        "respond": cmd_respond,
        "serve": cmd_serve,
        "schedule": cmd_schedule,
        "integrate": cmd_integrate,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
