"""Verilog writer/parser round-trip tests, including the real designs."""

import pytest

from repro.cpu.alu_design import AluOp, alu_reference, build_alu
from repro.netlist.parser import VerilogParseError, parse_verilog
from repro.netlist.verilog import netlist_to_verilog
from repro.sim.gatesim import GateSimulator


class TestWriter:
    def test_contains_gate_models(self, paper_adder):
        text = netlist_to_verilog(paper_adder)
        assert "module DFF" in text
        assert "module adder(" in text

    def test_ports_declared_with_widths(self, paper_adder):
        text = netlist_to_verilog(paper_adder)
        assert "input [1:0] a" in text
        assert "output [1:0] o" in text
        assert "input clk" in text

    def test_dffs_get_clock(self, paper_adder):
        text = netlist_to_verilog(paper_adder)
        assert ".CLK(clk)" in text

    def test_without_gate_models(self, paper_adder):
        text = netlist_to_verilog(paper_adder, include_gate_models=False)
        assert "module AND2" not in text
        assert "module adder(" in text


class TestRoundTrip:
    def test_paper_adder_structure_preserved(self, paper_adder):
        text = netlist_to_verilog(paper_adder)
        parsed = parse_verilog(text, library=paper_adder.library)
        assert parsed.stats() == paper_adder.stats()
        assert {p.name for p in parsed.input_ports()} == {"a", "b"}

    def test_paper_adder_behaviour_preserved(self, paper_adder):
        text = netlist_to_verilog(paper_adder)
        parsed = parse_verilog(text, library=paper_adder.library)
        original = GateSimulator(paper_adder)
        replica = GateSimulator(parsed)
        for a in range(4):
            for b in range(4):
                frame = {"a": a, "b": b}
                assert original.step(frame) == replica.step(frame)

    def test_full_alu_roundtrip_behaviour(self):
        """The 1.2k-cell ALU survives a text round trip bit-exactly."""
        alu = build_alu()
        parsed = parse_verilog(netlist_to_verilog(alu))
        assert parsed.stats() == alu.stats()
        import random

        rng = random.Random(9)
        sim_a, sim_b = GateSimulator(alu), GateSimulator(parsed)
        for _ in range(20):
            frame = {
                "op": rng.choice(list(AluOp)),
                "a": rng.getrandbits(32),
                "b": rng.getrandbits(32),
                "mode": 0,
                "dft": 0,
            }
            frame["op"] = int(frame["op"])
            assert sim_a.step(frame) == sim_b.step(frame)

    def test_parse_rejects_unknown_cell(self, vega28):
        source = """
        module t(input clk, input a, output y);
          FANCY9 u1 (.A(a), .Y(y));
        endmodule
        """
        with pytest.raises(VerilogParseError, match="unknown cell"):
            parse_verilog(source, library=vega28)

    def test_parse_rejects_unknown_net(self, vega28):
        source = """
        module t(input clk, input a, output y);
          INV u1 (.A(ghost), .Y(y));
        endmodule
        """
        with pytest.raises(VerilogParseError, match="unknown net"):
            parse_verilog(source, library=vega28)

    def test_parse_requires_user_module(self, vega28):
        with pytest.raises(VerilogParseError, match="no user module"):
            parse_verilog("// empty\n", library=vega28)
