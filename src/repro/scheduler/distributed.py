"""Sharded multi-process detection service with an operational surface.

ROADMAP item 2: the asyncio :class:`~repro.scheduler.service.
DetectionService` goes fleet-scale by sharding the
:class:`~repro.scheduler.belief.FleetBelief` across worker processes.
Each shard owns a contiguous device-index range and runs today's
service loop unchanged (in ``lockstep`` mode, the arrival-order-
invariant contract from :class:`~repro.core.config.SchedulerConfig`);
a front-end :class:`ShardRouter` in the parent speaks a length-prefixed
JSON frame protocol over ``socket.socketpair()`` so many client tasks
can ``request_plan`` / ``submit_result`` concurrently.

**Exactness.**  :meth:`FleetBelief.partition` gives every shard the
full-fleet prior, its range's devices, and exactly its slice of the
fleet-level evidence; :meth:`FleetBelief.merge` recombines per-shard
sufficient statistics by summing integer-valued posterior deltas, so
the merged digest equals the digest of one process folding the
concatenated ``(shard, seq)`` event stream (:func:`fold_event_stream`
pins this down, and a mismatch fires the ``belief-divergence`` alert).

**Determinism.**  Per-shard trajectories depend only on that shard's
devices, so a multi-process run is byte-identical — event logs and
belief digests — to :meth:`DistributedSession.run` with
``mode="local"``, the in-process reference that drives the same shard
partition sequentially.  The lockstep service closes a batch only when
every enrolled client's request has arrived and folds results sorted
by device index, which removes the one thing a socket could perturb:
arrival interleaving.  With the belief-independent ``sequential``
policy the merged digest is additionally invariant across shard counts
(each device's arm sequence never depends on batch composition), which
is the cross-``N`` equality the CI smoke asserts.

**Operational surface** (wall-clock lives here, never in the canonical
event log): per-shard heartbeat frames with a configurable staleness
threshold, pluggable alert hooks (:class:`AlertHub`, with a
:class:`WebhookAlertHook` stub) firing on shard stall / death /
belief divergence, and a Prometheus-text ``/metrics`` snapshot
(:meth:`ShardRouter.metrics_text`, served by :class:`MetricsServer`)
fed from :mod:`repro.core.telemetry` counters plus live shard gauges.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import socket
import struct
import threading
import time
import urllib.request
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..campaign.engine import DeviceRunner
from ..campaign.fleet import DeviceSpec, sample_fleet
from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import SchedulerConfig
from .belief import ArmSpec, FleetBelief, arms_digest
from .policy import Dispatch, make_policy
from .replay import (
    FleetAdapter,
    ScheduleReport,
    ScheduleSession,
    build_arms,
)
from .service import (
    DetectionService,
    EventLog,
    ResultEvent,
    RetryAfter,
)

#: Hard cap on one frame's JSON body; a length prefix beyond this means
#: a corrupt or hostile stream, not a big belief snapshot.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Batch window used for shard services: effectively "never expire".
#: Lockstep batches close on the full client set, so the window's only
#: legal value is one that can never race a slow frame.
_LOCKSTEP_WINDOW = 10**9


# ---------------------------------------------------------------------
# Frame codec: 4-byte big-endian length prefix + canonical JSON body.
# ---------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """One wire frame for ``payload`` (canonical JSON, length-prefixed)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame body of {len(body)} bytes exceeds "
            f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
        )
    return struct.pack(">I", len(body)) + body


class FrameDecoder:
    """Incremental decoder for the length-prefixed frame stream.

    Feed arbitrary byte chunks (socket reads split frames wherever they
    like); complete frames come back decoded, partial ones buffer.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[dict]:
        self._buffer.extend(data)
        frames: List[dict] = []
        while len(self._buffer) >= 4:
            (length,) = struct.unpack_from(">I", self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise ValueError(
                    f"frame length {length} exceeds "
                    f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
                )
            if len(self._buffer) < 4 + length:
                break
            body = bytes(self._buffer[4 : 4 + length])
            del self._buffer[: 4 + length]
            frames.append(json.loads(body.decode("utf-8")))
        return frames


class FrameConn:
    """Async frame transport over one (non-blocking) stream socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.sock.setblocking(False)
        self._decoder = FrameDecoder()
        self._send_lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        data = encode_frame(payload)
        async with self._send_lock:
            await asyncio.get_running_loop().sock_sendall(self.sock, data)

    async def recv(self) -> Optional[List[dict]]:
        """Decoded frames from one socket read; ``None`` at EOF."""
        try:
            data = await asyncio.get_running_loop().sock_recv(
                self.sock, 1 << 16
            )
        except (ConnectionResetError, OSError):
            return None
        if not data:
            return None
        return self._decoder.feed(data)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------
# Shard layout.
# ---------------------------------------------------------------------
def shard_ranges(devices: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous half-open index ranges tiling ``devices`` across
    ``shards`` (first ``devices % shards`` shards take the extra)."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    base, extra = divmod(devices, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardSpec:
    """Identity of one shard within a distributed session."""

    index: int
    shards: int
    lo: int
    hi: int
    run_id: str
    checkpoint_key: str


@dataclass
class ShardResult:
    """What one shard reports back after a graceful drain."""

    spec: ShardSpec
    log_jsonl: str
    belief: FleetBelief
    digest: str
    tick: int
    events: int
    counters: Dict[str, float] = field(default_factory=dict)
    tick_walls: List[float] = field(default_factory=list)
    resumed: bool = False


# ---------------------------------------------------------------------
# Alerting.
# ---------------------------------------------------------------------
class AlertHub:
    """Fan-out point for operational alerts.

    Hooks are plain callables taking the alert dict; a raising hook is
    counted and skipped, never allowed to take the service down.
    """

    def __init__(self, hooks: Sequence[Callable[[dict], None]] = ()):
        self.hooks = list(hooks)
        self.alerts: List[dict] = []

    def fire(self, kind: str, **detail: object) -> dict:
        alert = {"kind": kind, **detail}
        self.alerts.append(alert)
        telemetry.add(f"scheduler.alerts.{kind}")
        for hook in self.hooks:
            try:
                hook(alert)
            except Exception:
                telemetry.add("scheduler.alert_hook_errors")
        return alert


class WebhookAlertHook:
    """Alert hook that POSTs each alert as JSON to a webhook URL.

    A stub in the icdev proactive-monitoring spirit: delivery is
    best-effort with a short timeout, and failures only count — an
    unreachable webhook must never block or crash the router.
    """

    def __init__(self, url: str, timeout: float = 2.0):
        self.url = url
        self.timeout = float(timeout)
        self.delivered = 0
        self.failed = 0

    def __call__(self, alert: dict) -> None:
        body = json.dumps(alert, sort_keys=True, default=str).encode()
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=self.timeout).close()
            self.delivered += 1
        except Exception:
            self.failed += 1
            telemetry.add("scheduler.webhook_failures")


# ---------------------------------------------------------------------
# Metrics endpoint.
# ---------------------------------------------------------------------
class MetricsServer:
    """Threaded HTTP server exposing ``/metrics`` (Prometheus text).

    ``render`` is called per scrape, so the endpoint always shows the
    current counter/heartbeat state.  ``port=0`` binds an ephemeral
    port (the resolved one is in :attr:`port`).
    """

    def __init__(self, render: Callable[[], str], port: int = 0,
                 host: str = "127.0.0.1"):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path in ("/", "/metrics"):
                    body = outer.render().encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_response(404)
                    self.end_headers()

            def log_message(self, *args: object) -> None:
                pass  # scrapes are telemetry, not stderr noise

        self.render = render
        self._server = ThreadingHTTPServer((host, port), Handler)
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics",
            daemon=True,
        )

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)


# ---------------------------------------------------------------------
# Worker process: one shard's DetectionService behind a frame socket.
# ---------------------------------------------------------------------
class _TickTimedPolicy:
    """Policy wrapper measuring wall time between consecutive plans.

    One plan == one tick, so the gaps are per-batch wall latencies
    (dispatch -> execute -> full ingest).  Purely observational: every
    decision delegates to the wrapped policy.
    """

    def __init__(self, inner):
        self._inner = inner
        self.tick_walls: List[float] = []
        self._last: Optional[float] = None

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def seed(self) -> int:
        return self._inner.seed

    def plan(self, belief, arms, requests, tick):
        now = time.perf_counter()
        if self._last is not None:
            self.tick_walls.append(now - self._last)
        self._last = now
        return self._inner.plan(belief, arms, requests, tick)


def _build_shard_service(
    payload: dict,
) -> Tuple[DetectionService, EventLog, _TickTimedPolicy]:
    """A lockstep DetectionService from a shard worker payload.

    Shared by the worker process and the in-process reference, so both
    modes construct byte-identical services by design.
    """
    belief = FleetBelief.from_snapshot(payload["belief"])
    arms = [ArmSpec(**row) for row in payload["arms"]]
    policy = _TickTimedPolicy(
        make_policy(payload["policy"], payload["policy_seed"])
    )
    config = SchedulerConfig(**payload["config"])
    log = EventLog(run_id=payload["run_id"])
    cache = (
        ArtifactCache(payload["cache_dir"])
        if payload.get("cache_dir")
        else None
    )
    service = DetectionService(
        belief=belief,
        arms=arms,
        policy=policy,
        config=config,
        log=log,
        cache=cache,
        checkpoint_key=payload["checkpoint_key"],
        tick=payload["tick"],
        events_ingested=payload["events_ingested"],
    )
    service.kill_after_events = payload.get("kill_after_events")
    return service, log, policy


def _done_frame(
    payload: dict,
    service: DetectionService,
    log: EventLog,
    policy: _TickTimedPolicy,
    counters: Dict[str, float],
) -> dict:
    return {
        "op": "done",
        "shard": payload["shard"],
        "log": log.to_jsonl(),
        "belief": service.belief.snapshot(),
        "digest": service.belief.digest(),
        "tick": service.tick,
        "events": service.events_ingested,
        "counters": counters,
        "tick_walls": policy.tick_walls,
    }


async def _shard_worker(sock: socket.socket, payload: dict) -> None:
    conn = FrameConn(sock)
    service, log, policy = _build_shard_service(payload)
    wake = asyncio.Event()
    handlers: set = set()
    closed = asyncio.Event()

    async def idle_wait() -> None:
        # Park until a frame arrives (or a short timeout as a safety
        # net); in lockstep mode idle passes never mutate state, so
        # waiting here cannot change the trajectory — it only stops
        # the loop from spinning hot on an empty socket.
        try:
            await asyncio.wait_for(wake.wait(), timeout=0.02)
        except asyncio.TimeoutError:
            pass
        wake.clear()

    service.idle_wait = idle_wait

    def spawn(coro) -> None:
        task = asyncio.ensure_future(coro)
        handlers.add(task)
        task.add_done_callback(handlers.discard)

    async def handle_plan(frame: dict) -> None:
        dispatch = await service.request_plan(
            frame["device"], frame["index"]
        )
        await conn.send(
            {
                "op": "plan_ok",
                "rid": frame["rid"],
                "dispatch": (
                    dataclasses.asdict(dispatch)
                    if dispatch is not None
                    else None
                ),
            }
        )

    async def handle_submit(frame: dict) -> None:
        result = ResultEvent(**frame["result"])
        try:
            await service.submit_result(result)
        except RetryAfter as exc:
            await conn.send(
                {
                    "op": "retry",
                    "rid": frame["rid"],
                    "after": exc.retry_after,
                }
            )
            return
        await conn.send({"op": "submit_ok", "rid": frame["rid"]})

    async def reader() -> None:
        while True:
            frames = await conn.recv()
            if frames is None:
                break
            for frame in frames:
                op = frame.get("op")
                if op == "plan":
                    # ensure_future per frame: tasks run in creation
                    # order, so the service sees requests in exact
                    # wire order.
                    spawn(handle_plan(frame))
                elif op == "submit":
                    spawn(handle_submit(frame))
                elif op == "drain":
                    service.request_shutdown()
                elif op == "close":
                    closed.set()
                    return
            wake.set()
        closed.set()

    async def heartbeats() -> None:
        interval = float(payload.get("heartbeat_interval", 0.2))
        while True:
            await asyncio.sleep(interval)
            try:
                await conn.send(
                    {
                        "op": "heartbeat",
                        "shard": payload["shard"],
                        "tick": service.tick,
                        "events": service.events_ingested,
                        "queue": len(service._buffer),
                        "outstanding": len(service._outstanding),
                        "draining": service._draining,
                    }
                )
            except OSError:
                return  # parent hung up mid-beat; the worker is done

    reader_task = asyncio.ensure_future(reader())
    heartbeat_task = asyncio.ensure_future(heartbeats())
    try:
        await service.run()
        killed = (
            service.kill_after_events is not None
            and service.events_ingested >= service.kill_after_events
        )
        if killed:
            # Simulated crash: no done frame, no farewell — the parent
            # sees a bare EOF, exactly like a real shard death.  The
            # periodic checkpoints are the only survivors.
            return
        active = telemetry.active()
        await conn.send(
            _done_frame(
                payload,
                service,
                log,
                policy,
                dict(active.counters) if active is not None else {},
            )
        )
        # Keep answering stragglers (clients that submitted their last
        # result and re-request after the drain) until the parent
        # closes the connection.
        await closed.wait()
    finally:
        heartbeat_task.cancel()
        reader_task.cancel()
        for task in list(handlers):
            task.cancel()
        conn.close()


def _shard_worker_main(sock: socket.socket, payload: dict) -> None:
    # Fresh telemetry per worker; the counter deltas ship back in the
    # done frame and merge into the parent in shard order, the same
    # fork-worker discipline the profiler and lifter use.
    telemetry.install(telemetry.Telemetry(run_id=payload["run_id"]))
    try:
        asyncio.run(_shard_worker(sock, payload))
    finally:
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------
# Front-end router.
# ---------------------------------------------------------------------
@dataclass
class HeartbeatRecord:
    """Latest liveness report from one shard (wall-clock side only)."""

    shard: int
    tick: int
    events: int
    queue: int
    outstanding: int
    draining: bool
    at_monotonic: float


class _ShardHandle:
    """Router-side state for one shard connection."""

    def __init__(self, spec: ShardSpec, conn: FrameConn,
                 process: Optional[multiprocessing.process.BaseProcess]):
        self.spec = spec
        self.conn = conn
        self.process = process
        self.pending: Dict[int, asyncio.Future] = {}
        self.last_heartbeat: Optional[HeartbeatRecord] = None
        self.heartbeat_count = 0
        self.done_frame: Optional[dict] = None
        self.done_event = asyncio.Event()
        self.dead = False
        self.stalled = False
        self._rid = 0

    def next_rid(self) -> int:
        self._rid += 1
        return self._rid


class ShardRouter:
    """Routes plan/submit traffic to shards; watches their health.

    The router is the operational front end: client tasks call
    :meth:`request_plan` / :meth:`submit_result` with plain device
    coordinates, and it correlates request/response frames by rid,
    tracks per-shard heartbeats against ``stale_after``, fires alert
    hooks on stall/death, and renders the ``/metrics`` snapshot.
    """

    def __init__(
        self,
        handles: Sequence[_ShardHandle],
        alerts: AlertHub,
        stale_after: float = 5.0,
        check_interval: float = 0.2,
    ):
        self.handles = list(handles)
        self.alerts = alerts
        self.stale_after = float(stale_after)
        self.check_interval = float(check_interval)
        self._tasks: List[asyncio.Future] = []
        self._started_monotonic = time.monotonic()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._started_monotonic = time.monotonic()
        for handle in self.handles:
            self._tasks.append(
                asyncio.ensure_future(self._shard_reader(handle))
            )
        self._tasks.append(asyncio.ensure_future(self._monitor()))

    async def wait_done(self) -> None:
        """Until every shard reported done or died."""
        for handle in self.handles:
            await handle.done_event.wait()

    async def close(self) -> None:
        for handle in self.handles:
            if not handle.dead:
                try:
                    await handle.conn.send({"op": "close"})
                except OSError:
                    pass
        for task in self._tasks:
            task.cancel()
        for handle in self.handles:
            handle.conn.close()

    # -- routing -------------------------------------------------------
    def shard_for(self, device_index: int) -> _ShardHandle:
        for handle in self.handles:
            if handle.spec.lo <= device_index < handle.spec.hi:
                return handle
        raise KeyError(f"device index {device_index} is outside "
                       f"every shard range")

    async def request_plan(
        self, device_id: str, device_index: int
    ) -> Optional[Dispatch]:
        handle = self.shard_for(device_index)
        if handle.dead:
            return None
        rid = handle.next_rid()
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        handle.pending[rid] = future
        try:
            await handle.conn.send(
                {
                    "op": "plan",
                    "rid": rid,
                    "device": device_id,
                    "index": device_index,
                }
            )
        except OSError:
            # The shard died with our write in flight — its reader
            # hasn't seen EOF yet, so ``handle.dead`` is still False.
            # Same outcome as a dead shard; the reader fires the
            # shard-death alert when EOF lands.
            handle.pending.pop(rid, None)
            return None
        telemetry.add("scheduler.router.plans")
        frame = await future
        if frame is None:  # shard died with the request in flight
            return None
        row = frame.get("dispatch")
        return Dispatch(**row) if row is not None else None

    async def submit_result(self, result: ResultEvent) -> None:
        handle = self.shard_for(result.device_index)
        if handle.dead:
            return  # dead shard drops results, like a stopped service
        rid = handle.next_rid()
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        handle.pending[rid] = future
        try:
            await handle.conn.send(
                {
                    "op": "submit",
                    "rid": rid,
                    "result": dataclasses.asdict(result),
                }
            )
        except OSError:
            # Write raced the shard's death ahead of the reader's EOF;
            # drop the result exactly like the ``handle.dead`` branch.
            handle.pending.pop(rid, None)
            return
        frame = await future
        if frame is None:
            return
        if frame.get("op") == "retry":
            telemetry.add("scheduler.router.retries")
            raise RetryAfter(retry_after=int(frame.get("after", 1)))
        telemetry.add("scheduler.router.results")

    # -- health --------------------------------------------------------
    async def _shard_reader(self, handle: _ShardHandle) -> None:
        while True:
            frames = await handle.conn.recv()
            if frames is None:
                break
            for frame in frames:
                op = frame.get("op")
                if op in ("plan_ok", "submit_ok", "retry"):
                    future = handle.pending.pop(frame.get("rid"), None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif op == "heartbeat":
                    handle.heartbeat_count += 1
                    handle.last_heartbeat = HeartbeatRecord(
                        shard=handle.spec.index,
                        tick=int(frame.get("tick", 0)),
                        events=int(frame.get("events", 0)),
                        queue=int(frame.get("queue", 0)),
                        outstanding=int(frame.get("outstanding", 0)),
                        draining=bool(frame.get("draining", False)),
                        at_monotonic=time.monotonic(),
                    )
                    telemetry.add("scheduler.router.heartbeats")
                elif op == "done":
                    handle.done_frame = frame
                    handle.done_event.set()
        # EOF: a graceful shard already sent its done frame; anything
        # else is a death.
        if handle.done_frame is None and not handle.done_event.is_set():
            handle.dead = True
            self.alerts.fire(
                "shard-death",
                shard=handle.spec.index,
                lo=handle.spec.lo,
                hi=handle.spec.hi,
                last_tick=(
                    handle.last_heartbeat.tick
                    if handle.last_heartbeat
                    else None
                ),
            )
        for future in handle.pending.values():
            if not future.done():
                future.set_result(None)
        handle.pending.clear()
        handle.done_event.set()

    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(self.check_interval)
            now = time.monotonic()
            for handle in self.handles:
                if handle.dead or handle.done_event.is_set():
                    continue
                last = (
                    handle.last_heartbeat.at_monotonic
                    if handle.last_heartbeat is not None
                    else self._started_monotonic
                )
                age = now - last
                if age > self.stale_after and not handle.stalled:
                    handle.stalled = True
                    self.alerts.fire(
                        "shard-stall",
                        shard=handle.spec.index,
                        stale_seconds=round(age, 3),
                        threshold=self.stale_after,
                    )
                elif age <= self.stale_after:
                    handle.stalled = False

    def stale_shards(self, threshold: Optional[float] = None) -> List[int]:
        """Shard indexes whose last heartbeat is older than the
        threshold (default: the router's ``stale_after``)."""
        limit = self.stale_after if threshold is None else float(threshold)
        now = time.monotonic()
        stale: List[int] = []
        for handle in self.handles:
            if handle.done_event.is_set():
                continue
            last = (
                handle.last_heartbeat.at_monotonic
                if handle.last_heartbeat is not None
                else self._started_monotonic
            )
            if now - last > limit:
                stale.append(handle.spec.index)
        return stale

    # -- metrics -------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus text snapshot: telemetry counters + live gauges."""
        active = telemetry.active()
        counters = dict(active.counters) if active is not None else {}
        now = time.monotonic()
        gauges: List[Tuple[str, Dict[str, str], float]] = [
            ("scheduler.shards", {}, len(self.handles)),
            (
                "scheduler.shards_live",
                {},
                sum(
                    1
                    for handle in self.handles
                    if not handle.dead and not handle.done_event.is_set()
                ),
            ),
        ]
        for handle in self.handles:
            labels = {"shard": str(handle.spec.index)}
            gauges.append(
                ("scheduler.shard_dead", labels, int(handle.dead))
            )
            heartbeat = handle.last_heartbeat
            if heartbeat is None:
                continue
            gauges.extend(
                [
                    ("scheduler.shard_tick", labels, heartbeat.tick),
                    ("scheduler.shard_events", labels, heartbeat.events),
                    (
                        "scheduler.shard_queue_depth",
                        labels,
                        heartbeat.queue,
                    ),
                    (
                        "scheduler.shard_outstanding",
                        labels,
                        heartbeat.outstanding,
                    ),
                    (
                        "scheduler.shard_heartbeat_age_seconds",
                        labels,
                        round(now - heartbeat.at_monotonic, 3),
                    ),
                ]
            )
        return telemetry.render_prometheus(counters, gauges)


# ---------------------------------------------------------------------
# Event-stream fold: the single-process referee for merge exactness.
# ---------------------------------------------------------------------
def fold_event_stream(
    fleet: Sequence[DeviceSpec],
    classes: Sequence[str],
    scheduler: SchedulerConfig,
    arms: Sequence[ArmSpec],
    records: Sequence[dict],
) -> FleetBelief:
    """Fold concatenated shard event records into one fresh belief.

    This is "the single process seeing the same event stream": replay
    every dispatch/result record, in (shard, seq) order, into a belief
    built over the full fleet.  :meth:`FleetBelief.merge` of the shard
    beliefs must produce the identical digest — the merge-exactness
    invariant, checked after every distributed run.
    """
    belief = FleetBelief(
        fleet,
        classes,
        cycle_budget=scheduler.cycle_budget,
        fleet_blend=scheduler.fleet_blend,
    )
    arms_by_name = {arm.name: arm for arm in arms}
    for record in records:
        if record.get("type") != "event":
            continue
        attrs = record.get("attrs", {})
        name = record.get("name")
        if name == "dispatch":
            belief.record_dispatch(
                attrs["device"], arms_by_name[attrs["arm"]]
            )
        elif name == "result":
            belief.record_outcome(
                attrs["device"],
                arms_by_name[attrs["arm"]],
                attrs["detected"],
                attrs["cycles"],
                detected_by=attrs.get("detected_by"),
            )
    return belief


# ---------------------------------------------------------------------
# The distributed session.
# ---------------------------------------------------------------------
@dataclass
class DistributedOutcome:
    """Everything one distributed run produced."""

    session_key: str
    fleet: List[DeviceSpec]
    shards: List[Optional[ShardResult]]
    report: Optional[ScheduleReport]
    belief: Optional[FleetBelief]
    merged_digest: Optional[str]
    fold_digest: Optional[str]
    alerts: List[dict]
    metrics_text: str
    killed_shards: List[int] = field(default_factory=list)
    resumed_shards: List[int] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    def concatenated_jsonl(self) -> str:
        """Per-shard logs concatenated in (shard, seq) order — the
        canonical distributed event log."""
        return "".join(
            shard.log_jsonl for shard in self.shards if shard is not None
        )


class DistributedSession:
    """A :class:`ScheduleSession` sharded across worker processes.

    Wraps a schedule session: the fleet, arms, adapter, and policy all
    come from it; this class partitions the belief, derives the
    per-shard lockstep configs, and drives the shards either as forked
    worker processes behind a :class:`ShardRouter` (``mode="process"``)
    or sequentially in-process (``mode="local"``, the byte-identical
    determinism reference).
    """

    def __init__(self, session: ScheduleSession, shards: int):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.session = session
        self.shards = int(shards)

    # -- identity -------------------------------------------------------
    def session_key(self, fleet: Sequence[DeviceSpec]) -> str:
        return ArtifactCache.digest(
            "scheduler.distributed",
            self.session.session_key(fleet),
            self.shards,
        )

    def shard_specs(
        self, fleet: Sequence[DeviceSpec], key: str
    ) -> List[ShardSpec]:
        count = min(self.shards, max(1, len(fleet)))
        specs = []
        for index, (lo, hi) in enumerate(
            shard_ranges(len(fleet), count)
        ):
            specs.append(
                ShardSpec(
                    index=index,
                    shards=count,
                    lo=lo,
                    hi=hi,
                    run_id=f"sched-{key[:12]}-s{index}",
                    checkpoint_key=ArtifactCache.digest(
                        "scheduler.shard", key, index, count, lo, hi
                    ),
                )
            )
        return specs

    def _shard_config(self, device_count: int) -> SchedulerConfig:
        """The lockstep config a shard service runs under.

        The batch is the whole shard and the window can never expire,
        so batch composition — and with it the trajectory — is a pure
        function of the shard's device set.  The queue bound is lifted
        to the shard size so lockstep ingestion can never reject a
        batch member (rejections would be wall-clock-order dependent).
        """
        base = self.session.scheduler
        return replace(
            base,
            batch_size=max(1, device_count),
            batch_window=_LOCKSTEP_WINDOW,
            ingest_queue=max(base.ingest_queue, device_count, 1),
            lockstep=True,
        )

    # -- shared prep ----------------------------------------------------
    def _prepare(self, resume: bool):
        session = self.session
        fleet = sample_fleet(
            session.config, session.failing_models, session.base_onset_years
        )
        key = self.session_key(fleet)
        runner = DeviceRunner(
            session.netlist, session.unit, session.config, session.library
        )
        arms = build_arms(session.library, runner)
        adapter = FleetAdapter(runner, session.library)
        classes = sorted(
            {model.label for model in session.failing_models}
        )
        specs = self.shard_specs(fleet, key)
        full = FleetBelief(
            fleet,
            classes,
            cycle_budget=session.scheduler.cycle_budget,
            fleet_blend=session.scheduler.fleet_blend,
        )
        slices = full.partition([(spec.lo, spec.hi) for spec in specs])
        states: List[dict] = []
        for spec, fresh in zip(specs, slices):
            belief, tick, events, resumed = fresh, 0, 0, False
            if resume and session.cache is not None:
                state = session.cache.load_checkpoint(spec.checkpoint_key)
                if (
                    isinstance(state, dict)
                    and state.get("arms") == arms_digest(arms)
                    and state.get("policy") == session.scheduler.policy
                    and state.get("policy_seed")
                    == session.scheduler.policy_seed
                ):
                    belief = FleetBelief.from_snapshot(state["belief"])
                    tick = int(state["tick"])
                    events = int(state["events_ingested"])
                    resumed = True
            states.append(
                {
                    "spec": spec,
                    "belief": belief,
                    "tick": tick,
                    "events": events,
                    "resumed": resumed,
                }
            )
        return fleet, key, arms, adapter, classes, states

    def _worker_payload(
        self,
        state: dict,
        arms: Sequence[ArmSpec],
        kill_after_events: Optional[int],
        heartbeat_interval: float,
    ) -> dict:
        spec: ShardSpec = state["spec"]
        session = self.session
        return {
            "shard": spec.index,
            "shards": spec.shards,
            "run_id": spec.run_id,
            "checkpoint_key": spec.checkpoint_key,
            "belief": state["belief"].snapshot(),
            "arms": [dataclasses.asdict(arm) for arm in arms],
            "policy": session.scheduler.policy,
            "policy_seed": session.scheduler.policy_seed,
            "config": dataclasses.asdict(
                self._shard_config(spec.hi - spec.lo)
            ),
            "cache_dir": (
                str(session.cache.root)
                if session.cache is not None
                else None
            ),
            "tick": state["tick"],
            "events_ingested": state["events"],
            "kill_after_events": kill_after_events,
            "heartbeat_interval": heartbeat_interval,
        }

    # -- execution ------------------------------------------------------
    def run(
        self,
        mode: str = "process",
        resume: bool = False,
        kill_shard: Optional[int] = None,
        kill_after_events: Optional[int] = None,
        heartbeat_interval: float = 0.2,
        stale_after: float = 5.0,
        alert_hooks: Sequence[Callable[[dict], None]] = (),
        metrics_port: Optional[int] = None,
        metrics_sink: Optional[List[MetricsServer]] = None,
    ) -> DistributedOutcome:
        """Run (or resume) the sharded service to completion.

        ``mode="process"`` forks one worker per shard behind the frame
        protocol; ``mode="local"`` drives the identical shard services
        sequentially in-process — the reference the byte-identity tests
        compare against.  ``kill_shard``/``kill_after_events`` simulate
        one shard dying after that many shard-local ingested events (no
        drain, no done frame); resume the session afterwards to recover
        it from its periodic checkpoints.
        """
        if mode not in ("process", "local"):
            raise ValueError(f"unknown mode {mode!r}")
        (fleet, key, arms, adapter, classes, states) = self._prepare(
            resume
        )
        alerts = AlertHub(alert_hooks)
        if mode == "process":
            outcome = self._run_process(
                fleet,
                key,
                arms,
                adapter,
                classes,
                states,
                alerts,
                kill_shard,
                kill_after_events,
                heartbeat_interval,
                stale_after,
                metrics_port,
                metrics_sink,
            )
        else:
            outcome = self._run_local(
                fleet,
                key,
                arms,
                adapter,
                classes,
                states,
                alerts,
                kill_shard,
                kill_after_events,
            )
        return outcome

    # -- local (in-process reference) -----------------------------------
    def _run_local(
        self,
        fleet: Sequence[DeviceSpec],
        key: str,
        arms: Sequence[ArmSpec],
        adapter: FleetAdapter,
        classes: Sequence[str],
        states: List[dict],
        alerts: AlertHub,
        kill_shard: Optional[int],
        kill_after_events: Optional[int],
    ) -> DistributedOutcome:
        results: List[Optional[ShardResult]] = []
        killed_shards: List[int] = []
        by_index = {spec.index: spec for spec in fleet}
        t0 = time.perf_counter()
        for state in states:
            spec: ShardSpec = state["spec"]
            payload = self._worker_payload(
                state,
                arms,
                kill_after_events if kill_shard == spec.index else None,
                heartbeat_interval=3600.0,
            )
            service, log, policy = _build_shard_service(payload)
            members = [
                by_index[i]
                for i in range(spec.lo, spec.hi)
                if not service.belief.device_done(
                    by_index[i].device_id, service.arms
                )
            ]

            async def drive() -> None:
                clients = [
                    asyncio.ensure_future(
                        self._local_client(service, adapter, member)
                    )
                    for member in members
                ]
                await asyncio.gather(service.run(), *clients)

            asyncio.run(drive())
            killed = (
                service.kill_after_events is not None
                and service.events_ingested >= service.kill_after_events
            )
            if killed:
                killed_shards.append(spec.index)
                results.append(None)
                alerts.fire("shard-death", shard=spec.index,
                            lo=spec.lo, hi=spec.hi, last_tick=None)
                continue
            results.append(
                ShardResult(
                    spec=spec,
                    log_jsonl=log.to_jsonl(),
                    belief=service.belief,
                    digest=service.belief.digest(),
                    tick=service.tick,
                    events=service.events_ingested,
                    counters={},
                    tick_walls=list(policy.tick_walls),
                    resumed=state["resumed"],
                )
            )
        wall = time.perf_counter() - t0
        return self._finalize(
            fleet, key, arms, classes, states, results, alerts,
            killed_shards, stats={"wall_seconds": wall},
            metrics_text=telemetry.render_prometheus(
                dict(telemetry.active().counters)
                if telemetry.active() is not None
                else {}
            ),
        )

    async def _local_client(
        self,
        service: DetectionService,
        adapter: FleetAdapter,
        spec: DeviceSpec,
    ) -> None:
        while True:
            dispatch = await service.request_plan(
                spec.device_id, spec.index
            )
            if dispatch is None:
                return
            result = adapter.execute(spec, dispatch)
            while True:
                try:
                    await service.submit_result(result)
                    break
                except RetryAfter as exc:
                    for _ in range(exc.retry_after):
                        await asyncio.sleep(0)

    # -- process mode ---------------------------------------------------
    def _run_process(
        self,
        fleet: Sequence[DeviceSpec],
        key: str,
        arms: Sequence[ArmSpec],
        adapter: FleetAdapter,
        classes: Sequence[str],
        states: List[dict],
        alerts: AlertHub,
        kill_shard: Optional[int],
        kill_after_events: Optional[int],
        heartbeat_interval: float,
        stale_after: float,
        metrics_port: Optional[int],
        metrics_sink: Optional[List[MetricsServer]],
    ) -> DistributedOutcome:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise RuntimeError(
                "distributed mode=process needs the fork start method; "
                "use mode='local' on this platform"
            ) from exc
        handles: List[_ShardHandle] = []
        for state in states:
            spec: ShardSpec = state["spec"]
            payload = self._worker_payload(
                state,
                arms,
                kill_after_events if kill_shard == spec.index else None,
                heartbeat_interval,
            )
            parent_sock, child_sock = socket.socketpair()
            process = ctx.Process(
                target=_shard_worker_main,
                args=(child_sock, payload),
                name=f"repro-shard-{spec.index}",
                daemon=True,
            )
            process.start()
            child_sock.close()
            handles.append(
                _ShardHandle(spec, FrameConn(parent_sock), process)
            )
        router = ShardRouter(
            handles, alerts, stale_after=stale_after,
            check_interval=min(stale_after / 4, 0.2),
        )
        metrics_server: Optional[MetricsServer] = None
        if metrics_port is not None:
            metrics_server = MetricsServer(
                router.metrics_text, port=metrics_port
            ).start()
            if metrics_sink is not None:
                metrics_sink.append(metrics_server)
        active_members = [
            member
            for state in states
            for member in self._active_members(fleet, state, arms)
        ]
        stats: Dict[str, float] = {}

        async def drive() -> None:
            router.start()
            t0 = time.perf_counter()
            clients = [
                asyncio.ensure_future(
                    self._remote_client(router, adapter, member)
                )
                for member in active_members
            ]
            await asyncio.gather(*clients)
            stats["clients_wall_seconds"] = time.perf_counter() - t0
            t1 = time.perf_counter()
            await router.wait_done()
            stats["drain_wall_seconds"] = time.perf_counter() - t1
            stats["wall_seconds"] = time.perf_counter() - t0
            await router.close()

        try:
            asyncio.run(drive())
        finally:
            for handle in handles:
                if handle.process is not None:
                    handle.process.join(timeout=10)
        stats["heartbeats"] = float(
            sum(handle.heartbeat_count for handle in handles)
        )
        results: List[Optional[ShardResult]] = []
        killed_shards: List[int] = []
        parent = telemetry.active()
        for handle, state in zip(handles, states):
            frame = handle.done_frame
            if frame is None:
                killed_shards.append(handle.spec.index)
                results.append(None)
                continue
            counters = dict(frame.get("counters", {}))
            if parent is not None:
                parent.merge_counters(counters)
            results.append(
                ShardResult(
                    spec=handle.spec,
                    log_jsonl=frame["log"],
                    belief=FleetBelief.from_snapshot(frame["belief"]),
                    digest=frame["digest"],
                    tick=int(frame["tick"]),
                    events=int(frame["events"]),
                    counters=counters,
                    tick_walls=[float(x) for x in frame["tick_walls"]],
                    resumed=state["resumed"],
                )
            )
        # Snapshot /metrics after the worker counter merge so the
        # outcome (and any lingering endpoint) shows fleet totals.
        metrics_text = router.metrics_text()
        if metrics_server is not None and metrics_sink is None:
            metrics_server.stop()
        return self._finalize(
            fleet, key, arms, classes, states, results, alerts,
            killed_shards, stats=stats, metrics_text=metrics_text,
        )

    def _active_members(
        self,
        fleet: Sequence[DeviceSpec],
        state: dict,
        arms: Sequence[ArmSpec],
    ) -> List[DeviceSpec]:
        """A shard's devices that still need a client (not done under
        the shard's — possibly resumed — belief), in device order."""
        spec: ShardSpec = state["spec"]
        belief: FleetBelief = state["belief"]
        by_index = {member.index: member for member in fleet}
        return [
            by_index[index]
            for index in range(spec.lo, spec.hi)
            if not belief.device_done(by_index[index].device_id, arms)
        ]

    async def _remote_client(
        self,
        router: ShardRouter,
        adapter: FleetAdapter,
        spec: DeviceSpec,
    ) -> None:
        while True:
            dispatch = await router.request_plan(
                spec.device_id, spec.index
            )
            if dispatch is None:
                return
            result = adapter.execute(spec, dispatch)
            while True:
                try:
                    await router.submit_result(result)
                    break
                except RetryAfter:
                    await asyncio.sleep(0)

    # -- merge + report -------------------------------------------------
    def _finalize(
        self,
        fleet: Sequence[DeviceSpec],
        key: str,
        arms: Sequence[ArmSpec],
        classes: Sequence[str],
        states: List[dict],
        results: List[Optional[ShardResult]],
        alerts: AlertHub,
        killed_shards: List[int],
        stats: Dict[str, float],
        metrics_text: str,
    ) -> DistributedOutcome:
        resumed_shards = [
            state["spec"].index for state in states if state["resumed"]
        ]
        complete = [result for result in results if result is not None]
        merged = report = None
        merged_digest = fold_digest = None
        if not killed_shards and complete:
            merged = FleetBelief.merge(
                [result.belief for result in complete]
            )
            merged_digest = merged.digest()
            if not resumed_shards:
                # Merge-exactness referee: a single process folding the
                # concatenated (shard, seq) event stream must hold the
                # identical state.  Only meaningful when every shard
                # logged from tick 0 — a resumed shard's log starts at
                # its checkpoint, so the fold would be partial by
                # construction, not divergent.
                records: List[dict] = []
                for result in complete:
                    records.extend(
                        json.loads(line)
                        for line in result.log_jsonl.splitlines()
                        if line.strip()
                    )
                fold = fold_event_stream(
                    fleet, classes, self.session.scheduler, arms, records
                )
                fold_digest = fold.digest()
                if fold_digest != merged_digest:
                    alerts.fire(
                        "belief-divergence",
                        merged=merged_digest,
                        folded=fold_digest,
                    )
            report = ScheduleReport.from_state(
                self.session.unit,
                self.session.scheduler.policy,
                self.session.scheduler.policy_seed,
                fleet,
                merged,
                ticks=sum(result.tick for result in complete),
                events=sum(result.events for result in complete),
            )
        all_walls = [
            wall for result in complete for wall in result.tick_walls
        ]
        if all_walls:
            ordered = sorted(all_walls)
            stats["p99_tick_wall_seconds"] = ordered[
                min(len(ordered) - 1, int(0.99 * len(ordered)))
            ]
        total_events = sum(result.events for result in complete)
        wall = stats.get("wall_seconds")
        if wall:
            stats["events_per_second"] = total_events / wall
        return DistributedOutcome(
            session_key=key,
            fleet=list(fleet),
            shards=results,
            report=report,
            belief=merged,
            merged_digest=merged_digest,
            fold_digest=fold_digest,
            alerts=list(alerts.alerts),
            metrics_text=metrics_text,
            killed_shards=killed_shards,
            resumed_shards=resumed_shards,
            stats=stats,
        )
