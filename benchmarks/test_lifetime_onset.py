"""Extension — fault-onset timeline and detection latency.

Supports the paper's Takeaway #1 quantitatively: the reaction-diffusion
model front-loads degradation, so margins erode fast early in life and
violations can onset well before the 10-year analysis point; once a
fault manifests, detection latency is set by the test schedule — per-
second embedded tests catch in seconds what a quarterly fleet scan
catches in weeks.
"""

from repro.core.config import AgingAnalysisConfig
from repro.core.lifetime import SCHEDULES, LifetimeSimulator

YEARS = (0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12)


def test_lifetime_onset_and_detection_latency(ctx, benchmark, recorder):
    unit = ctx.alu
    simulator = LifetimeSimulator(
        unit.netlist,
        unit.sp_profile,
        config=AgingAnalysisConfig(
            clock_margin=0.03, max_paths_per_endpoint=50
        ),
    )
    report = simulator.sweep(YEARS)

    rows = ["age(y) | WNS(ps) | violating paths | new pairs"]
    for age in YEARS:
        new = [o for o in report.onsets if o.years == age]
        rows.append(
            f"{age:6.1f} | {report.wns_by_year[age]*1000:7.1f} | "
            f"{report.violations_by_year[age]:15d} | "
            + (", ".join(f"{o.start}~>{o.end}" for o in new) or "-")
        )
    rows.append("")
    rows.append("detection latency after onset (suite detects on 1st run):")
    for name, seconds in report.detection_wall_clock(1).items():
        rows.append(f"  {name:20s} {seconds:14.1f} s")
        recorder.sample(
            "lifetime_onset", "detection_latency", seconds, "seconds",
            schedule=name,
        )
    recorder.sample(
        "lifetime_onset", "first_onset", report.first_onset_years,
        "years", unit="alu", bigger_is_better=True,
    )
    recorder.sample(
        "lifetime_onset", "violations_at_10y",
        report.violations_by_year[10], "paths", unit="alu",
    )
    recorder.table("lifetime_onset", "\n".join(rows))

    # Degradation is front-loaded: WNS erodes monotonically with age...
    wns = [report.wns_by_year[y] for y in YEARS]
    assert all(a >= b - 1e-12 for a, b in zip(wns, wns[1:]))
    # ...and the first year's erosion dominates the last year's.
    early = report.wns_by_year[YEARS[0]] - report.wns_by_year[1]
    late = report.wns_by_year[10] - report.wns_by_year[12]
    assert early >= 0 and late >= 0
    # Violations onset strictly before the 10-year analysis point.
    assert report.first_onset_years is not None
    assert report.first_onset_years < 10
    # Frequent testing wins by orders of magnitude.
    latency = report.detection_wall_clock(1)
    assert latency["per-second"] * 1e5 < latency["quarterly (Alibaba)"]

    result = benchmark(simulator.sweep, (1, 10))
    assert result is not None
