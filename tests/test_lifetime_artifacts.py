"""Tests for the lifetime simulator and artifact exporters."""

import json

import pytest

from repro.aging.corners import TYPICAL_CORNER
from repro.core.artifacts import export_failure_models, export_suite_artifacts
from repro.core.config import AgingAnalysisConfig
from repro.core.example import PAPER_TABLE1_SP, build_paper_adder
from repro.core.lifetime import SCHEDULES, LifetimeSimulator
from repro.integration.library_gen import AgingLibrary
from repro.lifting.instrument import make_failing_netlist
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.lifting.testcase import TestCase, TestInstruction
from repro.netlist.parser import parse_verilog
from repro.sim.probes import SPProfile


@pytest.fixture
def adder_profile(paper_adder):
    sp = {}
    for inst_name, value in PAPER_TABLE1_SP.items():
        sp[paper_adder.instances[inst_name].output_net.name] = value
    for net in paper_adder.nets.values():
        sp.setdefault(net.name, 0.5)
    return SPProfile(paper_adder.name, sp, 1000)


class TestLifetimeSimulator:
    def test_wns_erodes_monotonically(self, paper_adder, adder_profile):
        simulator = LifetimeSimulator(
            paper_adder,
            adder_profile,
            config=AgingAnalysisConfig(clock_margin=0.042),
        )
        # Force the typical corner via the config's STA (the paper
        # adder's numbers assume no derates) — use a custom sweep.
        simulator._base_corner = TYPICAL_CORNER
        report = simulator.sweep([1, 3, 5, 10])
        wns = [report.wns_by_year[y] for y in (1, 3, 5, 10)]
        assert all(a >= b - 1e-12 for a, b in zip(wns, wns[1:]))

    def test_front_loading(self, paper_adder, adder_profile):
        simulator = LifetimeSimulator(
            paper_adder,
            adder_profile,
            config=AgingAnalysisConfig(clock_margin=0.042),
        )
        report = simulator.sweep([0.5, 1, 5, 10])
        early = report.wns_by_year[0.5] - report.wns_by_year[1]
        late = report.wns_by_year[5] - report.wns_by_year[10]
        # Half a year early in life erodes more than five years later.
        assert early > late / 10

    def test_onsets_recorded_once(self, paper_adder, adder_profile):
        simulator = LifetimeSimulator(
            paper_adder,
            adder_profile,
            config=AgingAnalysisConfig(clock_margin=0.01),
        )
        report = simulator.sweep([1, 2, 10, 12])
        pairs = [(o.start, o.end) for o in report.onsets]
        assert len(pairs) == len(set(pairs))

    def test_schedule_latency_ordering(self, paper_adder, adder_profile):
        simulator = LifetimeSimulator(paper_adder, adder_profile)
        report = simulator.sweep([10])
        latency = report.detection_wall_clock(1)
        assert set(latency) == set(SCHEDULES)
        assert latency["per-second"] < latency["hourly"] < latency[
            "quarterly (Alibaba)"
        ]

    def test_missed_runs_add_full_periods(self, paper_adder, adder_profile):
        simulator = LifetimeSimulator(paper_adder, adder_profile)
        report = simulator.sweep([10])
        one = report.detection_wall_clock(1)["hourly"]
        three = report.detection_wall_clock(3)["hourly"]
        assert three == pytest.approx(one + 2 * SCHEDULES["hourly"])


class TestArtifactExport:
    def _failing(self, paper_adder):
        models = [
            FailureModel("d4", "d10", ViolationKind.SETUP, CMode.ZERO),
            FailureModel("d4", "d10", ViolationKind.SETUP, CMode.ONE),
            FailureModel("d1", "d9", ViolationKind.HOLD, CMode.RANDOM),
        ]
        return [make_failing_netlist(paper_adder, m) for m in models]

    def test_export_writes_verilog_and_index(self, paper_adder, tmp_path):
        failing = self._failing(paper_adder)
        index = export_failure_models(failing, str(tmp_path), unit="adder")
        assert (tmp_path / "index.json").exists()
        data = json.loads((tmp_path / "index.json").read_text())
        assert len(data["models"]) == 3
        for entry in data["models"]:
            assert (tmp_path / entry["file"]).exists()
            assert entry["kind"] in ("setup", "hold")

    def test_exported_verilog_parses_back(self, paper_adder, tmp_path):
        failing = self._failing(paper_adder)
        export_failure_models(failing, str(tmp_path), unit="adder")
        for model in failing:
            text = (tmp_path / f"{model.model.label}.v").read_text()
            parsed = parse_verilog(text, library=paper_adder.library)
            assert parsed.stats() == model.netlist.stats()

    def test_export_suite_artifacts(self, tmp_path):
        from repro.cpu.alu_design import AluOp, alu_reference

        case = TestCase(
            name="t",
            unit="alu",
            model=FailureModel("x", "y", ViolationKind.SETUP, CMode.ONE),
        )
        case.instructions.append(
            TestInstruction(
                "add", {"rs1": 1, "rs2": 2},
                expected=alu_reference(int(AluOp.ADD), 1, 2),
            )
        )
        library = AgingLibrary(name="demo", test_cases=[case])
        files = export_suite_artifacts(library, str(tmp_path))
        assert sorted(files) == ["demo.c", "demo.s", "demo_routine.s"]
        for name in files:
            assert (tmp_path / name).read_text()
