"""Gate-level ALU of the repo's CV32E40P-style core.

A two-stage pipelined arithmetic-logic unit: operands and opcode are
registered in stage 1; the result is computed and registered in stage 2,
mirroring the pipelined structure of the paper's running example (and
giving Aging Analysis real flop-to-flop paths to time).

Operations cover the RV32I register-register arithmetic set.  The
opcode encoding is the module's microarchitectural contract, shared
with the ISA simulator, the co-simulation harness, and the ALU
instruction mapper.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

from ..netlist.cells import CellLibrary, VEGA28
from ..netlist.netlist import Netlist
from ..rtl.signal import Module, mux_by_index
from ..rtl.synth import synthesize


class AluOp(IntEnum):
    """Opcode encoding of the ``op`` input port."""

    ADD = 0
    SUB = 1
    SLL = 2
    SLT = 3
    SLTU = 4
    XOR = 5
    SRL = 6
    SRA = 7
    OR = 8
    AND = 9


#: All legal opcode values, for ``assume property`` restrictions.
VALID_ALU_OPS = tuple(int(op) for op in AluOp)

ALU_LATENCY = 2  # cycles from operand capture to visible result


#: Lane configurations of the SIMD adder: mode 0 = one 32-bit lane,
#: mode 1 = two 16-bit halves, mode 2 = four 8-bit bytes.  Mirrors the
#: CV32E40P's PULP SIMD extension, which standard RV32I code never uses
#: — making ``mode`` an *assume property* constant during Error Lifting
#: and its flops a natural source of provably-unrealizable violations.
SIMD_MODES = (0, 1, 2)


def _lane_adder(m, a, b, subtract, mode):
    """Ripple adder with SIMD carry breaks at byte/half boundaries."""
    width = a.width
    b_eff = b ^ subtract.repeat(width)
    half_break = mode.eq(1) | mode.eq(2)
    byte_break = mode.eq(2)
    carry = subtract.bits[0]
    out = []
    for i in range(width):
        if i and i % (width // 4) == 0:
            brk = half_break if i == width // 2 else byte_break
            # A broken carry chain restarts the lane: carry-in reverts
            # to the subtract borrow seed.
            carry = m.b_mux(brk.bits[0], carry, subtract.bits[0])
        axb = m.b_xor(a.bits[i], b_eff.bits[i])
        out.append(m.b_xor(axb, carry))
        carry = m.b_or(
            m.b_and(a.bits[i], b_eff.bits[i]), m.b_and(axb, carry)
        )
    from ..rtl.signal import Signal

    return Signal(m, tuple(out))


def build_alu_module(width: int = 32) -> Module:
    """The ALU as an RTL module (pre-synthesis)."""
    m = Module("alu")
    op = m.input("op", 4)
    a = m.input("a", width)
    b = m.input("b", width)
    mode = m.input("mode", 2)
    # Design-for-test hook: BIST pattern injection at the datapath
    # head.  Mission-mode software keeps dft low, so its flop never
    # toggles — yet its fanout sits on the most critical (and, being
    # parked, most aged) paths.  These become the aging-prone pairs
    # that Error Lifting *proves* harmless (the paper's UR outcomes).
    dft = m.input("dft", 1)

    op_q = m.register("op_q", 4)
    a_q = m.register("a_q", width)
    b_q = m.register("b_q", width)
    mode_q = m.register("mode_q", 2)
    dft_q = m.register("dft_q", 1)
    res_q = m.register("res_q", width)
    op_q.next = op
    a_q.next = a
    b_q.next = b
    mode_q.next = mode
    dft_q.next = dft

    pattern_a = m.const(0xA5A5A5A5 & ((1 << width) - 1), width)
    pattern_b = m.const(0x5A5A5A5A & ((1 << width) - 1), width)
    av = a_q.q ^ (pattern_a & dft_q.q.repeat(width))
    bv = b_q.q ^ (pattern_b & dft_q.q.repeat(width))
    shamt_bits = max(1, (width - 1).bit_length())
    shamt = bv[:shamt_bits]
    zero = m.const(0, 1)
    one = m.const(1, 1)

    results = [
        _lane_adder(m, av, bv, zero, mode_q.q),   # ADD
        _lane_adder(m, av, bv, one, mode_q.q),    # SUB
        av.shl(shamt),                            # SLL
        av.slt(bv).zext(width),                   # SLT
        av.ult(bv).zext(width),                   # SLTU
        av ^ bv,                                  # XOR
        av.shr(shamt),                            # SRL
        av.sra(shamt),                            # SRA
        av | bv,                                  # OR
        av & bv,                                  # AND
    ]
    res_q.next = mux_by_index(op_q.q, results)
    m.output("result", res_q.q)
    return m


def build_alu(
    width: int = 32, library: Optional[CellLibrary] = None
) -> Netlist:
    """Synthesized ALU netlist on the vega28 library.

    The paper's ALU targets 167 MHz in a 28 nm node; our derived period
    comes out of :meth:`repro.sta.AgingAwareSta.derive_period` instead,
    since the absolute numbers depend on the synthetic library.
    """
    return synthesize(build_alu_module(width), library or VEGA28)


def alu_reference(op: int, a: int, b: int, width: int = 32) -> int:
    """Golden software model of the ALU (used by the ISA simulator)."""
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    shamt = b & (width - 1)

    def signed(x: int) -> int:
        return x - (1 << width) if x >> (width - 1) else x

    operation = AluOp(op)
    if operation is AluOp.ADD:
        return (a + b) & mask
    if operation is AluOp.SUB:
        return (a - b) & mask
    if operation is AluOp.SLL:
        return (a << shamt) & mask
    if operation is AluOp.SLT:
        return int(signed(a) < signed(b))
    if operation is AluOp.SLTU:
        return int(a < b)
    if operation is AluOp.XOR:
        return a ^ b
    if operation is AluOp.SRL:
        return a >> shamt
    if operation is AluOp.SRA:
        return (signed(a) >> shamt) & mask
    if operation is AluOp.OR:
        return a | b
    return a & b  # AND
