"""Vega workflow orchestration: configuration, phases, reports."""

from .config import (
    AgingAnalysisConfig,
    ErrorLiftingConfig,
    TestIntegrationConfig,
    VegaConfig,
)
from .artifacts import export_failure_models, export_suite_artifacts
from .example import build_paper_adder, make_paper_library
from .lifetime import LifetimeReport, LifetimeSimulator, SCHEDULES

__all__ = [
    "AgingAnalysisConfig",
    "ErrorLiftingConfig",
    "TestIntegrationConfig",
    "VegaConfig",
    "build_paper_adder",
    "make_paper_library",
    "export_failure_models",
    "export_suite_artifacts",
    "LifetimeReport",
    "LifetimeSimulator",
    "SCHEDULES",
]
