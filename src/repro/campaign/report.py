"""The ``CampaignReport`` artifact: fleet metrics, serialized.

A campaign's result is a pure function of the sampled fleet and the
per-device suite outcomes — no wall-clock times or worker counts enter
it, so the same config produces a byte-identical JSON artifact whether
the fleet ran serially, across four workers, or resumed from shard
checkpoints.  The engine publishes the JSON through the
content-addressed artifact cache; :meth:`CampaignReport.to_markdown`
renders the human view behind ``repro campaign report``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import CampaignConfig
    from .engine import DeviceResult

#: Device rows rendered in the markdown view before eliding.
_MARKDOWN_DEVICE_CAP = 32


@dataclass
class CampaignReport:
    """Aggregated fleet metrics of one campaign run."""

    unit: str
    seed: int
    devices: int
    shard_size: int
    suites: List[str] = field(default_factory=list)
    base_onset_years: float = 0.0
    mission_years: float = 0.0
    faulty_devices: int = 0
    healthy_devices: int = 0
    detected_devices: int = 0
    #: Faulty devices no suite detected — the fleet's SDC escape count.
    escapes: int = 0
    escape_rate_pct: float = 0.0
    #: Healthy devices a suite flagged anyway (should stay 0).
    false_positives: int = 0
    #: suite -> c_mode -> {"total", "detected", "stalled"}.
    coverage: Dict[str, Dict[str, Dict[str, int]]] = field(
        default_factory=dict
    )
    #: corner name -> {"devices", "faulty", "detected", "escapes"}.
    corners: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: suite -> {"detected", "mean_cycles", "min_cycles", "max_cycles"}.
    time_to_detection: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )
    #: One row per device, in fleet order.
    device_rows: List[dict] = field(default_factory=list)

    # -- construction --------------------------------------------------
    @classmethod
    def from_results(
        cls,
        unit: str,
        config: "CampaignConfig",
        results: Sequence["DeviceResult"],
        base_onset_years: float,
    ) -> "CampaignReport":
        """Aggregate per-device results (in fleet order)."""
        results = sorted(results, key=lambda r: r.index)
        faulty = [r for r in results if r.faulty]
        healthy = [r for r in results if not r.faulty]
        detected = [r for r in faulty if r.detected]
        escapes = len(faulty) - len(detected)

        coverage: Dict[str, Dict[str, Dict[str, int]]] = {}
        ttd: Dict[str, List[int]] = {suite: [] for suite in config.suites}
        for suite in config.suites:
            coverage[suite] = {}
        for result in faulty:
            mode = result.c_mode or "?"
            for outcome in result.outcomes:
                bucket = coverage[outcome.suite].setdefault(
                    mode, {"total": 0, "detected": 0, "stalled": 0}
                )
                bucket["total"] += 1
                if outcome.detected:
                    bucket["detected"] += 1
                    ttd[outcome.suite].append(outcome.cycles)
                if outcome.stalled:
                    bucket["stalled"] += 1

        corners: Dict[str, Dict[str, int]] = {}
        for result in results:
            stats = corners.setdefault(
                result.corner,
                {"devices": 0, "faulty": 0, "detected": 0, "escapes": 0},
            )
            stats["devices"] += 1
            if result.faulty:
                stats["faulty"] += 1
                if result.detected:
                    stats["detected"] += 1
                else:
                    stats["escapes"] += 1

        time_to_detection: Dict[str, Dict[str, float]] = {}
        for suite, cycles in ttd.items():
            if not cycles:
                time_to_detection[suite] = {"detected": 0}
                continue
            time_to_detection[suite] = {
                "detected": len(cycles),
                "mean_cycles": round(sum(cycles) / len(cycles), 3),
                "min_cycles": min(cycles),
                "max_cycles": max(cycles),
            }

        return cls(
            unit=unit,
            seed=config.seed,
            devices=len(results),
            shard_size=config.shard_size,
            suites=list(config.suites),
            base_onset_years=round(base_onset_years, 6),
            mission_years=config.mission_years,
            faulty_devices=len(faulty),
            healthy_devices=len(healthy),
            detected_devices=len(detected),
            escapes=escapes,
            escape_rate_pct=(
                round(100.0 * escapes / len(faulty), 3) if faulty else 0.0
            ),
            false_positives=sum(1 for r in healthy if r.detected),
            coverage=coverage,
            corners=corners,
            time_to_detection=time_to_detection,
            device_rows=[r.as_row() for r in results],
        )

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON: sorted keys, stable floats, no run metadata."""
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        return cls(**json.loads(text))

    # -- derived views -------------------------------------------------
    def suite_coverage_pct(self, suite: str) -> float:
        """Detection % of one suite across all faulty devices."""
        buckets = self.coverage.get(suite, {})
        total = sum(b["total"] for b in buckets.values())
        hit = sum(b["detected"] for b in buckets.values())
        return 100.0 * hit / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"campaign: {self.unit} fleet of {self.devices} "
            f"(seed {self.seed}, onset ~{self.base_onset_years:.2f}y, "
            f"mission {self.mission_years:.0f}y)",
            f"  faulty: {self.faulty_devices}  "
            f"detected: {self.detected_devices}  "
            f"escapes: {self.escapes} ({self.escape_rate_pct:.1f}%)  "
            f"false positives: {self.false_positives}",
        ]
        if self.suites:
            lines.append(
                "  coverage: "
                + "  ".join(
                    f"{suite} {self.suite_coverage_pct(suite):.1f}%"
                    for suite in self.suites
                )
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Full fleet report, suitable for dashboards and issues."""
        lines = [
            f"# Campaign report — `{self.unit}` fleet of {self.devices}",
            "",
            f"- seed: **{self.seed}**, base onset "
            f"**{self.base_onset_years:.2f}y**, mission window "
            f"**{self.mission_years:.0f}y**",
            f"- faulty devices: **{self.faulty_devices}** "
            f"({self.healthy_devices} healthy)",
            f"- detected: **{self.detected_devices}**, SDC escapes: "
            f"**{self.escapes}** ({self.escape_rate_pct:.1f}%)",
            f"- false positives on healthy devices: "
            f"**{self.false_positives}**",
            "",
        ]
        if self.coverage:
            lines += [
                "## Detection coverage",
                "",
                "| suite | C | detected | stalled | total | coverage |",
                "|---|---|---:|---:|---:|---:|",
            ]
            for suite in self.suites:
                for mode in sorted(self.coverage.get(suite, {})):
                    bucket = self.coverage[suite][mode]
                    pct = (
                        100.0 * bucket["detected"] / bucket["total"]
                        if bucket["total"]
                        else 0.0
                    )
                    lines.append(
                        f"| {suite} | {mode} | {bucket['detected']} "
                        f"| {bucket['stalled']} | {bucket['total']} "
                        f"| {pct:.1f}% |"
                    )
            lines.append("")
        if self.corners:
            lines += [
                "## Corners",
                "",
                "| corner | devices | faulty | detected | escapes |",
                "|---|---:|---:|---:|---:|",
            ]
            for corner in sorted(self.corners):
                stats = self.corners[corner]
                lines.append(
                    f"| {corner} | {stats['devices']} | {stats['faulty']} "
                    f"| {stats['detected']} | {stats['escapes']} |"
                )
            lines.append("")
        if self.time_to_detection:
            lines += [
                "## Time to detection (suite cycles)",
                "",
                "| suite | detections | mean | min | max |",
                "|---|---:|---:|---:|---:|",
            ]
            for suite in self.suites:
                stats = self.time_to_detection.get(suite, {"detected": 0})
                if stats.get("detected"):
                    lines.append(
                        f"| {suite} | {stats['detected']} "
                        f"| {stats['mean_cycles']:.1f} "
                        f"| {stats['min_cycles']} "
                        f"| {stats['max_cycles']} |"
                    )
                else:
                    lines.append(f"| {suite} | 0 | - | - | - |")
            lines.append("")
        if self.device_rows:
            lines += [
                "## Devices",
                "",
                "| device | corner | onset (y) | model | detected by |",
                "|---|---|---:|---|---|",
            ]
            for row in self.device_rows[:_MARKDOWN_DEVICE_CAP]:
                detected_by = ", ".join(
                    o["suite"]
                    for o in row["outcomes"]
                    if o["detected"]
                )
                lines.append(
                    f"| {row['device']} | {row['corner']} "
                    f"| {row['onset_years']:.2f} "
                    f"| {row['model'] or '(healthy)'} "
                    f"| {detected_by or '-'} |"
                )
            elided = len(self.device_rows) - _MARKDOWN_DEVICE_CAP
            if elided > 0:
                lines.append(f"| … | | | | ({elided} more device(s)) |")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"
