"""Logical models for timing violations (§3.3.1).

Formal tools reason in the logical domain only, so each timing violation
is lowered to a logical misbehaviour at the capture flop Y of the
violated path X ⇝ Y:

* **Setup** (Eq. 2) — Y may sample a wrong constant C whenever the
  launching value *changed* this cycle::

      Y(t+1) = Y_original(t+1)  if X(t) == X(t-1)
               C                otherwise

* **Hold** (Eq. 3) — Y may sample C whenever the launching value is
  *about to change*::

      Y(t+1) = Y_original(t+1)  if X(t) == X(t+1)
               C                otherwise

* **Self-loop** — a path from a flop to itself leaves Y metastable, so
  it is modelled as always sampling C.

C is held to a constant (0 or 1) per verification round to keep the
search space small; a third mode lets C float freely each cycle
("random") for failing-netlist simulation.  The §3.3.4 mitigation adds
edge-qualified variants that trigger only on a rising or falling X,
removing dependence on the formal tool's assumed reset values.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ViolationKind(Enum):
    SETUP = "setup"
    HOLD = "hold"


class CMode(Enum):
    """How the wrongly-sampled value C behaves."""

    ZERO = "0"
    ONE = "1"
    RANDOM = "R"  # free input pin, driven per-cycle by the simulator


class EdgeQualifier(Enum):
    """Which transition of X activates the failure (§3.3.4).

    ``ANY`` is the base Eq. 2/3 model; ``RISING``/``FALLING`` are the
    mitigation variants that avoid initial-value dependence.
    """

    ANY = "any"
    RISING = "rising"
    FALLING = "falling"


@dataclass(frozen=True)
class FailureModel:
    """A fully-specified failure model for one violating path.

    Attributes:
        start: Launch DFF instance name (X).
        end: Capture DFF instance name (Y).
        kind: Setup or hold violation.
        c_mode: Behaviour of the wrong value C.
        edge: Activation qualifier.
    """

    start: str
    end: str
    kind: ViolationKind
    c_mode: CMode
    edge: EdgeQualifier = EdgeQualifier.ANY

    @property
    def is_self_loop(self) -> bool:
        return self.start == self.end

    @property
    def label(self) -> str:
        parts = [
            self.kind.value,
            self.start,
            "to",
            self.end,
            f"c{self.c_mode.value}",
        ]
        if self.edge is not EdgeQualifier.ANY:
            parts.append(self.edge.value)
        return "_".join(parts)

    def variants(self, mitigation: bool) -> list["FailureModel"]:
        """The model set Vega verifies for this path and C.

        Without mitigation: just this (edge=ANY) model.  With it: the
        rising and falling edge-qualified versions (§3.3.4), doubling
        the per-pair test count from ≤2 to ≤4 across both C values.
        """
        if not mitigation or self.is_self_loop:
            return [self]
        return [
            FailureModel(self.start, self.end, self.kind, self.c_mode, edge)
            for edge in (EdgeQualifier.RISING, EdgeQualifier.FALLING)
        ]
