"""Clock-distribution-network model with aging-induced phase shift.

The paper's Aging-Aware STA "analyzes the effect of aging on the clock
distribution network ... which could potentially lead to hold
violations" (§3.2.2), and identifies clock gating as a primary cause of
uneven aging across the network (§2.3.1): a gated-off subtree parks its
buffers at a constant level, putting them under static BTI stress, while
free-running branches toggle at SP ≈ 0.5.

This module builds a balanced buffer tree over a module's flip-flops.
Fresh, the tree is skew-balanced (equal insertion delay to every sink).
Aged, each buffer's delay is scaled by the aging library according to
the SP implied by its subtree's gating duty — so gating asymmetry turns
into launch/capture phase shift, exactly the mechanism behind the
paper's three FPU hold violations (Table 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..aging.charlib import AgingTimingLibrary
from ..netlist.netlist import Netlist


@dataclass
class ClockBuffer:
    """One buffer of the tree; ``level`` 0 is the root driver."""

    name: str
    level: int
    gating_duty: float = 0.0  # fraction of time the clock is held off

    @property
    def signal_probability(self) -> float:
        """SP of the buffer's output net.

        A free-running clock spends half its time high (SP 0.5); while
        gated, the net is parked low, so gating linearly pulls SP toward
        zero — and toward maximal pull-up BTI stress.
        """
        return 0.5 * (1.0 - self.gating_duty)


@dataclass
class ClockTree:
    """A balanced binary clock tree over a netlist's DFF sinks."""

    netlist_name: str
    buffers: List[ClockBuffer] = field(default_factory=list)
    # sink (DFF instance name) -> list of buffer indices root..leaf
    sink_paths: Dict[str, List[int]] = field(default_factory=dict)
    buffer_tmin: float = 0.016
    buffer_tmax: float = 0.032

    @classmethod
    def build(
        cls,
        netlist: Netlist,
        fanout_per_leaf: int = 8,
        gated_sinks: Optional[Mapping[str, float]] = None,
        chain_length: int = 1,
    ) -> "ClockTree":
        """Synthesize a balanced tree for every DFF in ``netlist``.

        Args:
            fanout_per_leaf: DFFs served by one leaf buffer group.
            gated_sinks: DFF name -> gating duty in [0, 1].  A buffer's
                duty is the mean of its sinks' duties.  Sinks are
                *clustered by duty* before leaf assignment — clock-tree
                synthesis places an ICG at a subtree root, so a gated
                register bank shares one branch rather than being
                scattered across the network.
            chain_length: Buffers per tree level (drive-strength
                repeaters).  Real 28 nm clock networks have several
                hundred picoseconds to nanoseconds of insertion delay;
                longer chains model that, and proportionally amplify
                aging-induced phase shift between branches.
        """
        buf_cell = netlist.library["CLKBUF"] if "CLKBUF" in netlist.library else None
        tmin = buf_cell.tmin if buf_cell else 0.016
        tmax = buf_cell.tmax if buf_cell else 0.032
        tree = cls(netlist_name=netlist.name, buffer_tmin=tmin, buffer_tmax=tmax)
        gated = dict(gated_sinks or {})
        # Cluster: gated banks under their own branches, and never mix
        # duty groups within one leaf — an ICG drives a whole subtree,
        # so a leaf's sinks share a gating domain.
        sinks = sorted(
            (d.name for d in netlist.dffs()),
            key=lambda name: (gated.get(name, 0.0), name),
        )
        if not sinks:
            return tree
        leaves = []
        group: List[str] = []
        group_duty: Optional[float] = None
        for sink in sinks:
            duty = gated.get(sink, 0.0)
            if group and (duty != group_duty or len(group) == fanout_per_leaf):
                leaves.append(group)
                group = []
            group_duty = duty
            group.append(sink)
        if group:
            leaves.append(group)
        depth = max(1, math.ceil(math.log2(len(leaves))) if len(leaves) > 1 else 1)

        # Index tree nodes; each (level, index) node is a repeater
        # chain of `chain_length` buffers.
        def buffers_at(level: int, index: int) -> Tuple[int, ...]:
            key = (level, index)
            ids = tree._index.get(key)
            if ids is None:
                ids = tuple(
                    range(len(tree.buffers), len(tree.buffers) + chain_length)
                )
                for position in range(chain_length):
                    tree.buffers.append(
                        ClockBuffer(
                            name=f"cb_L{level}_{index}_{position}",
                            level=level,
                        )
                    )
                tree._index[key] = ids
            return ids

        tree._index = {}
        root = buffers_at(0, 0)
        for leaf_number, leaf_sinks in enumerate(leaves):
            path = list(root)
            for level in range(1, depth + 1):
                index = leaf_number >> (depth - level)
                path.extend(buffers_at(level, index))
            for sink in leaf_sinks:
                tree.sink_paths[sink] = path
        del tree._index

        # Propagate gating duties up the tree (mean over served sinks).
        duty_sum: Dict[int, float] = {}
        sink_count: Dict[int, int] = {}
        for sink, path in tree.sink_paths.items():
            duty = gated.get(sink, 0.0)
            for idx in path:
                duty_sum[idx] = duty_sum.get(idx, 0.0) + duty
                sink_count[idx] = sink_count.get(idx, 0) + 1
        for idx, buf in enumerate(tree.buffers):
            if sink_count.get(idx):
                buf.gating_duty = duty_sum[idx] / sink_count[idx]
        return tree

    @property
    def depth(self) -> int:
        if not self.sink_paths:
            return 0
        return max(len(p) for p in self.sink_paths.values())

    def fresh_arrivals(self) -> Dict[str, float]:
        """Per-sink clock insertion delay with un-aged buffers.

        Launch and capture flops share the tree, so common-path
        pessimism removal makes a single arrival per sink the right
        model: early/late spread on the shared trunk must not count as
        skew.  A balanced fresh tree therefore shows zero skew.
        """
        return {
            sink: len(path) * self.buffer_tmax
            for sink, path in self.sink_paths.items()
        }

    def aged_arrivals(self, timing_lib: AgingTimingLibrary) -> Dict[str, float]:
        """Per-sink insertion delay after aging each buffer.

        Each buffer's delay is scaled by the aging library's CLKBUF
        table at the buffer's gating-dependent SP; asymmetric gating
        turns into real launch/capture phase shift.
        """
        factor = [
            timing_lib.delay_factor("CLKBUF", buf.signal_probability)
            for buf in self.buffers
        ]
        return {
            sink: sum(self.buffer_tmax * factor[i] for i in path)
            for sink, path in self.sink_paths.items()
        }

    def max_phase_shift(self, timing_lib: AgingTimingLibrary) -> float:
        """Largest aged leaf-to-leaf skew (ns) — the §3.2.2 phase shift."""
        arrivals = self.aged_arrivals(timing_lib)
        if not arrivals:
            return 0.0
        return max(arrivals.values()) - min(arrivals.values())
