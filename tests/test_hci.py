"""Tests for the hot-carrier-injection aging model.

HCI damage accrues with switching *activity* (transition density),
opposite in character to BTI's static stress duty.  The properties
pinned here are the physics the rest of the stack leans on: more
stress ⇒ larger threshold shift, older ⇒ worse delays and slack, and
the HCI-aware characterization is never optimistic relative to the
BTI-only one.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging import (
    DEFAULT_HCI,
    HciParameters,
    cell_delta_vth_hci,
    delta_vth_hci,
    transition_density,
)
from repro.aging.bti import SECONDS_PER_YEAR
from repro.aging.charlib import AgingTimingLibrary
from repro.aging.corners import TYPICAL_CORNER, WORST_CORNER
from repro.campaign.fleet import assign_model, device_draw, sample_fleet
from repro.core.config import CampaignConfig
from repro.cpu.alu_design import build_alu
from repro.lifting.models import CMode, FailureModel, ViolationKind

MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
]


class TestTransitionDensity:
    def test_peaks_at_half(self):
        assert transition_density(0.5) == pytest.approx(0.5)

    def test_zero_at_extremes(self):
        assert transition_density(0.0) == 0.0
        assert transition_density(1.0) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            transition_density(1.5)

    @given(sp=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_symmetric(self, sp):
        assert transition_density(sp) == pytest.approx(
            transition_density(1.0 - sp)
        )


class TestDeltaVthHci:
    def test_zero_without_stress_or_activity(self):
        assert delta_vth_hci(0.0, 0.5, 105.0) == 0.0
        assert delta_vth_hci(SECONDS_PER_YEAR, 0.0, 105.0) == 0.0

    def test_magnitude_below_bti(self):
        # HCI is the secondary mechanism at these conditions: a
        # maximally active cell accrues millivolts, not tens of them.
        dvth = cell_delta_vth_hci(0.5, 10.0, 105.0)
        assert 1e-4 < dvth < 0.02

    @given(
        activity=st.floats(min_value=1e-3, max_value=1.0),
        years=st.floats(min_value=0.1, max_value=20.0),
        scale=st.floats(min_value=1.1, max_value=4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_activity_and_time(self, activity, years, scale):
        base = delta_vth_hci(years * SECONDS_PER_YEAR, activity, 105.0)
        more_active = delta_vth_hci(
            years * SECONDS_PER_YEAR, min(1.0, activity * scale), 105.0
        )
        older = delta_vth_hci(
            years * scale * SECONDS_PER_YEAR, activity, 105.0
        )
        assert more_active >= base
        assert older > base

    @given(temp=st.floats(min_value=25.0, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_hotter_is_worse(self, temp):
        cold = delta_vth_hci(SECONDS_PER_YEAR, 0.5, temp)
        hot = delta_vth_hci(SECONDS_PER_YEAR, 0.5, temp + 10.0)
        assert hot > cold

    def test_custom_params(self):
        strong = HciParameters(prefactor=DEFAULT_HCI.prefactor * 2)
        assert cell_delta_vth_hci(
            0.5, 10.0, 105.0, params=strong
        ) == pytest.approx(2.0 * cell_delta_vth_hci(0.5, 10.0, 105.0))


class TestHciCharacterization:
    @pytest.fixture(scope="class")
    def library(self):
        return build_alu().library

    def test_hci_never_optimistic(self, library):
        bti_only = AgingTimingLibrary.characterize(library)
        with_hci = AgingTimingLibrary.characterize(library, hci=DEFAULT_HCI)
        compared = 0
        strictly = 0
        for name, table in bti_only.tables.items():
            hci_table = with_hci.tables[name]
            for f_bti, f_hci in zip(table.factors, hci_table.factors):
                assert f_hci >= f_bti
                compared += 1
                if f_hci > f_bti:
                    strictly += 1
        assert compared > 0
        # Mid-SP grid points have nonzero transition density, so the
        # HCI term must actually bite somewhere.
        assert strictly > 0

    def test_older_is_worse(self, library):
        young = AgingTimingLibrary.characterize(
            library, lifetime_years=2.0, hci=DEFAULT_HCI
        )
        old = AgingTimingLibrary.characterize(
            library, lifetime_years=10.0, hci=DEFAULT_HCI
        )
        for name, table in young.tables.items():
            for f_young, f_old in zip(table.factors, old.tables[name].factors):
                assert f_old >= f_young

    def test_activity_scale_orders_corners(self, library):
        # The worst corner's hci_stress_scale > typical's, so its
        # characterized factors dominate at matched (sp, age).
        assert WORST_CORNER.hci_stress_scale > TYPICAL_CORNER.hci_stress_scale
        worst = AgingTimingLibrary.characterize(
            library, hci=DEFAULT_HCI,
            hci_activity_scale=WORST_CORNER.hci_stress_scale,
        )
        typical = AgingTimingLibrary.characterize(
            library, hci=DEFAULT_HCI,
            hci_activity_scale=TYPICAL_CORNER.hci_stress_scale,
        )
        for name, table in typical.tables.items():
            for f_typ, f_worst in zip(table.factors, worst.tables[name].factors):
                assert f_worst >= f_typ


class TestFleetMechanismDraw:
    def test_default_fleet_is_all_bti(self):
        config = CampaignConfig(devices=8, seed=3, base_onset_years=6.0)
        fleet = sample_fleet(config, MODELS, 6.0)
        assert all(spec.mechanism == "bti" for spec in fleet)

    def test_default_draw_matches_pre_hci_sampler(self):
        # hci_fraction = 0 must keep the historical draw sequence
        # byte-identical (the mechanism stream is gated off entirely).
        config = CampaignConfig(devices=8, seed=3, base_onset_years=6.0)
        base = sample_fleet(config, MODELS, 6.0)
        with_knob = sample_fleet(
            CampaignConfig(
                devices=8, seed=3, base_onset_years=6.0,
                hci_fraction=0.0, hci_onset_scale=0.5,
            ),
            MODELS,
            6.0,
        )
        assert base == with_knob

    def test_full_hci_fleet(self):
        config = CampaignConfig(
            devices=8, seed=3, base_onset_years=6.0, hci_fraction=1.0
        )
        fleet = sample_fleet(config, MODELS, 6.0)
        assert all(spec.mechanism == "hci" for spec in fleet)

    def test_hci_onset_scaling(self):
        bti_cfg = CampaignConfig(devices=8, seed=3, base_onset_years=6.0)
        hci_cfg = CampaignConfig(
            devices=8, seed=3, base_onset_years=6.0, hci_fraction=1.0
        )
        for index in range(8):
            _, corner_b, onset_b, mech_b = device_draw(bti_cfg, index, 6.0)
            _, corner_h, onset_h, mech_h = device_draw(hci_cfg, index, 6.0)
            assert corner_b.name == corner_h.name
            assert mech_b == "bti" and mech_h == "hci"
            expected = onset_b * (
                hci_cfg.hci_onset_scale / corner_h.hci_stress_scale
            )
            assert onset_h == pytest.approx(expected)


class TestAssignModelBoundary:
    """Mission-window boundary regression: onset == mission is faulty."""

    def _rng(self):
        import random

        return random.Random(0)

    def test_onset_at_mission_boundary_is_faulty(self):
        faulty, model = assign_model(self._rng(), MODELS, 10.0, 10.0)
        assert faulty is True
        assert model is MODELS[0]

    def test_onset_just_past_mission_is_healthy(self):
        faulty, model = assign_model(
            self._rng(), MODELS, math.nextafter(10.0, math.inf), 10.0
        )
        assert faulty is False
        assert model is None

    def test_no_models_means_never_faulty(self):
        faulty, model = assign_model(self._rng(), [], 1.0, 10.0)
        assert faulty is False
        assert model is None
