"""Graph-based static timing analysis with setup and hold checks.

This module is the repo's Innovus-timing substitute.  It propagates
earliest/latest arrival times through a levelized netlist, checks every
flip-flop's setup and hold constraints under on-chip-variation derates,
and enumerates the complete set of violating paths (bounded per
endpoint) so that Error Lifting can target each unique start/end pair.

Conventions:

* Launch clock uses the *late* arrival view for setup checks and the
  *early* view for hold checks; capture clock uses the opposite — the
  standard pessimistic pairing.
* Primary inputs launch at t=0 (they are register outputs of the
  enclosing design); primary outputs are unconstrained.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..aging.corners import OperatingCorner, WORST_CORNER
from ..netlist.netlist import Instance, Net, Netlist


@dataclass
class DelayModel:
    """Per-instance aged delays plus per-DFF clock arrivals.

    Attributes:
        delays: instance name -> (tmin, tmax) in ns, *before* corner
            derating (the STA applies the corner).
        clock_early: DFF instance name -> earliest clock arrival (ns).
        clock_late: DFF instance name -> latest clock arrival (ns).
        corner: OCV/PVT corner to analyze at.
    """

    delays: Dict[str, Tuple[float, float]]
    clock_early: Dict[str, float] = field(default_factory=dict)
    clock_late: Dict[str, float] = field(default_factory=dict)
    corner: OperatingCorner = WORST_CORNER

    @classmethod
    def fresh(
        cls, netlist: Netlist, corner: OperatingCorner = WORST_CORNER
    ) -> "DelayModel":
        """Un-aged delays straight from the cell library."""
        return cls(
            delays={
                inst.name: (inst.ctype.tmin, inst.ctype.tmax)
                for inst in netlist.instances.values()
            },
            corner=corner,
        )

    def tmax(self, inst: Instance) -> float:
        return self.corner.scale_max_delay(self.delays[inst.name][1])

    def tmin(self, inst: Instance) -> float:
        return self.corner.scale_min_delay(self.delays[inst.name][0])

    def clk_early(self, inst: Instance) -> float:
        return self.clock_early.get(inst.name, 0.0)

    def clk_late(self, inst: Instance) -> float:
        return self.clock_late.get(inst.name, 0.0)


@dataclass
class TimingViolation:
    """One violating signal-propagation path.

    ``start`` and ``end`` are instance names for DFF-to-DFF paths; the
    start may also be a primary-input net name.  ``cells`` lists the
    combinational instances along the path, source to sink.
    """

    kind: str  # "setup" | "hold"
    start: str
    end: str
    cells: Tuple[str, ...]
    arrival: float
    required: float
    start_is_port: bool = False

    @property
    def slack(self) -> float:
        if self.kind == "setup":
            return self.required - self.arrival
        return self.arrival - self.required

    @property
    def endpoint_pair(self) -> Tuple[str, str]:
        return (self.start, self.end)


@dataclass
class StaReport:
    """Aggregate result of one STA run."""

    netlist_name: str
    period_ns: float
    violations: List[TimingViolation] = field(default_factory=list)
    wns_setup_ns: float = float("inf")  # worst (most negative) setup slack
    wns_hold_ns: float = float("inf")
    truncated: bool = False

    def setup_violations(self) -> List[TimingViolation]:
        return [v for v in self.violations if v.kind == "setup"]

    def hold_violations(self) -> List[TimingViolation]:
        return [v for v in self.violations if v.kind == "hold"]

    def unique_endpoint_pairs(self, kind: Optional[str] = None) -> List[Tuple[str, str]]:
        """Distinct (start, end) pairs, preserving worst-first order.

        The paper filters its 11 + 1,366 violating paths down to 6 + 41
        unique pairs this way, generating one test per pair (§5.2.1).
        """
        seen: Set[Tuple[str, str]] = set()
        pairs: List[Tuple[str, str]] = []
        for violation in sorted(self.violations, key=lambda v: v.slack):
            if kind is not None and violation.kind != kind:
                continue
            if violation.start_is_port:
                continue
            pair = violation.endpoint_pair
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        return pairs

    def representative_violations(self) -> List[TimingViolation]:
        """Worst violation per unique endpoint pair."""
        best: Dict[Tuple[str, str], TimingViolation] = {}
        for violation in self.violations:
            if violation.start_is_port:
                continue
            pair = violation.endpoint_pair
            if pair not in best or violation.slack < best[pair].slack:
                best[pair] = violation
        return sorted(best.values(), key=lambda v: v.slack)


class _Level:
    """One topological level's index arrays for vectorized propagation."""

    __slots__ = ("instances", "out_idx", "in_idx")

    def __init__(self, instances: List[Instance], out_idx, in_idx):
        self.instances = instances
        self.out_idx = out_idx  # (k,) output-net indices
        self.in_idx = in_idx    # (max_fanin, k) input-net indices, padded


class _LevelGraph:
    """Level-grouped numpy layout of a netlist's combinational core.

    Index ``n_nets`` is a sentinel pad slot: the max-arrival array holds
    −inf there and the min-arrival array +inf, so gates with fewer
    inputs than the level's widest gate (and input-less TIE cells) read
    neutral elements through their padded rows.

    The layout depends only on netlist structure, so it is cached per
    (netlist, structural version) and shared by every analyzer — fresh
    and aged STA, every corner.
    """

    def __init__(self, netlist: Netlist):
        self.net_names: List[str] = list(netlist.nets)
        self.net_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)
        }
        self.n_nets = len(self.net_names)
        pad = self.n_nets
        level_of_net: Dict[str, int] = {}
        grouped: Dict[int, List[Instance]] = {}
        for inst in netlist.levelize():
            level = 0
            for net in inst.input_nets():
                level = max(level, level_of_net.get(net.name, 0))
            grouped.setdefault(level, []).append(inst)
            level_of_net[inst.output_net.name] = level + 1
        self.levels: List[_Level] = []
        for level in sorted(grouped):
            instances = grouped[level]
            fanin = max(
                (len(i.ctype.inputs) for i in instances), default=0
            )
            out_idx = np.array(
                [self.net_index[i.output_net.name] for i in instances],
                dtype=np.intp,
            )
            in_idx = np.full((max(fanin, 1), len(instances)), pad, dtype=np.intp)
            for col, inst in enumerate(instances):
                for row, net in enumerate(inst.input_nets()):
                    in_idx[row, col] = self.net_index[net.name]
            self.levels.append(_Level(instances, out_idx, in_idx))


#: Level layouts, keyed by netlist identity + structural version.
_LEVEL_CACHE: "weakref.WeakKeyDictionary[Netlist, Tuple[int, _LevelGraph]]" = (
    weakref.WeakKeyDictionary()
)


def _level_graph(netlist: Netlist) -> _LevelGraph:
    cached = _LEVEL_CACHE.get(netlist)
    if cached is not None and cached[0] == netlist.version:
        return cached[1]
    graph = _LevelGraph(netlist)
    _LEVEL_CACHE[netlist] = (netlist.version, graph)
    return graph


class StaticTimingAnalyzer:
    """Arrival-time propagation and constraint checking for one netlist.

    ``vectorized`` selects the numpy levelized propagation (default);
    ``vectorized=False`` keeps the original per-gate dict walk as the
    equivalence-tested reference.  Both produce bit-identical arrival
    times: the vector path applies the same per-instance corner-scaled
    delays (computed once, not per propagation step) and float64 max/add
    are exact, so downstream checks and path sets cannot diverge.
    """

    def __init__(
        self,
        netlist: Netlist,
        delays: DelayModel,
        vectorized: bool = True,
    ):
        self.netlist = netlist
        self.delays = delays
        self.vectorized = vectorized
        self._order = netlist.levelize()
        self._arrival_max: Dict[str, float] = {}
        self._arrival_min: Dict[str, float] = {}
        self._propagated = False

    # -- arrival propagation -------------------------------------------
    def _source_arrivals(self, net: Net, late: bool) -> Optional[float]:
        """Arrival at a source net (DFF Q), else None.

        Primary inputs are *unconstrained*: module-level STA without I/O
        constraints does not time port-launched paths, matching the
        paper's focus on internal flop-to-flop paths.
        """
        if net.driver is None:
            return None
        inst = net.driver[0]
        if inst.ctype.is_seq:
            if late:
                return self.delays.clk_late(inst) + self.delays.tmax(inst)
            return self.delays.clk_early(inst) + self.delays.tmin(inst)
        return None

    def propagate(self) -> None:
        """Fill max/min arrival times for every net, in levelized order."""
        if self.vectorized:
            self._propagate_vectorized()
            return
        for net in self.netlist.nets.values():
            if net.is_input:
                # Unconstrained: transparent to max/min propagation.
                self._arrival_max[net.name] = float("-inf")
                self._arrival_min[net.name] = float("inf")
                continue
            late = self._source_arrivals(net, late=True)
            if late is not None:
                self._arrival_max[net.name] = late
                self._arrival_min[net.name] = self._source_arrivals(
                    net, late=False
                )
        for inst in self._order:
            ins = inst.input_nets()
            if not ins:
                # TIE cells: constants never transition, so they must
                # not create timing events.  -inf/+inf arrivals make
                # them transparent to max/min propagation and endpoint
                # checks alike.
                self._arrival_max[inst.output_net.name] = float("-inf")
                self._arrival_min[inst.output_net.name] = float("inf")
                continue
            in_max = max(self._arrival_max[n.name] for n in ins)
            in_min = min(self._arrival_min[n.name] for n in ins)
            self._arrival_max[inst.output_net.name] = in_max + self.delays.tmax(inst)
            self._arrival_min[inst.output_net.name] = in_min + self.delays.tmin(inst)
        self._propagated = True

    def _propagate_vectorized(self) -> None:
        """Numpy levelized propagation; fills the same arrival dicts.

        Per level: gather input arrivals through padded index arrays,
        reduce max/min down the fanin axis, add the per-instance
        corner-scaled delay vector, and scatter to the output slots.
        The pad slot (index ``n_nets``) stays −inf/+inf, which makes
        narrow gates and TIE cells transparent exactly like the
        reference's explicit handling.
        """
        graph = _level_graph(self.netlist)
        n = graph.n_nets
        amax = np.full(n + 1, -np.inf)
        amin = np.full(n + 1, np.inf)
        for net in self.netlist.nets.values():
            if net.is_input:
                continue  # already -inf / +inf
            late = self._source_arrivals(net, late=True)
            if late is not None:
                idx = graph.net_index[net.name]
                amax[idx] = late
                amin[idx] = self._source_arrivals(net, late=False)
        # Corner derates applied once per level vector; elementwise
        # float64 ``x * derate / scale`` matches scale_max_delay /
        # scale_min_delay bit-for-bit.
        table = self.delays.delays
        corner = self.delays.corner
        for level in graph.levels:
            base = np.array(
                [table[i.name] for i in level.instances], dtype=np.float64
            )
            tmax = base[:, 1] * corner.late_derate / corner.voltage_scale
            tmin = base[:, 0] * corner.early_derate * corner.voltage_scale
            amax[level.out_idx] = amax[level.in_idx].max(axis=0) + tmax
            amin[level.out_idx] = amin[level.in_idx].min(axis=0) + tmin
        values_max = amax[:n].tolist()
        values_min = amin[:n].tolist()
        self._arrival_max = dict(zip(graph.net_names, values_max))
        self._arrival_min = dict(zip(graph.net_names, values_min))
        self._propagated = True

    def arrival_max(self, net_name: str) -> float:
        if not self._propagated:
            self.propagate()
        return self._arrival_max[net_name]

    def arrival_min(self, net_name: str) -> float:
        if not self._propagated:
            self.propagate()
        return self._arrival_min[net_name]

    def critical_delay(self) -> float:
        """Largest D-pin arrival plus setup: the minimum workable period.

        Ignores clock skew (used to derive a fresh design's target
        frequency the way sign-off would).
        """
        if not self._propagated:
            self.propagate()
        worst = 0.0
        for dff in self.netlist.dffs():
            arrival = self._arrival_max[dff.pins["D"].name]
            worst = max(worst, arrival + dff.ctype.setup)
        return worst

    # -- checking --------------------------------------------------------
    def check(
        self,
        period_ns: float,
        max_paths_per_endpoint: int = 400,
        max_total_paths: int = 20000,
    ) -> StaReport:
        """Run setup and hold checks; enumerate violating paths."""
        if not self._propagated:
            self.propagate()
        import math

        report = StaReport(netlist_name=self.netlist.name, period_ns=period_ns)
        total = 0
        for dff in self.netlist.dffs():
            d_net = dff.pins["D"]
            if math.isinf(self._arrival_max[d_net.name]):
                continue  # constant-fed flop: no transitions to time
            setup_required = (
                period_ns + self.delays.clk_early(dff) - dff.ctype.setup
            )
            arrival = self._arrival_max[d_net.name]
            slack = setup_required - arrival
            report.wns_setup_ns = min(report.wns_setup_ns, slack)
            if slack < 0:
                paths = self._enumerate(
                    d_net,
                    dff,
                    limit=setup_required,
                    late=True,
                    cap=max_paths_per_endpoint,
                )
                if len(paths) == max_paths_per_endpoint:
                    report.truncated = True
                report.violations.extend(paths)
                total += len(paths)

            hold_required = self.delays.clk_late(dff) + dff.ctype.hold
            arrival_min = self._arrival_min[d_net.name]
            hold_slack = arrival_min - hold_required
            report.wns_hold_ns = min(report.wns_hold_ns, hold_slack)
            if hold_slack < 0:
                paths = self._enumerate(
                    d_net,
                    dff,
                    limit=hold_required,
                    late=False,
                    cap=max_paths_per_endpoint,
                )
                if len(paths) == max_paths_per_endpoint:
                    report.truncated = True
                report.violations.extend(paths)
                total += len(paths)
            if total >= max_total_paths:
                report.truncated = True
                break
        return report

    def _enumerate(
        self,
        d_net: Net,
        capture: Instance,
        limit: float,
        late: bool,
        cap: int,
    ) -> List[TimingViolation]:
        """All source-to-endpoint paths violating ``limit`` (bounded).

        For setup (late=True) a path violates when its late arrival
        exceeds ``limit``; for hold (late=False) when its early arrival
        falls below ``limit``.  Pruning uses the per-net arrival bounds,
        so the walk only explores prefixes that can still violate.
        """
        arrivals = self._arrival_max if late else self._arrival_min
        results: List[TimingViolation] = []

        def violates(total: float) -> bool:
            return total > limit if late else total < limit

        def walk(net: Net, suffix: float, cells: Tuple[str, ...]) -> None:
            if len(results) >= cap:
                return
            bound = arrivals[net.name] + suffix
            if not violates(bound):
                return
            if net.driver is None:
                return  # unconstrained primary input
            inst = net.driver[0]
            if inst.ctype.is_seq:
                launch = self._source_arrivals(net, late)
                results.append(
                    TimingViolation(
                        kind="setup" if late else "hold",
                        start=inst.name,
                        end=capture.name,
                        cells=cells,
                        arrival=launch + suffix,
                        required=limit,
                    )
                )
                return
            delay = self.delays.tmax(inst) if late else self.delays.tmin(inst)
            for in_net in inst.input_nets():
                walk(in_net, suffix + delay, (inst.name,) + cells)

        walk(d_net, 0.0, ())
        return results
