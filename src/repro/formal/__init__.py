"""Formal verification: CDCL SAT solver, CNF encoding, bounded model checking."""

from .bmc import (
    BmcResult,
    BmcStatus,
    BoundedModelChecker,
    CoverObjective,
    InputAssumption,
    suggested_depth,
)
from .dimacs import DimacsError, parse_dimacs, solver_from_dimacs, to_dimacs
from .encode import EncodingError, encode_in_set, encode_instance, encode_xor_var
from .equiv import EquivalenceError, EquivalenceResult, check_equivalence
from .sat import SatResult, SatSolver, SatStatus
from .trace import Trace

__all__ = [
    "BmcResult",
    "BmcStatus",
    "BoundedModelChecker",
    "CoverObjective",
    "InputAssumption",
    "suggested_depth",
    "DimacsError",
    "parse_dimacs",
    "solver_from_dimacs",
    "to_dimacs",
    "EncodingError",
    "EquivalenceError",
    "EquivalenceResult",
    "check_equivalence",
    "encode_in_set",
    "encode_instance",
    "encode_xor_var",
    "SatResult",
    "SatSolver",
    "SatStatus",
    "Trace",
]
