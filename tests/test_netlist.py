"""Unit tests for the netlist data model and cell library."""

import pytest

from repro.netlist.cells import VEGA28, CellType, make_vega28_library
from repro.netlist.netlist import Netlist, NetlistError


class TestCellLibrary:
    def test_vega28_has_core_cells(self, vega28):
        for name in ("INV", "AND2", "OR2", "XOR2", "MUX2", "DFF", "CLKBUF"):
            assert name in vega28

    def test_duplicate_cell_rejected(self, vega28):
        with pytest.raises(ValueError):
            vega28.add(vega28["INV"])

    def test_missing_cell_reports_library(self, vega28):
        with pytest.raises(KeyError, match="vega28"):
            vega28["FANCY9"]

    def test_delay_ordering(self, vega28):
        for cell in vega28:
            assert cell.tmin <= cell.tmax

    def test_sequential_partition(self, vega28):
        seq = {c.name for c in vega28.sequential()}
        comb = {c.name for c in vega28.combinational()}
        assert seq == {"DFF"}
        assert "XOR2" in comb
        assert not (seq & comb)

    @pytest.mark.parametrize(
        "name,inputs,expected",
        [
            ("AND2", (1, 1), 1),
            ("AND2", (1, 0), 0),
            ("OR2", (0, 0), 0),
            ("OR2", (0, 1), 1),
            ("XOR2", (1, 1), 0),
            ("XOR2", (0, 1), 1),
            ("NAND2", (1, 1), 0),
            ("NOR2", (0, 0), 1),
            ("XNOR2", (1, 1), 1),
            ("INV", (1,), 0),
            ("BUF", (0,), 0),
        ],
    )
    def test_gate_truth_tables(self, vega28, name, inputs, expected):
        assert vega28[name].evaluate(inputs, mask=1) == expected

    def test_mux_semantics(self, vega28):
        mux = vega28["MUX2"]
        # (A, B, S): S=0 -> A, S=1 -> B
        assert mux.evaluate((1, 0, 0)) == 1
        assert mux.evaluate((1, 0, 1)) == 0

    def test_bit_parallel_evaluation(self, vega28):
        # Evaluate 4 vectors at once: A=0b0011, B=0b0101.
        mask = 0b1111
        assert vega28["AND2"].evaluate((0b0011, 0b0101), mask) == 0b0001
        assert vega28["XOR2"].evaluate((0b0011, 0b0101), mask) == 0b0110
        assert vega28["INV"].evaluate((0b0011,), mask) == 0b1100

    def test_stress_state_defaults_to_zero(self, vega28):
        assert all(cell.stress_state == 0 for cell in vega28)


class TestNetlistConstruction:
    def test_ports_and_nets(self, vega28):
        nl = Netlist("t", vega28)
        p = nl.add_input_port("a", 3)
        assert p.width == 3
        assert nl.get_net("a[1]") is p.bit(1)

    def test_scalar_port_name(self, vega28):
        nl = Netlist("t", vega28)
        p = nl.add_input_port("en")
        assert p.bit(0).name == "en"

    def test_double_driver_rejected(self, vega28):
        nl = Netlist("t", vega28)
        a = nl.add_input_port("a").bit(0)
        y = nl.add_net("y")
        nl.add_instance("INV", {"A": a, "Y": y})
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_instance("BUF", {"A": a, "Y": y})

    def test_driving_input_rejected(self, vega28):
        nl = Netlist("t", vega28)
        a = nl.add_input_port("a").bit(0)
        with pytest.raises(NetlistError, match="input"):
            nl.add_instance("INV", {"A": a, "Y": a})

    def test_wrong_pins_rejected(self, vega28):
        nl = Netlist("t", vega28)
        a = nl.add_input_port("a").bit(0)
        y = nl.add_net("y")
        with pytest.raises(NetlistError, match="pins"):
            nl.add_instance("AND2", {"A": a, "Y": y})

    def test_undriven_input_detected(self, vega28):
        nl = Netlist("t", vega28)
        floating = nl.add_net("floating")
        y = nl.add_output_port("y").bit(0)
        nl.add_instance("INV", {"A": floating, "Y": y})
        with pytest.raises(NetlistError, match="undriven"):
            nl.validate()

    def test_combinational_loop_detected(self, vega28):
        nl = Netlist("t", vega28)
        x = nl.add_net("x")
        y = nl.add_net("y")
        nl.add_instance("INV", {"A": x, "Y": y})
        nl.add_instance("INV", {"A": y, "Y": x})
        with pytest.raises(NetlistError, match="loop"):
            nl.levelize()

    def test_dff_breaks_loop(self, vega28):
        # A DFF in the cycle makes the structure legal (a toggle flop).
        nl = Netlist("t", vega28)
        q = nl.add_net("q")
        d = nl.add_net("d")
        nl.add_instance("INV", {"A": q, "Y": d})
        nl.add_instance("DFF", {"D": d, "Q": q})
        order = nl.levelize()
        assert len(order) == 1

    def test_remove_instance(self, vega28):
        nl = Netlist("t", vega28)
        a = nl.add_input_port("a").bit(0)
        y = nl.add_net("y")
        nl.add_instance("INV", {"A": a, "Y": y}, name="i1")
        nl.remove_instance("i1")
        assert y.driver is None
        assert a.loads == []

    def test_rewire_input(self, vega28):
        nl = Netlist("t", vega28)
        a = nl.add_input_port("a").bit(0)
        b = nl.add_input_port("b").bit(0)
        y = nl.add_net("y")
        inst = nl.add_instance("INV", {"A": a, "Y": y}, name="i1")
        nl.rewire_input(inst, "A", b)
        assert inst.pins["A"] is b
        assert a.loads == []
        assert (inst, "A") in b.loads


class TestPaperAdder:
    def test_structure_matches_figure3(self, paper_adder):
        stats = paper_adder.stats()
        assert stats["_dffs"] == 6
        assert stats["XOR2"] == 3
        assert stats["AND2"] == 1

    def test_levelize_orders_carry_before_sum(self, paper_adder):
        order = [i.name for i in paper_adder.levelize()]
        assert order.index("x7") < order.index("x8")
        assert order.index("a6") < order.index("x8")

    def test_fanout_cone_of_d4(self, paper_adder):
        # d4 (bq1) influences x7, x8, d10 — the paper's setup path.
        cone = paper_adder.fanout_cone(paper_adder.instances["d4"].output_net)
        names = {i.name for i in cone}
        assert names == {"x7", "x8", "d10"}

    def test_fanout_cone_crosses_dffs(self, paper_adder):
        cone = paper_adder.fanout_cone(paper_adder.instances["x7"].output_net)
        names = {i.name for i in cone}
        assert names == {"x8", "d10"}

    def test_fanin_cone_of_o1(self, paper_adder):
        net = paper_adder.instances["d10"].pins["D"]
        cone = paper_adder.fanin_cone(net)
        names = {i.name for i in cone}
        assert names == {"x8", "x7", "a6", "d1", "d2", "d3", "d4"}

    def test_clone_is_deep(self, paper_adder):
        clone = paper_adder.clone()
        assert clone.stats() == paper_adder.stats()
        clone.remove_instance("x8")
        assert "x8" in paper_adder.instances
        assert "x8" not in clone.instances

    def test_clone_preserves_ports(self, paper_adder):
        clone = paper_adder.clone()
        assert [p.name for p in clone.input_ports()] == ["a", "b"]
        assert clone.ports["o"].width == 2
