"""Cross-cutting property-based tests over the core substrates.

These tie independent implementations against each other:

* random RTL modules: gate-level simulation vs direct Python evaluation;
* random sequential circuits: BMC coverability vs exhaustive
  breadth-first reachability;
* STA: slack monotonicity under delay increase;
* failure models: instrumented netlists equal the original until the
  trigger condition first fires.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.example import build_paper_adder
from repro.formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from repro.netlist.cells import make_vega28_library
from repro.netlist.netlist import Netlist
from repro.rtl.signal import Module, mux
from repro.rtl.synth import synthesize
from repro.sim.gatesim import GateSimulator
from repro.sta.timing import DelayModel, StaticTimingAnalyzer
from repro.aging.corners import TYPICAL_CORNER


def _random_netlist(rng: random.Random, n_inputs=3, n_gates=10, n_dffs=2):
    """A random, valid, single-output sequential netlist."""
    lib = make_vega28_library()
    nl = Netlist("fuzz", lib)
    nets = [nl.add_input_port(f"i{k}").bit(0) for k in range(n_inputs)]
    # DFF outputs are usable as sources immediately; D wired later.
    dff_q = []
    for k in range(n_dffs):
        q = nl.add_net(f"q{k}")
        nets.append(q)
        dff_q.append(q)
    pending_dffs = []
    for k, q in enumerate(dff_q):
        inst = nl.add_instance("DFF", {"D": q, "Q": q}, name=f"ff{k}",
                               init=rng.getrandbits(1))
        # Temporarily self-looped; rewired below.
        pending_dffs.append(inst)
    gates = ["INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"]
    for g in range(n_gates):
        ctype = rng.choice(gates)
        out = nl.add_net(f"g{g}")
        if ctype == "INV":
            pins = {"A": rng.choice(nets), "Y": out}
        else:
            pins = {"A": rng.choice(nets), "B": rng.choice(nets), "Y": out}
        nl.add_instance(ctype, pins, name=f"u{g}")
        nets.append(out)
    comb_nets = [n for n in nets if not n.name.startswith("q")]
    for inst in pending_dffs:
        # Rewire D to a random combinational net (acyclic by layering).
        nl.rewire_input(inst, "D", rng.choice(comb_nets))
    out_port = nl.add_output_port("y").bit(0)
    nl.add_instance("BUF", {"A": rng.choice(nets), "Y": out_port}, name="ob")
    nl.validate()
    return nl


def _exhaustive_reachable(netlist, target_net, max_depth):
    """Can target_net be 1 within max_depth cycles?  Brute force."""
    sim = GateSimulator(netlist)
    input_ports = [p.name for p in netlist.input_ports()]
    widths = {p.name: p.width for p in netlist.input_ports()}
    # BFS over input sequences (small spaces only!).
    space = list(
        itertools.product(
            *[range(1 << widths[p]) for p in input_ports]
        )
    )
    frontier = {tuple(d.init for d in netlist.dffs())}
    for _depth in range(max_depth):
        next_frontier = set()
        for state in frontier:
            for assignment in space:
                sim.reset()
                sim.state = list(state)
                frame = dict(zip(input_ports, assignment))
                sim.evaluate(frame)
                if sim.read_net(target_net) & 1:
                    return True
                sim.state = [
                    sim.values[idx] & 1 for idx in sim._dff_d_index
                ]
                next_frontier.add(tuple(sim.state))
        frontier = next_frontier
    return False


class TestBmcAgainstExhaustiveSearch:
    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_cover_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        netlist = _random_netlist(rng, n_inputs=3, n_gates=8, n_dffs=2)
        depth = 3
        bmc = BoundedModelChecker(netlist)
        result = bmc.cover(CoverObjective(asserted=["y"]), max_depth=depth)
        expected = _exhaustive_reachable(netlist, "y", depth)
        assert (result.status is BmcStatus.COVERED) == expected
        if result.status is BmcStatus.COVERED:
            # Witness replays.
            sim = GateSimulator(netlist)
            seen = False
            for frame in result.trace.inputs:
                sim.evaluate(frame)
                if sim.read_net("y") & 1:
                    seen = True
                sim.step(frame)
            assert seen


class TestRtlVsPython:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        a=st.integers(min_value=0, max_value=0xFFFF),
        b=st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_expression_matches(self, seed, a, b):
        rng = random.Random(seed)
        m = Module("e")
        sa = m.input("a", 16)
        sb = m.input("b", 16)

        def build(depth):
            if depth == 0:
                return rng.choice([sa, sb])
            op = rng.randrange(6)
            x = build(depth - 1)
            y = build(depth - 1)
            if op == 0:
                return x & y
            if op == 1:
                return x | y
            if op == 2:
                return x ^ y
            if op == 3:
                return ~x
            if op == 4:
                return x + y
            return x - y

        expr_ops = []

        def py_eval(depth, rng2):
            if depth == 0:
                return rng2.choice([a, b])
            op = rng2.randrange(6)
            x = py_eval(depth - 1, rng2)
            y = py_eval(depth - 1, rng2)
            mask = 0xFFFF
            if op == 0:
                return x & y
            if op == 1:
                return x | y
            if op == 2:
                return x ^ y
            if op == 3:
                return (~x) & mask
            if op == 4:
                return (x + y) & mask
            return (x - y) & mask

        expr = build(3)
        m.output("y", expr)
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        got = sim.evaluate({"a": a, "b": b})["y"]
        want = py_eval(3, random.Random(seed))
        assert got == want


class TestStaMonotonicity:
    @given(
        scale=st.floats(min_value=1.0, max_value=1.2),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_slower_cells_never_improve_setup_slack(self, scale, seed):
        adder = build_paper_adder()
        base = DelayModel.fresh(adder, TYPICAL_CORNER)
        rng = random.Random(seed)
        slowed = DelayModel(
            delays={
                name: (tmin, tmax * (scale if rng.random() < 0.5 else 1.0))
                for name, (tmin, tmax) in base.delays.items()
            },
            corner=TYPICAL_CORNER,
        )
        report_base = StaticTimingAnalyzer(adder, base).check(1.0)
        report_slow = StaticTimingAnalyzer(adder, slowed).check(1.0)
        assert report_slow.wns_setup_ns <= report_base.wns_setup_ns + 1e-12

    def test_faster_min_paths_never_improve_hold_slack(self):
        adder = build_paper_adder()
        base = DelayModel.fresh(adder, TYPICAL_CORNER)
        fast = DelayModel(
            delays={
                name: (tmin * 0.5, tmax)
                for name, (tmin, tmax) in base.delays.items()
            },
            corner=TYPICAL_CORNER,
        )
        report_base = StaticTimingAnalyzer(adder, base).check(1.0)
        report_fast = StaticTimingAnalyzer(adder, fast).check(1.0)
        assert report_fast.wns_hold_ns <= report_base.wns_hold_ns + 1e-12


class TestVectorizedStaEquivalence:
    """The numpy levelized propagation matches the dict-walking STA."""

    @given(
        seed=st.integers(min_value=0, max_value=400),
        scale=st.floats(min_value=0.8, max_value=1.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_arrivals_match_reference(self, seed, scale):
        rng = random.Random(seed)
        netlist = _random_netlist(rng, n_inputs=3, n_gates=12, n_dffs=2)
        base = DelayModel.fresh(netlist, TYPICAL_CORNER)
        model = DelayModel(
            delays={
                name: (tmin * scale, tmax * scale)
                for name, (tmin, tmax) in base.delays.items()
            },
            corner=TYPICAL_CORNER,
        )
        ref = StaticTimingAnalyzer(netlist, model, vectorized=False)
        vec = StaticTimingAnalyzer(netlist, model, vectorized=True)
        report_ref = ref.check(1.0)
        report_vec = vec.check(1.0)
        for name in netlist.nets:
            assert vec.arrival_max(name) == pytest.approx(
                ref.arrival_max(name), abs=1e-9
            )
            assert vec.arrival_min(name) == pytest.approx(
                ref.arrival_min(name), abs=1e-9
            )
        assert [
            (v.kind, v.start, v.end, v.cells) for v in report_vec.violations
        ] == [
            (v.kind, v.start, v.end, v.cells) for v in report_ref.violations
        ]


class TestParallelProfileEquivalence:
    """Sharded profiling is bit-identical to serial for any worker count."""

    @given(
        seed=st.integers(min_value=0, max_value=200),
        workers=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_worker_count_invariance(self, seed, workers):
        from repro.sim.parallel_profile import (
            fork_available,
            profile_operand_stream_parallel,
        )

        rng = random.Random(seed)
        netlist = _random_netlist(rng, n_inputs=3, n_gates=10, n_dffs=2)
        ops = [
            {f"i{k}": rng.getrandbits(1) for k in range(3)}
            for _ in range(rng.randrange(20, 60))
        ]
        serial = profile_operand_stream_parallel(
            netlist, ops, lanes=8, workers=1, chunk_batches=1
        )
        width = workers if fork_available() else 1
        sharded = profile_operand_stream_parallel(
            netlist, ops, lanes=8, workers=width, chunk_batches=1
        )
        assert sharded.sp == serial.sp
        assert sharded.ones == serial.ones
        assert sharded.samples == serial.samples


class TestFailureModelTransparency:
    """Until a trigger fires, failing netlists match the original."""

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_constant_inputs_never_trigger_setup(self, seed):
        from repro.lifting.instrument import make_failing_netlist
        from repro.lifting.models import CMode, FailureModel, ViolationKind

        rng = random.Random(seed)
        adder = build_paper_adder()
        model = FailureModel("d4", "d10", ViolationKind.SETUP, CMode.ONE)
        failing = make_failing_netlist(adder, model)
        good = GateSimulator(adder)
        bad = GateSimulator(failing.netlist)
        # Constant stimulus: d4 never changes after warm-up, so outputs
        # must agree from cycle 3 onward.
        a, b = rng.randrange(4), 0  # b[1]=0 keeps d4 at its reset value
        for cycle in range(12):
            go = good.step({"a": a, "b": b})
            bo = bad.step({"a": a, "b": b})
            if cycle >= 3:
                assert go == bo
