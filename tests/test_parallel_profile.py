"""Parallel SP profiling, SPProfile merge semantics, and the artifact cache.

The load-bearing property throughout: profiling accumulates raw integer
one-counts, so any partition of the workload (chunks, workers, workload
shards) sums to the same counts and one final division yields the same
floats bit-for-bit.
"""

import json
import random

import pytest

from repro.core.artifacts import ArtifactCache
from repro.core.config import AgingAnalysisConfig, VegaConfig
from repro.core.example import build_paper_adder
from repro.core.workflow import VegaWorkflow
from repro.sim.gatesim import simulated_cycles
from repro.sim.parallel_profile import (
    fork_available,
    plan_chunks,
    profile_operand_stream_parallel,
    profile_operand_stream_reference,
    profile_workload_streams,
)
from repro.sim.probes import SPProfile, profile_operand_stream


def _stream(seed, count=40):
    rng = random.Random(seed)
    return [
        {"a": rng.getrandbits(2), "b": rng.getrandbits(2)}
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def adder():
    return build_paper_adder()


class TestChunkPlanning:
    def test_chunks_tile_every_stream(self):
        chunks = plan_chunks({"w0": 100, "w1": 7}, lanes=8, chunk_batches=2)
        by_workload = {}
        for c in chunks:
            by_workload.setdefault(c.workload, []).append((c.start, c.stop))
        assert by_workload == {
            "w0": [(0, 16), (16, 32), (32, 48), (48, 64), (64, 80),
                   (80, 96), (96, 100)],
            "w1": [(0, 7)],
        }

    def test_boundaries_are_lane_aligned(self):
        for c in plan_chunks({"w": 1000}, lanes=32, chunk_batches=3):
            assert c.start % 32 == 0


class TestBitIdenticalProfiles:
    """Every engine configuration produces the same SPProfile."""

    def test_chunked_serial_equals_monolithic(self, adder):
        ops = _stream(1, 100)
        mono = profile_operand_stream(adder, ops, lanes=8)
        chunked = profile_operand_stream_parallel(
            adder, ops, lanes=8, workers=1, chunk_batches=1
        )
        assert chunked.sp == mono.sp
        assert chunked.samples == mono.samples
        assert chunked.ones == mono.ones

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_any_worker_count_is_bit_identical(self, adder, workers):
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        ops = _stream(2, 120)
        serial = profile_operand_stream_parallel(
            adder, ops, lanes=8, workers=1, chunk_batches=2
        )
        parallel = profile_operand_stream_parallel(
            adder, ops, lanes=8, workers=workers, chunk_batches=2
        )
        assert parallel.sp == serial.sp
        assert parallel.ones == serial.ones
        assert parallel.samples == serial.samples

    def test_scalar_reference_equals_packed(self, adder):
        ops = _stream(3, 30)
        packed = profile_operand_stream(adder, ops, lanes=8)
        reference = profile_operand_stream_reference(adder, ops)
        assert reference.sp == packed.sp
        assert reference.samples == packed.samples

    def test_workload_split_equals_concatenation(self, adder):
        """Sharding across named workloads == one concatenated stream,
        as long as the split lands on a chunk boundary."""
        a, b = _stream(4, 32), _stream(5, 48)
        joint = profile_operand_stream_parallel(
            adder, a + b, lanes=8, chunk_batches=4
        )
        split = profile_workload_streams(
            adder, {"first": a, "second": b}, lanes=8, chunk_batches=4
        )
        assert split.sp == joint.sp
        assert split.samples == joint.samples

    def test_empty_stream_raises(self, adder):
        with pytest.raises(ValueError):
            profile_workload_streams(adder, {"w": []})


class TestSPProfileMerge:
    def test_partial_profile_is_not_deflated(self):
        """A net observed by only one operand keeps that operand's SP.

        The old merge averaged against an implicit 0.0 for the other
        profile's samples, silently deflating BTI stress for nets one
        shard never saw.
        """
        a = SPProfile("n", {"x": 1.0, "y": 0.5}, samples=10)
        b = SPProfile("n", {"y": 0.5}, samples=30)
        merged = a.merge(b)
        assert merged.sp["x"] == 1.0
        assert merged.sp["y"] == 0.5
        assert merged.samples == 40

    def test_merge_with_counts_is_exact_and_associative(self, adder):
        ops = _stream(6, 96)
        parts = [
            profile_operand_stream(adder, ops[i : i + 32], lanes=8)
            for i in (0, 32, 64)
        ]
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.sp == right.sp
        assert left.ones == right.ones
        assert left.samples == right.samples == 96 * 3  # 1 + 2 drain
        # ...and both equal the unsharded run.
        whole = profile_operand_stream(adder, ops, lanes=8)
        assert left.sp == whole.sp

    def test_merge_rejects_different_netlists(self):
        with pytest.raises(ValueError):
            SPProfile("x", {}, 1).merge(SPProfile("y", {}, 1))

    def test_json_round_trip_preserves_samples_and_counts(self, adder):
        profile = profile_operand_stream(adder, _stream(7, 24), lanes=8)
        restored = SPProfile.from_json(profile.to_json())
        assert restored.netlist_name == profile.netlist_name
        assert restored.samples == profile.samples
        assert restored.sp == profile.sp
        assert restored.ones == profile.ones

    def test_json_round_trip_without_counts(self):
        profile = SPProfile("n", {"x": 0.25}, samples=4)
        restored = SPProfile.from_json(profile.to_json())
        assert restored.ones is None
        assert restored.sp == {"x": 0.25}


class TestStructuralHash:
    def test_rebuilt_netlist_hashes_identically(self):
        # Two independent builds intern different Bit objects (different
        # ids), so this catches any id()-order dependence in synthesis
        # or hashing.
        assert (
            build_paper_adder().structural_hash()
            == build_paper_adder().structural_hash()
        )

    def test_synthesized_design_hashes_identically(self):
        from repro.cpu.alu_design import build_alu

        assert build_alu().structural_hash() == build_alu().structural_hash()

    def test_hash_tracks_structure(self, adder):
        other = build_paper_adder()
        h0 = other.structural_hash()
        inst = other.instances["x8"]
        other.rewire_input(inst, "A", other.nets["carry"])
        assert other.structural_hash() != h0


class TestArtifactCache:
    def test_digest_is_order_insensitive_for_kwargs_like_parts(self):
        assert ArtifactCache.digest("a", 1) != ArtifactCache.digest("a", 2)
        assert ArtifactCache.digest("a", 1) == ArtifactCache.digest("a", 1)

    def test_stream_digest_depends_on_content_only(self):
        ops = _stream(8, 10)
        same = [dict(op) for op in ops]
        assert ArtifactCache.stream_digest(ops) == ArtifactCache.stream_digest(same)
        changed = [dict(op) for op in ops]
        changed[3]["a"] ^= 1
        assert ArtifactCache.stream_digest(ops) != ArtifactCache.stream_digest(changed)

    def test_store_load_round_trip(self, tmp_path, adder):
        cache = ArtifactCache(tmp_path)
        profile = profile_operand_stream(adder, _stream(9, 16), lanes=8)
        key = ArtifactCache.digest("sp-profile", "k")
        cache.store_profile(key, profile)
        loaded = cache.load_profile(key)
        assert loaded.sp == profile.sp
        assert loaded.ones == profile.ones
        assert (cache.hits, cache.misses) == (1, 0)
        assert cache.load_profile(ArtifactCache.digest("nope")) is None
        assert (cache.hits, cache.misses) == (1, 1)


class TestWorkflowCaching:
    def _run(self, tmp_path, adder, stream):
        config = VegaConfig(
            aging=AgingAnalysisConfig(profile_lanes=8),
            cache_dir=str(tmp_path),
        )
        workflow = VegaWorkflow(config)
        profile, result = workflow.run_aging_analysis(
            adder, stream, workload_id="unit-test"
        )
        return workflow, profile, result

    def test_second_run_simulates_nothing(self, tmp_path, adder):
        stream = _stream(10, 64)
        w1, p1, r1 = self._run(tmp_path, adder, stream)
        assert w1.last_cache_stats == (0, 2)
        before = simulated_cycles()
        w2, p2, r2 = self._run(tmp_path, adder, stream)
        assert simulated_cycles() == before  # zero cycles simulated
        assert w2.last_cache_stats == (2, 0)
        # Cached run reproduces the uncached result bit-for-bit.
        assert p2.sp == p1.sp and p2.samples == p1.samples
        assert r2.period_ns == r1.period_ns
        assert [
            (v.start, v.end, v.kind, v.arrival)
            for v in r2.report.violations
        ] == [
            (v.start, v.end, v.kind, v.arrival)
            for v in r1.report.violations
        ]

    def test_changed_stream_misses(self, tmp_path, adder):
        self._run(tmp_path, adder, _stream(11, 64))
        w2, _, _ = self._run(tmp_path, adder, _stream(12, 64))
        hits, misses = w2.last_cache_stats
        assert misses >= 1

    def test_cache_disabled_reports_no_stats(self, adder):
        workflow = VegaWorkflow(VegaConfig(aging=AgingAnalysisConfig(profile_lanes=8)))
        workflow.run_aging_analysis(adder, _stream(13, 32))
        assert workflow.last_cache_stats is None
