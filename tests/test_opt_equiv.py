"""Tests for the netlist optimizer, verified by the equivalence checker."""

import random

import pytest

from repro.core.example import build_paper_adder
from repro.formal.equiv import (
    EquivalenceError,
    check_equivalence,
)
from repro.netlist.cells import make_vega28_library
from repro.netlist.netlist import Netlist
from repro.netlist.opt import optimize
from repro.rtl.signal import Module, mux
from repro.rtl.synth import synthesize
from repro.sim.gatesim import GateSimulator


def _with_redundancy():
    """A netlist with obvious constant/buffer/dead redundancy."""
    lib = make_vega28_library()
    nl = Netlist("red", lib)
    a = nl.add_input_port("a").bit(0)
    b = nl.add_input_port("b").bit(0)
    y = nl.add_output_port("y").bit(0)

    tie1 = nl.add_net("c1")
    nl.add_instance("TIE1", {"Y": tie1})
    # and(a, 1) == a, routed through two buffers.
    anded = nl.add_net("anded")
    nl.add_instance("AND2", {"A": a, "B": tie1, "Y": anded})
    buf1 = nl.add_net("buf1")
    nl.add_instance("BUF", {"A": anded, "Y": buf1})
    xored = nl.add_net("xored")
    nl.add_instance("XOR2", {"A": buf1, "B": b, "Y": xored})
    nl.add_instance("BUF", {"A": xored, "Y": y})
    # Dead logic: an unconnected inverter tree.
    dead1 = nl.add_net("dead1")
    nl.add_instance("INV", {"A": b, "Y": dead1})
    dead2 = nl.add_net("dead2")
    nl.add_instance("INV", {"A": dead1, "Y": dead2})
    nl.validate()
    return nl


class TestOptimizer:
    def test_removes_redundancy(self):
        nl = _with_redundancy()
        before = nl.stats()["_cells"]
        removed = optimize(nl)
        assert removed >= 4  # AND2, inner BUF, two dead INVs (and TIE)
        assert nl.stats()["_cells"] < before
        nl.validate()

    def test_behaviour_preserved_by_simulation(self):
        reference = _with_redundancy()
        optimized = _with_redundancy()
        optimize(optimized)
        ref_sim = GateSimulator(reference)
        opt_sim = GateSimulator(optimized)
        for a in (0, 1):
            for b in (0, 1):
                frame = {"a": a, "b": b}
                assert ref_sim.evaluate(frame) == opt_sim.evaluate(frame)

    def test_behaviour_preserved_formally(self):
        reference = _with_redundancy()
        optimized = _with_redundancy()
        optimize(optimized)
        verdict = check_equivalence(reference, optimized, depth=1)
        assert verdict.equivalent is True

    def test_sequential_netlist_preserved(self, paper_adder):
        optimized = build_paper_adder()
        optimize(optimized)
        verdict = check_equivalence(paper_adder, optimized, depth=3)
        assert verdict.equivalent is True

    def test_idempotent(self):
        nl = _with_redundancy()
        optimize(nl)
        assert optimize(nl) == 0

    def test_alu_already_optimal_and_behaviour_preserved(self):
        """The RTL DSL folds constants and hash-conses subexpressions
        at construction time, so synthesis output has nothing left for
        these cleanup passes — and optimization must not break it."""
        from repro.cpu.alu_design import AluOp, alu_reference, build_alu

        alu = build_alu()
        before = alu.stats()["_cells"]
        removed = optimize(alu)
        assert removed == 0
        assert alu.stats()["_cells"] == before
        sim = GateSimulator(alu)
        rng = random.Random(4)
        for _ in range(30):
            op = int(rng.choice(list(AluOp)))
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            frame = {"op": op, "a": a, "b": b, "mode": 0, "dft": 0}
            sim.reset()
            sim.step(frame)
            sim.step(frame)
            assert sim.step(frame)["result"] == alu_reference(op, a, b)


class TestEquivalenceChecker:
    def test_detects_inequivalence(self):
        lib = make_vega28_library()

        def build(gate):
            nl = Netlist("g", lib)
            a = nl.add_input_port("a").bit(0)
            b = nl.add_input_port("b").bit(0)
            y = nl.add_output_port("y").bit(0)
            nl.add_instance(gate, {"A": a, "B": b, "Y": y})
            return nl

        verdict = check_equivalence(build("AND2"), build("OR2"))
        assert verdict.equivalent is False
        cex = verdict.counterexample
        # The counterexample distinguishes AND from OR.
        assert (cex["a"] & cex["b"]) != (cex["a"] | cex["b"])

    def test_mismatched_interfaces_rejected(self, paper_adder):
        lib = make_vega28_library()
        other = Netlist("o", lib)
        other.add_input_port("a", 2)
        port = other.add_output_port("o", 2)
        src = other.add_input_port("b", 3)  # wrong width
        for i in range(2):
            other.add_instance(
                "BUF", {"A": src.bit(i), "Y": port.bit(i)}
            )
        with pytest.raises(EquivalenceError):
            check_equivalence(paper_adder, other)

    def test_synthesized_expressions_equivalent(self):
        """Two structurally different forms of the same function."""
        lib = make_vega28_library()

        def xor_form():
            m = Module("x1")
            a = m.input("a", 4)
            b = m.input("b", 4)
            m.output("y", a ^ b)
            return synthesize(m, lib)

        def mux_form():
            m = Module("x2")
            a = m.input("a", 4)
            b = m.input("b", 4)
            # a xor b == mux(b, a, ~a) bitwise
            from repro.rtl.signal import Signal

            bits = tuple(
                m.b_mux(bb, ab, m.b_not(ab))
                for ab, bb in zip(a.bits, b.bits)
            )
            m.output("y", Signal(m, bits))
            return synthesize(m, lib)

        verdict = check_equivalence(xor_form(), mux_form())
        assert verdict.equivalent is True

    def test_sequential_difference_found(self, paper_adder):
        # Flip one gate of the adder: the checker finds a witness.
        from repro.core.example import build_paper_adder

        broken = build_paper_adder()
        x8 = broken.instances["x8"]
        pins = dict(x8.pins)
        broken.remove_instance("x8")
        broken.add_instance("XNOR2", pins, name="x8")
        verdict = check_equivalence(paper_adder, broken, depth=3)
        assert verdict.equivalent is False


class TestRandomizedEquivalence:
    """Fuzz: optimizer preserves random netlists; mutations are caught."""

    @pytest.mark.parametrize("seed", range(6))
    def test_optimizer_preserves_random_netlists(self, seed):
        import random as _random

        from tests.test_properties import _random_netlist

        rng = _random.Random(seed + 100)
        reference = _random_netlist(rng, n_inputs=3, n_gates=12, n_dffs=2)
        rng2 = _random.Random(seed + 100)
        optimized = _random_netlist(rng2, n_inputs=3, n_gates=12, n_dffs=2)
        optimize(optimized)
        verdict = check_equivalence(reference, optimized, depth=3)
        assert verdict.equivalent is True

    @pytest.mark.parametrize("seed", range(4))
    def test_gate_swap_usually_detected(self, seed):
        import random as _random

        from tests.test_properties import _random_netlist

        rng = _random.Random(seed + 300)
        reference = _random_netlist(rng, n_inputs=3, n_gates=12, n_dffs=1)
        rng2 = _random.Random(seed + 300)
        mutated = _random_netlist(rng2, n_inputs=3, n_gates=12, n_dffs=1)
        # Swap one AND2 <-> OR2 (if present) in the mutant.
        target = next(
            (
                inst
                for inst in mutated.instances.values()
                if inst.ctype.name in ("AND2", "OR2")
            ),
            None,
        )
        if target is None:
            pytest.skip("no swappable gate in this sample")
        other = "OR2" if target.ctype.name == "AND2" else "AND2"
        pins = dict(target.pins)
        name = target.name
        mutated.remove_instance(name)
        mutated.add_instance(other, pins, name=name)
        verdict = check_equivalence(reference, mutated, depth=3)
        # A swapped gate is either observable (inequivalent, with a
        # counterexample) or masked by downstream logic (equivalent);
        # the checker must return a definite verdict either way.
        assert verdict.equivalent in (True, False)
        if verdict.equivalent is False:
            assert verdict.counterexample is not None
