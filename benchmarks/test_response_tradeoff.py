"""Recovered lifetime vs accuracy/frequency cost per response policy.

Once Vega flags eroding timing, the operator chooses a response; this
benchmark maps the trade-off frontier the ``repro respond`` verb
reports.  On the ALU under its mission profile the first violation
onsets early in deployment; each policy (clock derate, re-synthesis
with the violating cone modelled as fresh silicon, approximation of
the violating cone) buys back lifetime at a different cost — frequency
for derate, area for resynth, exactness for approximate.

``VEGA_SMOKE=1`` coarsens the onset grid and shrinks the accuracy
sample so CI exercises every policy quickly; the per-policy contracts
(derate pays frequency only, resynth proven exact, approximate
provably inexact) hold in both modes.
"""

import os
import time

from repro.core.config import ResponseConfig
from repro.core.experiments import CLOCK_CHAIN_LENGTH
from repro.response import ResponseEngine

SMOKE = os.environ.get("VEGA_SMOKE") == "1"

CONFIG = ResponseConfig(
    age_grid=(
        tuple(float(a) for a in (2, 4, 8, 16))
        if SMOKE
        else tuple(float(a) for a in range(1, 17))
    ),
    accuracy_samples=32 if SMOKE else 128,
    workers=2,
)


def test_response_tradeoff(ctx, benchmark, recorder):
    unit = ctx.alu

    def build_engine():
        return ResponseEngine(
            unit.netlist,
            "alu",
            unit.sp_profile,
            aging=ctx.config.aging,
            config=CONFIG,
            gated_instances=unit.gated_instances(),
            clock_chain_length=CLOCK_CHAIN_LENGTH,
            operands=ctx.stream("alu"),
        )

    start = time.perf_counter()
    report = build_engine().evaluate()
    wall = time.perf_counter() - start

    assert report.baseline_onset_years is not None, (
        "no violation inside the scan horizon — nothing to respond to"
    )
    rows_by_policy = {row["policy"]: row for row in report.policies}
    derate = rows_by_policy["derate"]
    resynth = rows_by_policy["resynth"]
    approximate = rows_by_policy["approximate"]
    assert derate["frequency_cost_pct"] > 0.0
    assert derate["accuracy_cost_pct"] == 0.0
    assert resynth["equivalent"] is True
    assert approximate["equivalent"] is False
    for row in report.policies:
        assert row["recovered_years"] >= 0.0

    recorder.sample(
        "response_tradeoff", "baseline_onset_years",
        report.baseline_onset_years, "years",
        period_ns=report.period_ns, bigger_is_better=True,
    )
    for row in report.policies:
        recorder.sample(
            "response_tradeoff", "recovered_years",
            row["recovered_years"], "years", policy=row["policy"],
            censored=row["censored"], bigger_is_better=True,
        )
        recorder.sample(
            "response_tradeoff", "frequency_cost_pct",
            row["frequency_cost_pct"], "percent", policy=row["policy"],
        )
        recorder.sample(
            "response_tradeoff", "accuracy_cost_pct",
            row["accuracy_cost_pct"], "percent", policy=row["policy"],
        )
        recorder.sample(
            "response_tradeoff", "area_delta_cells",
            row["area_delta_cells"], "cells", policy=row["policy"],
        )
    recorder.sample(
        "response_tradeoff", "wall_time", wall, "seconds",
        policies=len(report.policies), timing=True,
    )

    table = [
        f"ALU response trade-off frontier: first violation "
        f"{report.victim_start} ~> {report.victim_end} at "
        f"{report.baseline_onset_years:.1f}y, signed off at "
        f"{report.period_ns:.4f} ns"
        + (" [smoke]" if SMOKE else ""),
        "policy      | recovered | freq cost | accuracy | cells",
    ]
    for row in report.policies:
        mark = "*" if row["censored"] else " "
        table.append(
            f"{row['policy']:<11s} | {row['recovered_years']:+8.2f}y{mark}"
            f"| {row['frequency_cost_pct']:8.1f}% "
            f"| {row['accuracy_cost_pct']:7.2f}% "
            f"| {row['area_delta_cells']:+d}"
        )
    if any(row["censored"] for row in report.policies):
        table.append(
            f"(* censored: violation pushed past the "
            f"{report.horizon_years:.0f}y horizon)"
        )
    recorder.table("response_tradeoff", "\n".join(table))

    report2 = benchmark(lambda: build_engine().evaluate())
    assert report2.to_json() == report.to_json()
