"""Error Lifting: failure models, instrumentation, formal test generation."""

from .instrument import (
    CoverInstrumentation,
    FailingNetlist,
    InstrumentationError,
    RANDOM_C_PORT,
    instrument_for_cover,
    make_failing_netlist,
)
from .fuzz import FuzzResult, FuzzTraceGenerator
from .lifter import (
    ErrorLifter,
    LiftingReport,
    PairOutcome,
    PairResult,
    VariantResult,
)
from .models import CMode, EdgeQualifier, FailureModel, ViolationKind
from .parallel import fork_available, lift_pairs
from .testcase import (
    IsaMapper,
    TestCase,
    TestInstruction,
    UnmappableTraceError,
)

__all__ = [
    "CoverInstrumentation",
    "FailingNetlist",
    "InstrumentationError",
    "RANDOM_C_PORT",
    "instrument_for_cover",
    "make_failing_netlist",
    "FuzzResult",
    "FuzzTraceGenerator",
    "ErrorLifter",
    "LiftingReport",
    "PairOutcome",
    "PairResult",
    "VariantResult",
    "CMode",
    "EdgeQualifier",
    "FailureModel",
    "ViolationKind",
    "fork_available",
    "lift_pairs",
    "IsaMapper",
    "TestCase",
    "TestInstruction",
    "UnmappableTraceError",
]
