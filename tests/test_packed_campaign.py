"""Tests for the fault-parallel packed campaign prefilter.

The packed path is an *optimization with an equality contract*: for any
fleet, packing width, and worker count, the campaign must produce the
same per-device outcomes and a byte-identical
:class:`~repro.campaign.report.CampaignReport` as the serial engine.
These tests pin that contract on real lifted suites, plus the
``pack_vectors`` fast path against its reference transpose.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignEngine
from repro.core import telemetry
from repro.core.config import CampaignConfig, ErrorLiftingConfig
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sim.gatesim import pack_vectors, unpack_vectors
from repro.sta.timing import TimingViolation

MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.RANDOM),
]

CONFIG = CampaignConfig(
    devices=8,
    seed=11,
    shard_size=3,
    workers=1,
    silifuzz_snapshots=3,
    base_onset_years=6.0,
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def vega_library(alu_netlist):
    lifter = ErrorLifter(alu_netlist, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    return AgingLibrary(
        name="packed_vega",
        test_cases=lifter.lift_pair(violation).test_cases,
    )


def run_campaign(alu_netlist, vega_library, **overrides):
    config = dataclasses.replace(CONFIG, **overrides)
    engine = CampaignEngine(
        alu_netlist, "alu", vega_library, MODELS, config
    )
    return engine.run()


class TestPackVectors:
    """The single-pass ``pack_vectors`` against the reference transpose."""

    @staticmethod
    def reference_pack(values, width):
        planes = [0] * width
        for bit in range(width):
            plane = 0
            for vec_index, value in enumerate(values):
                if (value >> bit) & 1:
                    plane |= 1 << vec_index
            planes[bit] = plane
        return planes

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=(1 << 40) - 1), max_size=70
        ),
        width=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_transpose(self, values, width):
        assert pack_vectors(values, width) == self.reference_pack(
            values, width
        )

    def test_roundtrip(self):
        values = [0, 1, 0b1011, (1 << 32) - 1, 7]
        planes = pack_vectors(values, 32)
        assert unpack_vectors(planes, len(values)) == values


class TestPackedEquivalence:
    """Packed campaigns are byte-identical to the serial engine."""

    @pytest.fixture(scope="class")
    def serial_report(self, alu_netlist, vega_library):
        return run_campaign(alu_netlist, vega_library, packed=False)

    @pytest.mark.parametrize("pack_width", [1, 2, 3, 64])
    def test_pack_width_invariance(
        self, alu_netlist, vega_library, serial_report, pack_width
    ):
        packed = run_campaign(
            alu_netlist, vega_library, packed=True, pack_width=pack_width
        )
        assert packed.to_json() == serial_report.to_json()

    def test_worker_invariance(
        self, alu_netlist, vega_library, serial_report
    ):
        packed = run_campaign(
            alu_netlist, vega_library, packed=True, workers=2
        )
        assert packed.to_json() == serial_report.to_json()

    def test_per_device_rows_match(
        self, alu_netlist, vega_library, serial_report
    ):
        """Equality is per (device, suite) row, not just aggregate."""
        packed = run_campaign(alu_netlist, vega_library, packed=True)
        assert packed.device_rows == serial_report.device_rows

    def test_packed_path_actually_engaged(self, alu_netlist, vega_library):
        tele = telemetry.Telemetry(run_id="packed-on")
        with telemetry.use(tele):
            run_campaign(alu_netlist, vega_library, packed=True)
        assert tele.counters.get("campaign.packed_golden", 0) > 0

    def test_packed_disabled_never_packs(self, alu_netlist, vega_library):
        tele = telemetry.Telemetry(run_id="packed-off")
        with telemetry.use(tele):
            run_campaign(alu_netlist, vega_library, packed=False)
        assert tele.counters.get("campaign.packed_golden", 0) == 0


class TestPackedProperty:
    """Random fleets, widths, and worker counts — always byte-identical."""

    @given(
        devices=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
        pack_width=st.sampled_from([1, 2, 64]),
        workers=st.sampled_from([1, 2]),
    )
    @settings(max_examples=6, deadline=None)
    def test_report_byte_identical(
        self, alu_netlist, vega_library, devices, seed, pack_width, workers
    ):
        serial = run_campaign(
            alu_netlist, vega_library,
            devices=devices, seed=seed, shard_size=2,
            packed=False, workers=1,
        )
        packed = run_campaign(
            alu_netlist, vega_library,
            devices=devices, seed=seed, shard_size=2,
            packed=True, pack_width=pack_width, workers=workers,
        )
        assert packed.to_json() == serial.to_json()
