"""Figure 4 — switching-delay degradation of a 28 nm XOR cell vs SP.

Paper shape: a family of curves over a 10-year span, ordered by signal
probability (low SP = more pull-up stress = faster degradation), with
the reaction-diffusion t^(1/6) front-loading.
"""

from repro.aging.charlib import AgingTimingLibrary, degradation_curve
from repro.netlist.cells import VEGA28

SP_LEVELS = (0.1, 0.25, 0.5, 0.75, 0.9)
YEARS = (0.5, 1, 2, 4, 6, 8, 10)


def test_fig4_xor_degradation_curves(benchmark, recorder):
    xor_cell = VEGA28["XOR2"]

    def compute():
        return {
            sp: degradation_curve(xor_cell, VEGA28, sp, YEARS)
            for sp in SP_LEVELS
        }

    curves = benchmark(compute)

    header = "SP    " + "".join(f"{y:>8}y" for y in YEARS)
    lines = [header]
    for sp in SP_LEVELS:
        lines.append(
            f"{sp:<6}" + "".join(f"{v:>8.2f}%" for v in curves[sp])
        )
        recorder.sample(
            "fig4_xor_delay_degradation", "delay_degradation_10y",
            curves[sp][-1], "percent", sp=sp, cell="XOR2",
        )
    recorder.table("fig4_xor_delay_degradation", "\n".join(lines))

    # Shape assertions.
    for sp in SP_LEVELS:
        curve = curves[sp]
        assert curve == sorted(curve), "degradation grows with time"
        # Front-loading: >= 60% of the 10-year shift within year one.
        assert curve[1] > 0.60 * curve[-1]
    for low, high in zip(SP_LEVELS, SP_LEVELS[1:]):
        assert all(
            a > b for a, b in zip(curves[low], curves[high])
        ), "lower SP ages faster"
    # Worst curve tops out in the ~6% region the paper reports.
    assert 4.0 < curves[0.1][-1] < 8.0
