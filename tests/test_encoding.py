"""Binary encoding round-trip tests (plus RISC-V golden encodings)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.asm import assemble
from repro.cpu.encoding import (
    DecodeError,
    EncodeError,
    decode,
    encode,
    encode_program,
)
from repro.cpu.isa import Instruction
from repro.workloads import WORKLOADS

reg = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)


class TestGoldenEncodings:
    """Spot checks against the RISC-V spec's reference encodings."""

    @pytest.mark.parametrize(
        "instr,expected",
        [
            # add x1, x2, x3 = 0x003100b3
            (Instruction("add", rd=1, rs1=2, rs2=3), 0x003100B3),
            # sub x5, x6, x7 = 0x407302b3
            (Instruction("sub", rd=5, rs1=6, rs2=7), 0x407302B3),
            # addi x1, x2, -1 = 0xfff10093
            (Instruction("addi", rd=1, rs1=2, imm=-1), 0xFFF10093),
            # lw x4, 16(x5) = 0x0102a203
            (Instruction("lw", rd=4, rs1=5, imm=16), 0x0102A203),
            # sw x6, 8(x7) = 0x0063a423
            (Instruction("sw", rs2=6, rs1=7, imm=8), 0x0063A423),
            # lui x10, 0x12345 = 0x12345537
            (Instruction("lui", rd=10, imm=0x12345), 0x12345537),
            # jalr x0, 0(x1) = 0x00008067 (ret)
            (Instruction("jalr", rd=0, rs1=1, imm=0), 0x00008067),
            # ecall = 0x00000073
            (Instruction("ecall"), 0x00000073),
        ],
    )
    def test_matches_spec(self, instr, expected):
        assert encode(instr) == expected

    def test_branch_offset_encoding(self):
        # beq x1, x2, +8 from pc 0 = 0x00208463
        instr = Instruction("beq", rs1=1, rs2=2, target=8)
        assert encode(instr, pc=0) == 0x00208463

    def test_jal_offset_encoding(self):
        # jal x1, +16 from pc 0 = 0x010000ef
        instr = Instruction("jal", rd=1, target=16)
        assert encode(instr, pc=0) == 0x010000EF


class TestRoundTrip:
    @given(rd=reg, rs1=reg, rs2=reg)
    @settings(max_examples=30, deadline=None)
    def test_r_type(self, rd, rs1, rs2):
        for name in ("add", "sub", "xor", "sll", "sra", "and"):
            instr = Instruction(name, rd=rd, rs1=rs1, rs2=rs2)
            back = decode(encode(instr))
            assert (back.mnemonic, back.rd, back.rs1, back.rs2) == (
                name, rd, rs1, rs2,
            )

    @given(rd=reg, rs1=reg, imm=imm12)
    @settings(max_examples=30, deadline=None)
    def test_i_and_memory(self, rd, rs1, imm):
        for name in ("addi", "xori", "lw", "lb", "lhu"):
            instr = Instruction(name, rd=rd, rs1=rs1, imm=imm)
            back = decode(encode(instr))
            assert (back.mnemonic, back.rd, back.rs1, back.imm) == (
                name, rd, rs1, imm,
            )

    @given(rs1=reg, rs2=reg, imm=imm12)
    @settings(max_examples=30, deadline=None)
    def test_stores(self, rs1, rs2, imm):
        for name in ("sw", "sh", "sb"):
            instr = Instruction(name, rs1=rs1, rs2=rs2, imm=imm)
            back = decode(encode(instr))
            assert (back.mnemonic, back.rs1, back.rs2, back.imm) == (
                name, rs1, rs2, imm,
            )

    @given(
        rs1=reg,
        rs2=reg,
        offset=st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2),
        pc=st.integers(min_value=0, max_value=1 << 20).map(lambda v: v * 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_branches(self, rs1, rs2, offset, pc):
        instr = Instruction("bne", rs1=rs1, rs2=rs2, target=pc + offset)
        back = decode(encode(instr, pc=pc), pc=pc)
        assert back.target == pc + offset

    @given(fd=reg, fs1=reg, fs2=reg)
    @settings(max_examples=30, deadline=None)
    def test_fp_ops(self, fd, fs1, fs2):
        for name in ("fadd.h", "fsub.h", "fmul.h", "fmin.h", "fmax.h"):
            instr = Instruction(name, fd=fd, fs1=fs1, fs2=fs2)
            back = decode(encode(instr))
            assert (back.mnemonic, back.fd, back.fs1, back.fs2) == (
                name, fd, fs1, fs2,
            )

    @given(rd=reg, fs1=reg, fs2=reg)
    @settings(max_examples=30, deadline=None)
    def test_fp_compares(self, rd, fs1, fs2):
        for name in ("feq.h", "flt.h", "fle.h"):
            instr = Instruction(name, rd=rd, fs1=fs1, fs2=fs2)
            back = decode(encode(instr))
            assert (back.mnemonic, back.rd, back.fs1, back.fs2) == (
                name, rd, fs1, fs2,
            )

    def test_system_instructions(self):
        for name, fields in (
            ("ecall", {}),
            ("frflags", {"rd": 7}),
            ("fsflags", {"rs1": 9}),
        ):
            instr = Instruction(name, **fields)
            back = decode(encode(instr))
            assert back.mnemonic == name


class TestWholePrograms:
    @pytest.mark.parametrize("name", ["crc32", "minver", "qsort"])
    def test_workload_encodes_and_decodes(self, name):
        program = assemble(WORKLOADS[name].source)
        words = encode_program(program.instructions)
        assert len(words) == program.size
        assert all(0 <= w < (1 << 32) for w in words)
        for index, word in enumerate(words):
            back = decode(word, pc=4 * index)
            original = program.instructions[index]
            assert back.mnemonic == original.mnemonic
            if original.target is not None:
                assert back.target == original.target

    def test_decoded_program_executes_identically(self):
        from repro.cpu.asm import Program
        from repro.cpu.cpu import Cpu, run_program

        program = assemble(WORKLOADS["crc32"].source)
        words = encode_program(program.instructions)
        redecoded = Program(
            instructions=[
                decode(word, pc=4 * i) for i, word in enumerate(words)
            ],
            data=program.data,
            symbols=program.symbols,
            leaders=program.leaders,
        )
        baseline = run_program(program)
        replay = Cpu(redecoded).run()
        assert replay.exit_value == baseline.exit_value
        assert replay.instructions == baseline.instructions


class TestErrors:
    def test_immediate_out_of_range(self):
        with pytest.raises(EncodeError, match="range"):
            encode(Instruction("addi", rd=1, rs1=1, imm=5000))

    def test_unknown_word_rejected(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(DecodeError, match="opcode"):
            decode(0x0000007B)


class TestDisassembler:
    """render/assemble/encode/decode round trips."""

    def test_render_assemble_roundtrip_workload(self):
        from repro.cpu.disasm import render_instruction
        from repro.cpu.asm import assemble as asm2

        program = assemble(WORKLOADS["qsort"].source)
        rendered = "\n".join(
            render_instruction(i) for i in program.instructions
        )
        reparsed = asm2(rendered)
        assert reparsed.size == program.size
        for a, b in zip(program.instructions, reparsed.instructions):
            assert a.mnemonic == b.mnemonic
            assert (a.rd, a.rs1, a.rs2, a.fd, a.fs1, a.fs2) == (
                b.rd, b.rs1, b.rs2, b.fd, b.fs1, b.fs2,
            )
            assert a.imm == b.imm
            assert a.target == b.target

    def test_rendered_program_executes_identically(self):
        from repro.cpu.asm import Program
        from repro.cpu.cpu import Cpu, run_program
        from repro.cpu.disasm import render_instruction

        program = assemble(WORKLOADS["bitcount"].source)
        rendered = "\n".join(
            render_instruction(i) for i in program.instructions
        )
        replay = assemble(rendered)
        replay.data = program.data
        baseline = run_program(program)
        again = Cpu(replay).run()
        assert again.exit_value == baseline.exit_value

    def test_disassemble_listing(self):
        from repro.cpu.disasm import disassemble
        from repro.cpu.encoding import encode_program

        program = assemble("li a0, 7\nadd a0, a0, a0\necall")
        words = encode_program(program.instructions)
        listing = disassemble(words)
        assert "add x10, x10, x10" in listing
        assert "ecall" in listing
        assert listing.count("\n") == len(words) - 1

    def test_undecodable_word_marked(self):
        from repro.cpu.disasm import disassemble

        listing = disassemble([0xFFFFFFFF])
        assert "undecodable" in listing

    @given(
        rd=reg, rs1=reg, rs2=reg,
        imm=st.integers(min_value=-2048, max_value=2047),
    )
    @settings(max_examples=40, deadline=None)
    def test_render_assemble_property(self, rd, rs1, rs2, imm):
        from repro.cpu.disasm import render_instruction

        for instr in (
            Instruction("xor", rd=rd, rs1=rs1, rs2=rs2),
            Instruction("mulhu", rd=rd, rs1=rs1, rs2=rs2),
            Instruction("addi", rd=rd, rs1=rs1, imm=imm),
            Instruction("lw", rd=rd, rs1=rs1, imm=imm),
            Instruction("sw", rs1=rs1, rs2=rs2, imm=imm),
        ):
            text = render_instruction(instr) + "\necall"
            back = assemble(text).instructions[0]
            assert back.mnemonic == instr.mnemonic
            assert (back.rd, back.rs1, back.rs2, back.imm) == (
                instr.rd, instr.rs1, instr.rs2, instr.imm,
            )
