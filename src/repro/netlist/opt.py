"""Netlist optimization passes (the synthesis flow's cleanup stage).

Real synthesis interleaves technology mapping with logic cleanup; this
module provides the classic post-mapping passes:

* **constant propagation** — gates fed by TIE cells collapse to
  constants or wires (a TIE0 into an AND2 kills the gate);
* **buffer collapsing** — BUF chains forward their source;
* **dead-cell elimination** — cells whose outputs reach no output port
  and no flop are removed.

Passes preserve observable behaviour; the test suite checks this both
by randomized co-simulation and *formally* via
:mod:`repro.formal.equiv`'s SAT-based equivalence checker.

Note: failure-model instrumentation deliberately feeds un-optimized
netlists to the BMC — a TIE-driven failure-model mux must survive — so
optimization is an explicit, opt-in step.
"""

from __future__ import annotations

from typing import Optional, Set

from .netlist import Instance, Net, Netlist

#: Constant-input simplifications: (cell, pin, value) -> action.
#: Actions: ("const", v) output becomes constant; ("wire", other_pin)
#: output follows the remaining input; ("inv", other_pin) inverted.
_CONST_RULES = {
    ("AND2", 0): ("const", 0),
    ("AND2", 1): ("wire",),
    ("OR2", 0): ("wire",),
    ("OR2", 1): ("const", 1),
    ("NAND2", 0): ("const", 1),
    ("NAND2", 1): ("inv",),
    ("NOR2", 0): ("inv",),
    ("NOR2", 1): ("const", 0),
    ("XOR2", 0): ("wire",),
    ("XOR2", 1): ("inv",),
    ("XNOR2", 0): ("inv",),
    ("XNOR2", 1): ("wire",),
}


class NetlistOptimizer:
    """Iterates cleanup passes to a fixed point."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.removed_cells = 0

    # -- helpers ---------------------------------------------------------
    def _constant_of(self, net: Net) -> Optional[int]:
        if net.driver is None:
            return None
        name = net.driver[0].ctype.name
        if name == "TIE0":
            return 0
        if name == "TIE1":
            return 1
        return None

    def _tie_net(self, value: int) -> Net:
        """A TIE cell's output net for ``value`` (created on demand)."""
        for inst in self.netlist.instances.values():
            if inst.ctype.name == f"TIE{value}":
                return inst.output_net
        net = self.netlist.add_net()
        self.netlist.add_instance(f"TIE{value}", {"Y": net})
        return net

    def _replace_net(self, old: Net, new: Net) -> None:
        """Repoint every load of ``old`` to ``new``."""
        for inst, pin in list(old.loads):
            self.netlist.rewire_input(inst, pin, new)

    def _protected_nets(self) -> Set[str]:
        return {
            net.name
            for port in self.netlist.ports.values()
            for net in port.nets
        }

    # -- passes ------------------------------------------------------------
    def propagate_constants(self) -> int:
        """Fold gates with constant inputs; returns cells removed."""
        protected = self._protected_nets()
        removed = 0
        changed = True
        while changed:
            changed = False
            for inst in list(self.netlist.instances.values()):
                if inst.ctype.is_seq or inst.ctype.name.startswith("TIE"):
                    continue
                out = inst.output_net
                if out.name in protected:
                    continue  # port nets keep their driver
                replacement = self._fold(inst)
                if replacement is None:
                    continue
                self.netlist.remove_instance(inst.name)
                self._replace_net(out, replacement)
                removed += 1
                changed = True
        self.removed_cells += removed
        return removed

    def _fold(self, inst: Instance) -> Optional[Net]:
        """The net that can replace ``inst``'s output, if any."""
        name = inst.ctype.name
        ins = inst.input_nets()
        consts = [self._constant_of(n) for n in ins]
        if name in ("BUF",):
            return ins[0]
        if name == "INV" and consts[0] is not None:
            return self._tie_net(1 - consts[0])
        if name == "MUX2":
            a, b, s = ins
            s_const = self._constant_of(s)
            if s_const is not None:
                return b if s_const else a
            if a is b:
                return a
            return None
        if name in ("AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"):
            for position in (0, 1):
                value = consts[position]
                if value is None:
                    continue
                other = ins[1 - position]
                action = _CONST_RULES[(name, value)]
                if action[0] == "const":
                    return self._tie_net(action[1])
                if action[0] == "wire":
                    return other
                # "inv": materialize an inverter on the other input.
                inv_out = self.netlist.add_net()
                self.netlist.add_instance(
                    "INV", {"A": other, "Y": inv_out}
                )
                return inv_out
        return None

    def collapse_buffers(self) -> int:
        """Forward BUF inputs to the BUF's loads; returns cells removed."""
        protected = self._protected_nets()
        removed = 0
        for inst in list(self.netlist.instances.values()):
            if inst.ctype.name not in ("BUF", "CLKBUF"):
                continue
            out = inst.output_net
            if out.name in protected:
                continue
            source = inst.pins["A"]
            self.netlist.remove_instance(inst.name)
            self._replace_net(out, source)
            removed += 1
        self.removed_cells += removed
        return removed

    def eliminate_dead_cells(self) -> int:
        """Remove cells that cannot influence any output or flop."""
        live: Set[str] = set()
        frontier = []
        for port in self.netlist.output_ports():
            frontier.extend(port.nets)
        for dff in self.netlist.dffs():
            live.add(dff.name)
            frontier.append(dff.pins["D"])
        seen_nets: Set[str] = set()
        while frontier:
            net = frontier.pop()
            if net.name in seen_nets or net.driver is None:
                continue
            seen_nets.add(net.name)
            inst = net.driver[0]
            if inst.name in live:
                continue
            live.add(inst.name)
            frontier.extend(inst.input_nets())
        removed = 0
        for inst in list(self.netlist.instances.values()):
            if inst.name not in live:
                self.netlist.remove_instance(inst.name)
                removed += 1
        # Drop now-disconnected internal nets.
        port_nets = self._protected_nets()
        for name, net in list(self.netlist.nets.items()):
            if (
                net.driver is None
                and not net.loads
                and not net.is_input
                and name not in port_nets
            ):
                del self.netlist.nets[name]
        self.removed_cells += removed
        return removed

    def run(self, max_rounds: int = 10) -> int:
        """All passes to a fixed point; returns total cells removed."""
        total = 0
        for _ in range(max_rounds):
            delta = (
                self.propagate_constants()
                + self.collapse_buffers()
                + self.eliminate_dead_cells()
            )
            total += delta
            if delta == 0:
                break
        self.netlist.validate()
        return total


def optimize(netlist: Netlist) -> int:
    """In-place optimization; returns the number of cells removed."""
    return NetlistOptimizer(netlist).run()
