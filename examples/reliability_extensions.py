#!/usr/bin/env python3
"""The §6.3 extensions: EM/IR-drop analysis and fuzz-based lifting.

Demonstrates the two future directions the paper sketches for Aging
Analysis and Error Lifting:

1. switching-activity profiling feeding electromigration (Black's
   equation) and dynamic IR-drop analyses of the ALU;
2. fuzzing as an alternative trace generator, compared head-to-head
   with the bounded model checker on the same failure model.

Run:  python examples/reliability_extensions.py
"""

import random
import time

from repro.aging.em import electromigration_analysis, ir_drop_analysis
from repro.cpu.alu_design import AluOp, build_alu
from repro.cpu.mappers import AluMapper
from repro.formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from repro.lifting.fuzz import FuzzTraceGenerator
from repro.lifting.instrument import instrument_for_cover
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sim.probes import profile_activity


def main() -> None:
    alu = build_alu()
    rng = random.Random(7)

    print("[1/3] Switching-activity profile (200 random ALU ops) ...")
    stimulus = [
        {
            "op": int(rng.choice(list(AluOp))),
            "a": rng.getrandbits(32),
            "b": rng.getrandbits(32),
            "mode": 0,
            "dft": 0,
        }
        for _ in range(200)
    ]
    activity = profile_activity(alu, stimulus)
    print("  busiest nets:")
    for net, rate in activity.hottest(5):
        print(f"    {net:24s} {rate:.3f} toggles/cycle")

    print("\n[2/3] Electromigration + dynamic IR drop ...")
    em = electromigration_analysis(alu, activity, temperature_c=105.0)
    print("  shortest-lived wires (Black's equation):")
    for finding in em.worst(5):
        print(f"    {finding.net:24s} J={finding.current_density:6.2f}  "
              f"MTTF={finding.mttf_years:8.1f} years")
    at_risk = em.below_lifetime(10.0)
    print(f"  wires below the 10-year mission lifetime: {len(at_risk)}")
    ir = ir_drop_analysis(alu, activity)
    print(f"  IR drop: peak demand {ir.peak_demand:.3f} vs average "
          f"{ir.average_demand:.3f} (budget {ir.budget}) -> "
          f"{'VIOLATED' if ir.violated else 'ok'}")

    print("\n[3/3] Fuzzing vs formal trace generation ...")
    mapper = AluMapper()
    model = FailureModel("a_q_r3", "res_q_r9", ViolationKind.SETUP, CMode.ONE)
    instr = instrument_for_cover(alu, model)

    t0 = time.time()
    fuzz = FuzzTraceGenerator(
        instr, assumptions=mapper.assumptions(), seed=1
    ).search(max_trials=300, max_depth=4)
    fuzz_time = time.time() - t0
    t0 = time.time()
    bmc = BoundedModelChecker(instr.netlist, assumptions=mapper.assumptions())
    formal = bmc.cover(CoverObjective(differ=instr.output_pairs), max_depth=4)
    formal_time = time.time() - t0
    print(f"  fuzz:   covered={fuzz.covered} after {fuzz.trials} trials "
          f"({fuzz_time*1000:.0f} ms)")
    print(f"  formal: {formal.status.value} at depth {formal.depth_checked} "
          f"({formal_time*1000:.0f} ms, {formal.conflicts} conflicts)")

    # And the case fuzzing cannot settle: a mission-constant start flop.
    ur_model = FailureModel(
        "dft_q_r0", "res_q_r0", ViolationKind.SETUP, CMode.ONE
    )
    ur_instr = instrument_for_cover(alu, ur_model)
    fuzz_ur = FuzzTraceGenerator(
        ur_instr, assumptions=mapper.assumptions(), seed=2
    ).search(max_trials=100, max_depth=4)
    formal_ur = BoundedModelChecker(
        ur_instr.netlist, assumptions=mapper.assumptions()
    ).cover(CoverObjective(differ=ur_instr.output_pairs), max_depth=4)
    print(f"  DFT-path fault: fuzz covered={fuzz_ur.covered} "
          f"(inconclusive); formal verdict={formal_ur.status.value} "
          "(proven harmless)")


if __name__ == "__main__":
    main()
