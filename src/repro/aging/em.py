"""Electromigration and dynamic IR-drop analysis — §6.3 extensions.

    "The Aging Analysis phase can be expanded to analyze further
    circuit reliability issues, such as dynamic IR drop and
    electromigration.  Similar to transistor aging, these issues have
    also been well-studied at the transistor and gate level."

This module adds both analyses on top of the switching-activity profile
(:class:`~repro.sim.probes.ActivityProfile`):

* **Electromigration** — sustained current through a wire slowly voids
  the metal.  Black's equation gives the mean time to failure::

      MTTF = A / J^n * exp(Ea / kT)

  with current density J proportional to the net's average switching
  current (toggle rate x driven capacitance, approximated by fanout).
  The analysis reports per-net MTTF and the nets below a mission
  lifetime.

* **Dynamic IR drop** — simultaneous switching draws supply current
  spikes.  A windowed sum of toggle activity over the netlist estimates
  peak demand; cells whose neighbourhoods exceed a budget are flagged,
  since localized droop slows gates exactly like aging does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from ..netlist.netlist import Netlist
from ..sim.probes import ActivityProfile
from .bti import BOLTZMANN_EV, SECONDS_PER_YEAR


@dataclass(frozen=True)
class EmParameters:
    """Black's-equation constants for the vega28 interconnect stack.

    Wires are assumed sized for their load (standard cell-sizing
    practice), so current *density* grows with the square root of
    fanout rather than linearly; ``prefactor`` is fitted so the
    busiest nets of a fully-active datapath land in the decades range
    at 105 C — EM failures should sit beyond, but not comfortably
    beyond, BTI aging.
    """

    prefactor: float = 0.05
    current_exponent: float = 2.0
    activation_energy_ev: float = 0.85
    #: Switching current per toggle (arbitrary units).
    current_per_toggle: float = 1.0


DEFAULT_EM = EmParameters()


@dataclass
class EmFinding:
    net: str
    current_density: float
    mttf_years: float


@dataclass
class EmReport:
    """Per-net EM lifetimes, sorted most-at-risk first."""

    netlist_name: str
    temperature_c: float
    findings: List[EmFinding] = field(default_factory=list)

    def below_lifetime(self, years: float) -> List[EmFinding]:
        return [f for f in self.findings if f.mttf_years < years]

    def worst(self, count: int = 10) -> List[EmFinding]:
        return self.findings[:count]


def electromigration_analysis(
    netlist: Netlist,
    activity: ActivityProfile,
    temperature_c: float = 105.0,
    params: EmParameters = DEFAULT_EM,
) -> EmReport:
    """Black's-equation MTTF for every driven net."""
    t_kelvin = temperature_c + 273.15
    arrhenius = math.exp(
        params.activation_energy_ev / (BOLTZMANN_EV * t_kelvin)
    )
    findings: List[EmFinding] = []
    for name, net in netlist.nets.items():
        rate = activity.toggle_rate.get(name, 0.0)
        if rate <= 0.0 or net.driver is None:
            continue
        fanout = max(1, len(net.loads))
        # Current scales with load; width is sized for load too, so
        # density grows only with sqrt(fanout).
        density = params.current_per_toggle * rate * math.sqrt(fanout)
        mttf_seconds = (
            params.prefactor
            / density**params.current_exponent
            * arrhenius
        )
        findings.append(
            EmFinding(
                net=name,
                current_density=density,
                mttf_years=mttf_seconds / SECONDS_PER_YEAR,
            )
        )
    findings.sort(key=lambda f: f.mttf_years)
    return EmReport(
        netlist_name=netlist.name,
        temperature_c=temperature_c,
        findings=findings,
    )


@dataclass
class IrDropReport:
    """Peak switching-demand estimate and the contributing nets."""

    netlist_name: str
    peak_demand: float
    average_demand: float
    budget: float
    hotspots: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def violated(self) -> bool:
        return self.peak_demand > self.budget


def ir_drop_analysis(
    netlist: Netlist,
    activity: ActivityProfile,
    budget_fraction: float = 0.25,
) -> IrDropReport:
    """Estimate dynamic supply demand from aggregate toggle activity.

    ``budget_fraction`` is the tolerated fraction of cells switching in
    one cycle (a proxy for the power grid's design margin).  The
    *demand* is the activity-weighted cell count; hotspots are the
    cells contributing the most switching current.
    """
    demands: List[Tuple[str, float]] = []
    for inst in netlist.instances.values():
        rate = activity.toggle_rate.get(inst.output_net.name, 0.0)
        weight = rate * max(1, len(inst.output_net.loads))
        demands.append((inst.name, weight))
    cell_count = max(1, len(netlist.instances))
    if activity.demand_series:
        # Per-cycle aggregate toggles, normalized to cells switching.
        peak = max(activity.demand_series) / cell_count
        average = sum(activity.demand_series) / len(
            activity.demand_series
        ) / cell_count
    else:
        average = sum(w for _, w in demands) / cell_count
        peak = average
    demands.sort(key=lambda kv: -kv[1])
    return IrDropReport(
        netlist_name=netlist.name,
        peak_demand=peak,
        average_demand=average,
        budget=budget_fraction,
        hotspots=demands[:10],
    )
