"""Vectorized scheduler scoring — numpy planning vs the scalar path.

One planning tick asks the policy to rank every arm for every
requesting device.  The scalar reference rebuilds per-device candidate
lists and walks dict posteriors; the vectorized path scores the whole
(devices x arms) matrix over the belief's numpy mirror.  Both produce
byte-identical schedules (pinned by ``tests/test_vectorized_scheduler``
and re-asserted here); this benchmark measures the throughput gap at
fleet scale.

The fleet and arm catalogue are synthetic — 1024 devices and 64 arms
(one per lifted test case plus the baseline suites, the shape
``build_arms`` produces for a full library) — so the benchmark
isolates planning cost from co-simulation.  Acceptance (non-smoke):
the vectorized greedy tick is at least 10x the scalar reference, and
thompson (whose betavariate draws are inherently sequential) never
regresses.

``VEGA_SMOKE=1`` shrinks the fleet so CI exercises the path in
seconds.
"""

import os
import time

from repro.campaign.fleet import DeviceSpec
from repro.scheduler.belief import ArmSpec, FleetBelief
from repro.scheduler.policy import PlanRequest, make_policy

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
DEVICES = 128 if SMOKE else 1024
CASE_ARMS = 16 if SMOKE else 62
REPEATS = 2 if SMOKE else 5
MIN_GREEDY_SPEEDUP = 1.5 if SMOKE else 10.0
POLICIES = ("sequential", "greedy", "thompson")

CORNERS = ("typ", "fast", "slow")
CLASSES = tuple(f"cls{i}" for i in range(6))


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fleet():
    return [
        DeviceSpec(
            index=i,
            device_id=f"dev{i:04d}",
            corner=CORNERS[i % len(CORNERS)],
            onset_years=5.0,
            faulty=False,
            model=None,
            backend_seed=i,
        )
        for i in range(DEVICES)
    ]


def _arms():
    arms = [
        ArmSpec(
            f"case:c{i}", "case", CLASSES[i % len(CLASSES)],
            400 + 13 * i, i,
        )
        for i in range(CASE_ARMS)
    ]
    arms.append(ArmSpec("suite:random", "random", "*", 5000, CASE_ARMS))
    arms.append(
        ArmSpec("suite:silifuzz", "silifuzz", "*", 6000, CASE_ARMS + 1)
    )
    return arms


def _belief(fleet, arms):
    """A mid-campaign belief: every third device has folded outcomes."""
    belief = FleetBelief(fleet, list(CLASSES), cycle_budget=25_000)
    for i in range(0, len(fleet), 3):
        arm = arms[(7 * i) % len(arms)]
        belief.record_dispatch(fleet[i].device_id, arm)
        belief.record_outcome(
            fleet[i].device_id,
            arm,
            detected=(i % 17 == 0),
            cycles=arm.cost_cycles,
        )
    return belief


def test_scheduler_vectorized(ctx, benchmark, recorder):
    fleet = _fleet()
    arms = _arms()
    belief = _belief(fleet, arms)
    requests = [PlanRequest(s.device_id, s.index) for s in fleet]
    belief.arrays(arms)  # warm the mirror (steady-state service cost)

    rows = [
        f"Vectorized planning: {DEVICES} devices, {len(arms)} arms"
        + (" [smoke]" if SMOKE else ""),
        "policy     | scalar (ms) | vectorized (ms) | speedup | devices/s",
    ]
    speedups = {}
    for name in POLICIES:
        policy = make_policy(name, seed=7)
        vec_time, vec_schedule = _timed(
            lambda: policy.plan(belief, arms, requests, 1)
        )
        ref_time, ref_schedule = _timed(
            lambda: policy.plan_reference(belief, arms, requests, 1)
        )
        assert vec_schedule.dispatches == ref_schedule.dispatches
        assert vec_schedule.retired == ref_schedule.retired
        speedup = ref_time / vec_time
        speedups[name] = speedup
        devices_per_s = DEVICES / vec_time
        rows.append(
            f"{name:10s} | {ref_time * 1e3:11.2f} | {vec_time * 1e3:15.2f} "
            f"| {speedup:6.1f}x | {devices_per_s:9.0f}"
        )
        for path, wall in (("scalar", ref_time), ("vectorized", vec_time)):
            recorder.sample(
                "scheduler_vectorized", "plan_wall_time", wall * 1e3,
                "ms/tick", policy=name, path=path, devices=DEVICES,
                arms=len(arms), timing=True,
            )
        recorder.sample(
            "scheduler_vectorized", "plan_throughput", devices_per_s,
            "devices/s", policy=name, path="vectorized", devices=DEVICES,
            arms=len(arms), timing=True, bigger_is_better=True,
        )
        recorder.sample(
            "scheduler_vectorized", "speedup", speedup, "ratio",
            policy=name, devices=DEVICES, arms=len(arms), timing=True,
            bigger_is_better=True,
        )
        recorder.sample(
            "scheduler_vectorized", "dispatches_planned",
            len(vec_schedule.dispatches), "dispatches", policy=name,
            devices=DEVICES, arms=len(arms), bigger_is_better=True,
        )
    recorder.table("scheduler_vectorized", "\n".join(rows))

    assert speedups["greedy"] >= MIN_GREEDY_SPEEDUP, (
        f"vectorized greedy planning only {speedups['greedy']:.1f}x "
        f"the scalar reference"
    )
    # Thompson's draws are inherently sequential (stream-for-stream
    # identical betavariates); vectorized candidate masks and posterior
    # reads must still keep it from regressing.
    assert speedups["thompson"] >= (0.5 if SMOKE else 0.9), (
        f"vectorized thompson planning regressed to "
        f"{speedups['thompson']:.2f}x the scalar reference"
    )

    policy = make_policy("greedy", seed=7)
    schedule = benchmark(lambda: policy.plan(belief, arms, requests, 1))
    assert len(schedule.dispatches) + len(schedule.retired) == DEVICES
