"""Configuration for the Vega workflow.

One dataclass gathers every tunable the three phases consume, with
defaults matching the paper's experimental setup (10-year mission
lifetime, worst-case corner, mitigation off by default, 1 % overhead
budget for profile-guided integration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Seconds in one year, used when converting lifetimes for the BTI model.
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass
class AgingAnalysisConfig:
    """Phase 1 — SP profiling and aging-aware STA.

    Attributes:
        lifetime_years: Assumed mission lifetime; the paper uses the
            10-year figure common for mission-critical parts (AEC Q100).
        temperature_c: Worst-case junction temperature for the
            reaction-diffusion model.
        clock_margin: Fraction of post-synthesis slack retained when the
            design's target period is derived.  Real flows sign off with
            a few percent of positive slack; aging must be able to eat
            through it for violations to appear, exactly as in the paper
            where designs "initially meet required timing constraints".
        max_paths_per_endpoint: Cap on enumerated violating paths per
            capture flop, keeping Table 3 path counts bounded.
        clock_gating_sp: SP assumed for gated-off clock buffers.  Clock
            gating parks the gated subtree at a constant level, the
            paper's "primary cause of uneven transistor aging" in the
            clock network (§2.3.1).
        profile_workers: Process count for sharding SP profiling across
            ``multiprocessing`` workers (chunked per workload and cycle
            range).  1 runs serially, 0 means one worker per CPU;
            profiles are bit-identical regardless of the worker count,
            and platforms without ``fork`` fall back to serial.
        profile_lanes: Packed (bit-parallel) stimulus vectors per
            simulated word during SP profiling.
        sta_vectorized: Use the numpy levelized arrival propagation in
            the STA.  Arrival times are bit-identical to the dict-based
            reference (kept behind ``vectorized=False`` for equivalence
            testing); this flag exists for A/B benchmarking.
    """

    lifetime_years: float = 10.0
    temperature_c: float = 105.0
    clock_margin: float = 0.03
    max_paths_per_endpoint: int = 400
    clock_gating_sp: float = 0.02
    profile_workers: int = 1
    profile_lanes: int = 256
    sta_vectorized: bool = True


@dataclass
class ErrorLiftingConfig:
    """Phase 2 — failure modelling, BMC, instruction construction.

    Attributes:
        enable_mitigation: Generate edge-qualified failure models
            (§3.3.4), up to 4 test cases per endpoint pair instead of 2.
        bmc_depth: Unroll depth for the bounded model checker.  Our
            modules are feed-forward pipelines, so pipeline depth + 2
            covers all reachable behaviour.
        bmc_conflict_budget: CDCL conflict budget per query; exhausting
            it yields the paper's "FF" (formal failure) outcome.
        constants: The constant wrong values C to try (Eq. 2/3).
        workers: Process count for sharding endpoint pairs across
            ``multiprocessing`` workers.  1 (the default) runs serially,
            0 means one worker per CPU; platforms without ``fork``
            silently fall back to serial.  Results are deterministic
            regardless of the worker count.
        incremental_bmc: Use the incremental BMC engine (one persistent
            solver, cover gated behind assumption literals) instead of
            rebuilding a fresh solver per unroll depth.  Verdicts and
            traces are identical either way; the fresh path exists for
            equivalence testing and benchmarking.
        keep_going: Degrade gracefully when lifting a single endpoint
            pair raises: the pair is recorded as a ``PairResult`` with
            its ``error`` set (FF in the Table 4 accounting, plus a
            ``lifting.pair_error`` trace event) and the run continues
            with the remaining pairs.  Disable to re-raise immediately,
            e.g. while debugging a mapper.
    """

    enable_mitigation: bool = False
    bmc_depth: int = 4
    bmc_conflict_budget: int = 200_000
    constants: Tuple[int, ...] = (0, 1)
    workers: int = 1
    incremental_bmc: bool = True
    keep_going: bool = True


@dataclass
class TestIntegrationConfig:
    """Phase 3 — library generation and profile-guided integration.

    (The ``Test`` prefix is domain vocabulary, not a pytest suite —
    hence ``__test__ = False`` below.)

    Attributes:
        overhead_threshold: Maximum tolerated estimated overhead
            (fraction of dynamic instructions) before the integrator
            inserts a probability gate.
        min_block_executions: A basic block must run at least this many
            times in the profile to be a candidate integration point
            ("routinely accessed").
        max_block_share: ...and at most this fraction of total dynamic
            instructions ("not frequently invoked").
        random_seed: Seed for randomized test scheduling.
    """

    __test__ = False  # keep pytest from collecting this dataclass

    overhead_threshold: float = 0.01
    min_block_executions: int = 4
    max_block_share: float = 0.10
    random_seed: int = 2024


@dataclass
class CampaignConfig:
    """Fleet fault-injection campaigns (``repro.campaign``).

    A campaign Monte-Carlos the paper's deployment story: a *fleet* of
    devices, each with its own aging corner and violation-onset draw,
    attacked by the detection suites that a data-center operator would
    schedule.  All randomness flows through named RNG streams
    (:mod:`repro.core.rng`) keyed by ``seed``, so the same config
    always samples the same fleet.

    Attributes:
        devices: Virtual fleet size.
        seed: Campaign seed; every per-device draw derives from it.
        shard_size: Devices per execution shard.  A shard is both the
            unit of parallel work and the unit of resume — each
            completed shard publishes a checkpoint through the artifact
            cache, and a resumed campaign skips completed shards.
        workers: Process count for sharding devices across ``fork``
            workers.  1 runs serially, 0 means one worker per CPU;
            reports are bit-identical for any worker count, and
            platforms without ``fork`` fall back to serial.
        suites: Detection suites to run against every faulty device:
            ``"vega"`` (the lifted library), ``"random"`` (the Table 7
            baseline), ``"silifuzz"`` (the top-down fuzzing baseline).
        strategy: Scheduling strategy for the vega/random suites.
        mission_years: Deployment window; a device whose onset draw
            lands inside it is faulty in the field.
        onset_sigma: Log-normal spread of per-device onset draws around
            the unit's base onset (workload-dependent aging makes onset
            a distribution over the population, not a constant).
        worst_corner_fraction: Fraction of the fleet operating at the
            sign-off worst corner; the rest run the typical corner,
            whose slower aging pushes onset later.
        base_onset_years: Fleet-median violation onset.  ``None`` asks
            the engine to derive it from a
            :class:`~repro.core.lifetime.LifetimeSimulator` sweep of
            the unit under analysis.
        random_suite_size: Test count of the random baseline suite
            (``None``: match the vega library, as Table 7 does).
        silifuzz_snapshots: Corpus size for the SiliFuzz-style baseline.
        max_suite_instructions: Instruction budget per suite execution.
        packed: Batch distinct failure models into packed multi-model
            gate-sim passes (one shadow-mux bit-plane per model) before
            shard dispatch.  Results are byte-identical either way, so
            — like ``workers`` — this never enters the campaign key.
        pack_width: Maximum bit-planes per packed group.
    """

    devices: int = 12
    seed: int = 2024
    shard_size: int = 4
    workers: int = 1
    suites: Tuple[str, ...] = ("vega", "random", "silifuzz")
    strategy: str = "sequential"
    mission_years: float = 10.0
    onset_sigma: float = 0.35
    worst_corner_fraction: float = 0.5
    base_onset_years: Optional[float] = None
    random_suite_size: Optional[int] = None
    silifuzz_snapshots: int = 6
    max_suite_instructions: int = 500_000
    #: Resolve distinct failure models in packed multi-model gate-sim
    #: groups before shard dispatch (byte-identical to the serial path
    #: for any pack width, so neither knob enters the campaign key).
    packed: bool = True
    pack_width: int = 64
    #: Surrogate-triage mode (``repro.surrogate.triage``): score every
    #: sampled device with the trained aging surrogate and hand only
    #: the predicted-risky tail to the exact per-device pipeline.  The
    #: tail is re-verified exactly, so flagged devices' report rows are
    #: byte-identical to the all-exact profiled campaign.
    surrogate_triage: bool = False
    #: Path of the trained surrogate snapshot the triage mode loads
    #: (``None``: the caller passes a model object directly).
    surrogate_model: Optional[str] = None
    #: Fraction of the fleet whose dominant wearout mechanism is
    #: hot-carrier injection (:mod:`repro.aging.hci`) instead of BTI.
    #: The mechanism draw uses its own ``campaign.mechanism`` RNG
    #: stream, gated behind ``hci_fraction > 0`` so the default fleet
    #: is byte-identical to pre-HCI campaigns.
    hci_fraction: float = 0.0
    #: Onset multiplier applied to HCI-dominated devices (activity-heavy
    #: workloads push HCI victims to violate earlier than the unit's
    #: BTI-derived base onset), further scaled by the corner's
    #: ``hci_stress_scale``.
    hci_onset_scale: float = 0.75


@dataclass
class SurrogateConfig:
    """ML aging surrogate (``repro.surrogate``).

    The surrogate learns (workload SP profile, corner, age) ->
    (violation onset, worst slack) from labeled pairs generated by the
    exact charlib+STA pipeline, then triages sampled fleets so only
    the predicted-risky tail pays for exact analysis.

    Attributes:
        samples: Training-sweep size (labeled rows generated).
        seed: Seed for the ``surrogate.*`` RNG streams (sample draws,
            per-net workload noise, train/holdout split).
        level_buckets: Logic-depth buckets in the SP feature vector
            (:meth:`repro.sim.probes.SPProfile.feature_vector`).
        skew_min / skew_max: Workload skew-intensity range.  Positive
            intensity pushes SPs toward 0 (the maximally BTI-stressed
            state for ``stress_state == 0`` cells), negative toward 1
            (de-stress); the sampled fleet draws intensities uniformly
            from this range.
        noise: Per-net spread of the skew weights (each net's skew is
            scaled by ``1 - noise * u`` with per-net uniform ``u``), so
            two devices at the same intensity still have distinct
            profiles.
        age_grid: Ages (years) the exact oracle sweeps when labeling
            onset; also the resolution of exact per-device onsets.
        censor_factor: Onset label assigned to devices that never
            violate inside the grid horizon, as a multiple of the last
            grid age (right-censored regression target).
        holdout_fraction: Fraction of the dataset held out from
            training for validation.
        ridge_lambda: L2 regularization of the numpy ridge regressor.
        recall_floor: Minimum risky-tail recall on the held-out rows;
            validation fails closed below it.
        threshold_margin: Relative safety margin added to the
            calibrated triage threshold (flag if predicted onset <=
            threshold * (1 + margin)).
        workers: Fork workers for dataset generation; 0 = one per CPU.
            Datasets are byte-identical for any worker count.
    """

    samples: int = 96
    seed: int = 7
    level_buckets: int = 8
    skew_min: float = -1.2
    skew_max: float = 0.2
    noise: float = 0.5
    age_grid: Tuple[float, ...] = tuple(
        round(1.0 + 0.5 * i, 6) for i in range(31)
    )
    censor_factor: float = 1.5
    holdout_fraction: float = 0.25
    ridge_lambda: float = 1e-2
    recall_floor: float = 0.95
    threshold_margin: float = 0.25
    workers: int = 1


@dataclass
class AdversaryConfig:
    """Targeted wearout-attack workload search (``repro.adversary``).

    The attacker crafts operand streams that skew signal probabilities
    toward the BTI-stressed state on chosen victim paths (targeted
    wearout attacks, arXiv 2508.16868).  The search is a seeded
    candidate pool refined by beam hill-climbing; every draw flows
    through named ``adversary.*`` RNG streams keyed by ``seed``, and
    candidate scoring reuses the packed SP profiler, so results are
    byte-identical for any worker count.

    Attributes:
        seed: Seed for the ``adversary.*`` RNG streams (candidate
            generation, mutation, attacked-subset draw).
        candidates: Seeded candidate streams in the initial pool.
        rounds: Beam-refinement rounds after seeding.  Round
            checkpoints are keyed by round index (never by the total),
            so a longer resumed search extends a shorter run's prefix.
        beam: Survivors kept per round.
        mutations: Mutants spawned per survivor per round.
        stream_ops: Operations per candidate operand stream.
        mutation_ops: Stream positions rewritten per mutation.
        lanes: Packed stimulus lanes used when profiling candidates.
        drain_cycles: Pipeline drain cycles appended per profile.
        acceleration_cap: Upper bound on the attack's onset
            acceleration factor (physical wearout saturates; an
            unbounded power law would not).
        attack_fraction: Fraction of the fleet the attacker reaches
            (1.0: every device runs the attacker's stream).
        workers: Fork workers for candidate profiling; 0 = one per
            CPU.  Never enters cache keys or results.
    """

    seed: int = 99
    candidates: int = 8
    rounds: int = 3
    beam: int = 3
    mutations: int = 4
    stream_ops: int = 192
    mutation_ops: int = 24
    lanes: int = 64
    drain_cycles: int = 2
    acceleration_cap: float = 6.0
    attack_fraction: float = 1.0
    workers: int = 1


@dataclass
class ResponseConfig:
    """Detection→response reconfiguration modelling (``repro.response``).

    On detection, an operator can derate the clock, re-synthesize the
    violating logic, or approximate the violating cone (automated
    design approximation against aging, arXiv 2203.07962).  The engine
    evaluates each policy against the unit's aged timing and reports
    recovered lifetime vs accuracy/frequency cost.

    Attributes:
        policies: Response policies to evaluate, in order:
            ``"derate"`` (stretch the clock period until the mission-age
            violations clear), ``"resynth"`` (re-synthesize: optimize
            the netlist, prove exactness with the lifting engine's
            equivalence checker, and model the violating cone's cells
            as fresh silicon), ``"approximate"`` (bypass the violating
            cone's capture logic and measure the accuracy cost).
        derate_step / max_derate: Clock-derating search grid (fractions
            of the signed-off period).
        mission_years: Deployment window recovery is measured against.
        age_grid: Ages (years) swept when locating violation onset;
            scans early-exit at the first violating age.
        censor_factor: Onset assigned when a policy pushes the first
            violation past the grid horizon (right-censored), as a
            multiple of the last grid age.
        equiv_depth / equiv_conflict_budget: Sequential-equivalence
            check parameters (:func:`repro.formal.equiv
            .check_equivalence`).
        accuracy_samples: Random operand frames simulated on original
            vs approximated netlists to estimate the accuracy cost.
        accuracy_depth: Cycles each frame is held so results reach the
            output flops.
        seed: Seed for the ``response.accuracy`` RNG stream.
        workers: Fork workers for re-profiling modified netlists;
            0 = one per CPU.  Never enters cache keys or results.
    """

    policies: Tuple[str, ...] = ("derate", "resynth", "approximate")
    derate_step: float = 0.02
    max_derate: float = 0.30
    mission_years: float = 10.0
    age_grid: Tuple[float, ...] = tuple(float(a) for a in range(1, 17))
    censor_factor: float = 1.5
    equiv_depth: int = 3
    equiv_conflict_budget: int = 150_000
    accuracy_samples: int = 128
    accuracy_depth: int = 3
    seed: int = 17
    workers: int = 1


@dataclass
class SchedulerConfig:
    """Online fleet scheduler & detection service (``repro.scheduler``).

    The scheduler turns the batch campaign into a service: simulated
    device clients request test plans, execute them, and stream results
    back; a dispatch policy decides which test each device runs next
    from the fleet's aging belief state.

    Attributes:
        policy: Dispatch policy name — ``"sequential"`` (static
            round-robin through the arm catalogue, the paper's
            scheduling), ``"greedy"`` (cost-aware: highest posterior
            detection probability per cycle), or ``"thompson"``
            (Thompson-sampling bandit over the Beta posteriors).
        policy_seed: Seed for the policy's named RNG streams (only the
            Thompson policy draws randomness; draws are keyed by
            ``(policy_seed, tick, device_index)`` so scheduling is
            byte-deterministic).
        batch_size: Maximum plan requests dispatched per batch (one
            scheduling *tick*).
        batch_window: Virtual deadline — event-loop passes the batcher
            waits after the first pending request before closing a
            partial batch.
        ingest_queue: Bound of the result-ingestion queue.  A full
            queue rejects ``submit_result`` with a retry-after;
            rejections are operational telemetry only and never enter
            the deterministic event log.
        checkpoint_every: Ingested-event interval between belief
            checkpoints.  Checkpoints land on tick boundaries so a
            restarted service resumes from a consistent belief state.
        cycle_budget: Per-device test-cycle budget.  A device stops
            receiving dispatches once its spent cycles would exceed it
            — the "equal per-device cycle budget" axis the policy
            comparison holds constant.
        fleet_blend: Weight of the fleet-level posterior mixed into a
            device's posterior when policies score an arm.  0 scores
            each device in isolation; 1 weighs fleet-wide evidence as
            strongly as the device's own outcomes.
        lockstep: Arrival-order-invariant service mode, the contract
            the distributed shard workers run under: a batch's results
            ingest only once the whole in-flight batch has returned
            (then sorted by device index), so the event log and belief
            trajectory are independent of submit interleaving — what
            makes a multi-process run byte-identical to its in-process
            reference.  Off by default; the single-process service
            keeps its lower-latency eager ingestion.
    """

    policy: str = "thompson"
    policy_seed: int = 7
    batch_size: int = 16
    batch_window: int = 4
    ingest_queue: int = 64
    checkpoint_every: int = 25
    cycle_budget: int = 25_000
    fleet_blend: float = 0.5
    lockstep: bool = False


@dataclass
class VegaConfig:
    """Top-level configuration: one section per workflow phase.

    Attributes:
        cache_dir: Root of the content-addressed artifact cache.  When
            set, ``run_aging_analysis`` stores/reuses SP profiles and
            aged delay models keyed by (netlist structural hash,
            workload content, cycle count, aging parameters, corner).
            ``None`` disables caching.
    """

    aging: AgingAnalysisConfig = field(default_factory=AgingAnalysisConfig)
    lifting: ErrorLiftingConfig = field(default_factory=ErrorLiftingConfig)
    integration: TestIntegrationConfig = field(
        default_factory=TestIntegrationConfig
    )
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    adversary: AdversaryConfig = field(default_factory=AdversaryConfig)
    response: ResponseConfig = field(default_factory=ResponseConfig)
    cache_dir: Optional[str] = None

    def with_mitigation(self, enabled: bool = True) -> "VegaConfig":
        """Copy of this config with the §3.3.4 mitigation toggled."""
        import copy

        clone = copy.deepcopy(self)
        clone.lifting.enable_mitigation = enabled
        return clone
