"""Operand-stream capture for signal-probability profiling.

Aging Analysis (§3.2.1) simulates the netlist under representative
workloads.  Here the workload runs once on the ISA simulator with
operand logging enabled; the recorded per-operation input vectors are
then replayed — bit-parallel — through the gate-level netlist by
:func:`repro.sim.probes.profile_operand_stream`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..cpu.asm import assemble
from ..cpu.cpu import Cpu, GoldenAlu, GoldenFpu, GoldenMdu
from .programs import REPRESENTATIVE, WORKLOADS


def collect_operand_streams(
    names: Sequence[str] = (REPRESENTATIVE,),
    max_ops_per_unit: int = 20_000,
) -> Tuple[List[Dict[str, int]], List[Dict[str, int]]]:
    """Run workloads and capture (alu_stream, fpu_stream).

    Each stream entry maps the unit's input-port names to the values of
    one dynamic operation, ready for bit-parallel SP profiling.
    """
    streams = collect_unit_streams(names, max_ops_per_unit)
    return streams["alu"], streams["fpu"]


def collect_unit_streams(
    names: Sequence[str] = (REPRESENTATIVE,),
    max_ops_per_unit: int = 20_000,
) -> Dict[str, List[Dict[str, int]]]:
    """Operand streams for all three units: alu, fpu, and mdu."""
    alu = GoldenAlu()
    fpu = GoldenFpu()
    mdu = GoldenMdu()
    for backend in (alu, fpu, mdu):
        backend.log_operands = True
    for name in names:
        workload = WORKLOADS[name]
        cpu = Cpu(assemble(workload.source), alu=alu, fpu=fpu, mdu=mdu)
        cpu.run()
    return {
        "alu": alu.operand_log[:max_ops_per_unit],
        "fpu": fpu.operand_log[:max_ops_per_unit],
        "mdu": mdu.operand_log[:max_ops_per_unit],
    }
