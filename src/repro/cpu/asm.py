"""Two-pass assembler for the VR32 ISA.

Supports labels, ``.text``/``.data`` sections, ``.word``/``.half``/
``.byte``/``.space``/``.align`` data directives, character/decimal/hex
immediates, and the usual pseudo-instructions (``li``, ``la``, ``mv``,
``not``, ``neg``, ``j``, ``call``, ``ret``, ``nop``, ``beqz``/``bnez``,
``bgt``/``ble``/``bgtu``/``bleu``).

The output :class:`Program` carries decoded instructions (PC = index*4),
an initialized data image, the symbol table, and the set of basic-block
leader PCs used by profile-guided test integration (§3.4.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .isa import FREG_NAMES, Fmt, Instruction, REG_NAMES, SPECS

#: Data segment base address; code addresses start at 0.
DATA_BASE = 0x10000


class AsmError(Exception):
    """Raised with a line number for any parse/resolve failure."""


@dataclass
class Program:
    """An assembled program ready for the CPU simulator."""

    instructions: List[Instruction] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    symbols: Dict[str, int] = field(default_factory=dict)
    leaders: Set[int] = field(default_factory=set)
    source: str = ""

    @property
    def size(self) -> int:
        return len(self.instructions)

    def label_pc(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AsmError(f"unknown symbol {name!r}") from None


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        if token.startswith("'") and token.endswith("'") and len(token) >= 3:
            return ord(token[1:-1].encode().decode("unicode_escape"))
        return int(token, 0)
    except ValueError:
        raise AsmError(f"line {line}: bad integer {token!r}") from None


_RELOC_RE = re.compile(r"^%(hi|lo)\(\s*([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?\s*\)$")


def _split_reloc(token: str):
    """Parse ``%hi(sym+off)`` / ``%lo(sym+off)``; None if not a reloc.

    These are the standard RISC-V relocation operators: ``%hi`` is the
    upper 20 bits (with the +0x800 rounding that pairs with a
    sign-extended ``%lo``), letting code materialize any absolute
    address with ``lui`` + a load/store offset — without touching the
    ALU, which matters for self-checking aging tests (see
    :mod:`repro.integration.library_gen`).
    """
    match = _RELOC_RE.match(token.strip())
    if not match:
        return None
    kind, symbol, offset = match.groups()
    delta = int(offset.replace(" ", "")) if offset else 0
    return kind, symbol, delta


def _apply_reloc(kind: str, address: int) -> int:
    if kind == "hi":
        return ((address + 0x800) >> 12) & 0xFFFFF
    low = address & 0xFFF
    return low - 0x1000 if low >= 0x800 else low


def _reg(token: str, line: int) -> int:
    token = token.strip()
    if token not in REG_NAMES:
        raise AsmError(f"line {line}: unknown register {token!r}")
    return REG_NAMES[token]


def _freg(token: str, line: int) -> int:
    token = token.strip()
    if token not in FREG_NAMES:
        raise AsmError(f"line {line}: unknown FP register {token!r}")
    return FREG_NAMES[token]


_MEM_RE = re.compile(r"^\s*(.*?)\s*\(\s*(\w+)\s*\)\s*$")


def _mem_operand(token: str, line: int, value=None) -> Tuple[int, int]:
    """Parse ``imm(rs1)`` (imm may be a ``%lo(...)`` relocation)."""
    match = _MEM_RE.match(token)
    if not match:
        raise AsmError(f"line {line}: expected imm(reg), got {token!r}")
    imm_text = match.group(1) or "0"
    imm = value(imm_text) if value else _parse_int(imm_text, line)
    return imm, _reg(match.group(2), line)


@dataclass
class _PendingInstr:
    mnemonic: str
    operands: List[str]
    line: int
    pc: int


def assemble(source: str) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    program = Program(source=source)
    pending: List[_PendingInstr] = []
    data = bytearray()
    section = "text"
    pc = 0

    def expand_pseudo(mnemonic: str, ops: List[str], line: int) -> List[Tuple[str, List[str]]]:
        if mnemonic == "nop":
            return [("addi", ["x0", "x0", "0"])]
        if mnemonic == "mv":
            return [("addi", [ops[0], ops[1], "0"])]
        if mnemonic == "not":
            return [("xori", [ops[0], ops[1], "-1"])]
        if mnemonic == "neg":
            return [("sub", [ops[0], "x0", ops[1]])]
        if mnemonic == "j":
            return [("jal", ["x0", ops[0]])]
        if mnemonic == "call":
            return [("jal", ["ra", ops[0]])]
        if mnemonic == "ret":
            return [("jalr", ["x0", "0(ra)"])]
        if mnemonic == "beqz":
            return [("beq", [ops[0], "x0", ops[1]])]
        if mnemonic == "bnez":
            return [("bne", [ops[0], "x0", ops[1]])]
        if mnemonic == "bgt":
            return [("blt", [ops[1], ops[0], ops[2]])]
        if mnemonic == "ble":
            return [("bge", [ops[1], ops[0], ops[2]])]
        if mnemonic == "bgtu":
            return [("bltu", [ops[1], ops[0], ops[2]])]
        if mnemonic == "bleu":
            return [("bgeu", [ops[1], ops[0], ops[2]])]
        if mnemonic in ("li", "la"):
            # Resolved in pass 2 (symbols may not exist yet): kept as a
            # pseudo and expanded to lui+addi or addi there.  We always
            # reserve two slots so addresses are stable.
            return [("__li0", ops), ("__li1", ops)]
        return [(mnemonic, ops)]

    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#")[0].split("//")[0].strip()
        if not text:
            continue
        while True:
            label_match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$", text)
            if not label_match:
                break
            label, text = label_match.groups()
            address = pc if section == "text" else DATA_BASE + len(data)
            if label in program.symbols:
                raise AsmError(f"line {line_number}: duplicate label {label!r}")
            program.symbols[label] = address
            if section == "text":
                program.leaders.add(pc)
            text = text.strip()
        if not text:
            continue

        if text.startswith("."):
            parts = text.split(None, 1)
            directive = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if directive == ".text":
                section = "text"
            elif directive == ".data":
                section = "data"
            elif directive == ".word":
                for token in rest.split(","):
                    value = _parse_int(token, line_number) & 0xFFFFFFFF
                    data += value.to_bytes(4, "little")
            elif directive == ".half":
                for token in rest.split(","):
                    value = _parse_int(token, line_number) & 0xFFFF
                    data += value.to_bytes(2, "little")
            elif directive == ".byte":
                for token in rest.split(","):
                    data.append(_parse_int(token, line_number) & 0xFF)
            elif directive == ".space":
                data += bytes(_parse_int(rest, line_number))
            elif directive == ".align":
                boundary = 1 << _parse_int(rest, line_number)
                while len(data) % boundary:
                    data.append(0)
            elif directive in (".globl", ".global", ".section"):
                pass  # accepted and ignored
            else:
                raise AsmError(
                    f"line {line_number}: unknown directive {directive!r}"
                )
            continue

        if section != "text":
            raise AsmError(
                f"line {line_number}: instruction outside .text"
            )
        parts = text.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [o.strip() for o in operand_text.split(",")] if operand_text else []
        for real_mnemonic, real_ops in expand_pseudo(mnemonic, operands, line_number):
            pending.append(
                _PendingInstr(real_mnemonic, real_ops, line_number, pc)
            )
            pc += 4

    program.data = data
    program.leaders.add(0)

    # Pass 2: resolve symbols and build Instruction objects.
    def resolve(token: str, line: int) -> int:
        token = token.strip()
        if token in program.symbols:
            return program.symbols[token]
        return _parse_int(token, line)

    for item in pending:
        program.instructions.append(_build(item, program, resolve))

    # Leaders: entry, every branch/jump target, every fall-through.
    for index, instr in enumerate(program.instructions):
        if instr.target is not None:
            program.leaders.add(instr.target)
            program.leaders.add((index + 1) * 4)
        if instr.mnemonic == "jalr":
            program.leaders.add((index + 1) * 4)
    return program


def _build(item: _PendingInstr, program: Program, resolve) -> Instruction:
    name, ops, line = item.mnemonic, item.operands, item.line

    def value(token: str) -> int:
        reloc = _split_reloc(token)
        if reloc:
            kind, symbol, delta = reloc
            return _apply_reloc(kind, resolve(symbol, line) + delta)
        return resolve(token, line)

    if name == "__li0":
        value = resolve(ops[1], line) & 0xFFFFFFFF
        upper = (value + 0x800) >> 12 & 0xFFFFF
        return Instruction("lui", rd=_reg(ops[0], line), imm=upper, source_line=line)
    if name == "__li1":
        value = resolve(ops[1], line) & 0xFFFFFFFF
        low = value & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        return Instruction(
            "addi", rd=_reg(ops[0], line), rs1=_reg(ops[0], line),
            imm=low, source_line=line,
        )
    if name not in SPECS:
        raise AsmError(f"line {line}: unknown mnemonic {name!r}")
    fmt = SPECS[name].fmt

    def need(count: int) -> None:
        if len(ops) != count:
            raise AsmError(
                f"line {line}: {name} expects {count} operands, got {len(ops)}"
            )

    if fmt is Fmt.R:
        need(3)
        return Instruction(
            name, rd=_reg(ops[0], line), rs1=_reg(ops[1], line),
            rs2=_reg(ops[2], line), source_line=line,
        )
    if fmt is Fmt.I:
        need(3)
        return Instruction(
            name, rd=_reg(ops[0], line), rs1=_reg(ops[1], line),
            imm=value(ops[2]), source_line=line,
        )
    if fmt is Fmt.LOAD:
        need(2)
        imm, rs1 = _mem_operand(ops[1], line, value)
        return Instruction(name, rd=_reg(ops[0], line), rs1=rs1, imm=imm, source_line=line)
    if fmt is Fmt.STORE:
        need(2)
        imm, rs1 = _mem_operand(ops[1], line, value)
        return Instruction(name, rs2=_reg(ops[0], line), rs1=rs1, imm=imm, source_line=line)
    if fmt is Fmt.BRANCH:
        need(3)
        return Instruction(
            name, rs1=_reg(ops[0], line), rs2=_reg(ops[1], line),
            target=resolve(ops[2], line), source_line=line,
        )
    if fmt is Fmt.JAL:
        need(2)
        return Instruction(
            name, rd=_reg(ops[0], line), target=resolve(ops[1], line),
            source_line=line,
        )
    if fmt is Fmt.JALR:
        need(2)
        imm, rs1 = _mem_operand(ops[1], line, value)
        return Instruction(name, rd=_reg(ops[0], line), rs1=rs1, imm=imm, source_line=line)
    if fmt is Fmt.U:
        need(2)
        return Instruction(
            name, rd=_reg(ops[0], line), imm=value(ops[1]) & 0xFFFFF,
            source_line=line,
        )
    if fmt is Fmt.FR:
        need(3)
        return Instruction(
            name, fd=_freg(ops[0], line), fs1=_freg(ops[1], line),
            fs2=_freg(ops[2], line), source_line=line,
        )
    if fmt is Fmt.FCMP:
        need(3)
        return Instruction(
            name, rd=_reg(ops[0], line), fs1=_freg(ops[1], line),
            fs2=_freg(ops[2], line), source_line=line,
        )
    if fmt is Fmt.FLOAD:
        need(2)
        imm, rs1 = _mem_operand(ops[1], line, value)
        return Instruction(name, fd=_freg(ops[0], line), rs1=rs1, imm=imm, source_line=line)
    if fmt is Fmt.FSTORE:
        need(2)
        imm, rs1 = _mem_operand(ops[1], line, value)
        return Instruction(name, fs2=_freg(ops[0], line), rs1=rs1, imm=imm, source_line=line)
    if fmt is Fmt.FMVXH:
        need(2)
        return Instruction(name, rd=_reg(ops[0], line), fs1=_freg(ops[1], line), source_line=line)
    if fmt is Fmt.FMVHX:
        need(2)
        return Instruction(name, fd=_freg(ops[0], line), rs1=_reg(ops[1], line), source_line=line)
    if fmt is Fmt.FCVTWH:
        need(2)
        return Instruction(name, rd=_reg(ops[0], line), fs1=_freg(ops[1], line), source_line=line)
    if fmt is Fmt.FCVTHW:
        need(2)
        return Instruction(name, fd=_freg(ops[0], line), rs1=_reg(ops[1], line), source_line=line)
    if fmt is Fmt.SYS:
        if name == "frflags":
            need(1)
            return Instruction(name, rd=_reg(ops[0], line), source_line=line)
        if name == "fsflags":
            need(1)
            return Instruction(name, rs1=_reg(ops[0], line), source_line=line)
        return Instruction(name, source_line=line)
    raise AsmError(f"line {line}: unhandled format for {name}")  # pragma: no cover
