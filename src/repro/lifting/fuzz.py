"""Fuzzing-based trace generation — the paper's §6.3 future direction.

    "One avenue involves fast exploration of useful test cases via
    random and fuzzing-based methods."

This module is that avenue: instead of asking the bounded model checker
for a witness, it *simulates* the cover-instrumented netlist (original +
shadow replica + failure model) under random input sequences until the
shadow outputs diverge from the originals.

Compared with the formal path it is:

* often faster per query on shallow faults (no CNF, no search),
* unable to prove unreachability — a fruitless fuzz run means
  "unknown", never the paper's UR verdict, and
* biased toward easy-to-hit faults; rare activation conditions can take
  unboundedly many trials.

The ablation benchmark ``benchmarks/test_ablation_fuzz_vs_formal.py``
quantifies the trade-off on the real ALU/FPU pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..formal.bmc import InputAssumption
from ..formal.trace import Trace
from ..sim.gatesim import GateSimulator
from .instrument import CoverInstrumentation


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign."""

    covered: bool
    trace: Optional[Trace] = None
    trials: int = 0
    cycles_simulated: int = 0


class FuzzTraceGenerator:
    """Random search for failure-activating input sequences.

    Honors the same :class:`InputAssumption` restrictions the BMC uses,
    so generated traces stay within valid-instruction space and remain
    convertible by the ISA mappers.
    """

    def __init__(
        self,
        instrumentation: CoverInstrumentation,
        assumptions: Sequence[InputAssumption] = (),
        seed: int = 0,
    ):
        self.instrumentation = instrumentation
        self.netlist = instrumentation.netlist
        self.seed = seed
        self._sim = GateSimulator(self.netlist)
        self._choices: Dict[str, Optional[List[int]]] = {}
        restricted = {a.port: list(a.allowed) for a in assumptions}
        for port in self.netlist.input_ports():
            self._choices[port.name] = restricted.get(port.name)
        self._widths = {
            p.name: p.width for p in self.netlist.input_ports()
        }

    def _random_frame(self, rng: random.Random) -> Dict[str, int]:
        frame = {}
        for name, width in self._widths.items():
            allowed = self._choices[name]
            if allowed is not None:
                frame[name] = rng.choice(allowed)
            else:
                frame[name] = rng.getrandbits(width)
        return frame

    def search(
        self,
        max_trials: int = 200,
        max_depth: int = 6,
    ) -> FuzzResult:
        """Run up to ``max_trials`` random sequences of ``max_depth``.

        Each trial resets the netlist (matching the BMC's reset
        assumption), drives random legal inputs, and checks the cover
        condition — any original/shadow output pair differing — each
        cycle.  On a hit, the trace is truncated at the covering cycle.
        """
        rng = random.Random(self.seed)
        pairs = self.instrumentation.output_pairs
        cycles = 0
        for trial in range(1, max_trials + 1):
            self._sim.reset()
            frames: List[Dict[str, int]] = []
            observed: List[Dict[str, int]] = []
            for depth in range(max_depth):
                frame = self._random_frame(rng)
                frames.append(frame)
                self._sim.evaluate(frame)
                cycles += 1
                snapshot = {}
                hit = False
                mismatch_nets = []
                for orig, shadow in pairs:
                    ov = self._sim.read_net(orig) & 1
                    sv = self._sim.read_net(shadow) & 1
                    snapshot[orig] = ov
                    snapshot[shadow] = sv
                    if ov != sv:
                        hit = True
                        mismatch_nets.append(orig)
                observed.append(snapshot)
                if hit:
                    trace = Trace(
                        netlist_name=self.netlist.name,
                        inputs=frames,
                        observed=observed,
                        property_cycle=depth,
                        mismatch_nets=mismatch_nets,
                    )
                    return FuzzResult(
                        covered=True,
                        trace=trace,
                        trials=trial,
                        cycles_simulated=cycles,
                    )
                self._sim.step(frame)
                cycles += 1  # evaluate + step both touch the netlist
            # no hit this trial; next
        return FuzzResult(covered=False, trials=max_trials, cycles_simulated=cycles)
