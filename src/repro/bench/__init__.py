"""Declarative benchmark harness with a canonical JSON trajectory.

Every benchmark under ``benchmarks/`` registers :class:`Sample` records
(metric, value, unit, metadata) plus its human-readable table through a
session :class:`BenchRecorder`; the recorder atomically writes both the
unchanged ``benchmarks/results/<name>.txt`` table and a canonical
``BENCH_<name>.json`` document at the repo root.  ``repro bench
compare`` diffs two such documents with a slowdown threshold (the CI
regression gate) and ``repro bench report`` renders a trajectory as
markdown.

The sample model follows PerfKitBenchmarker's: one flat record per
measured quantity, with enough metadata (device count, workers, lanes,
seed, git rev, timestamp) to match the *same* measurement across runs
and to explain it afterwards.  Canonical serialization — sorted keys,
compact separators, floats normalized to 9 significant digits — makes
re-serializing a parsed document byte-identical, so documents can be
committed, diffed, and content-addressed.
"""

from .compare import (
    VOLATILE_KEYS,
    BenchCompareError,
    ComparisonResult,
    Finding,
    compare_documents,
    compare_files,
)
from .recorder import BenchRecorder, atomic_write_text
from .report import render_report
from .sample import (
    BENCH_SCHEMA,
    Sample,
    canonical_dumps,
    document_from_samples,
    parse_document,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchCompareError",
    "BenchRecorder",
    "ComparisonResult",
    "Finding",
    "Sample",
    "VOLATILE_KEYS",
    "atomic_write_text",
    "canonical_dumps",
    "compare_documents",
    "compare_files",
    "document_from_samples",
    "parse_document",
    "render_report",
]
