"""Tests for the assembler, ISA simulator, gate designs, and co-sim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import float16 as f16
from repro.cpu.alu_design import AluOp, alu_reference, build_alu, build_alu_module
from repro.cpu.asm import AsmError, DATA_BASE, assemble
from repro.cpu.cosim import GateAluBackend, GateFpuBackend
from repro.cpu.cpu import Cpu, CpuError, CpuStall, run_program
from repro.cpu.fpu_design import FpuOp, build_fpu, fpu_reference
from repro.sim.gatesim import GateSimulator

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestAssembler:
    def test_labels_and_branches(self):
        program = assemble(
            """
            start:
                li a0, 0
                li a1, 5
            loop:
                add a0, a0, a1
                addi a1, a1, -1
                bnez a1, loop
                ecall
            """
        )
        assert program.symbols["start"] == 0
        assert "loop" in program.symbols
        assert program.instructions[-1].mnemonic == "ecall"

    def test_li_expands_to_two_instructions(self):
        program = assemble("li a0, 0x12345678\necall")
        assert program.instructions[0].mnemonic == "lui"
        assert program.instructions[1].mnemonic == "addi"

    def test_data_section(self):
        program = assemble(
            """
            .data
            table: .word 1, 2, 3
            msg:   .byte 'A', 'B'
            .text
            la a0, table
            lw a1, 0(a0)
            ecall
            """
        )
        assert program.symbols["table"] == DATA_BASE
        assert program.data[:4] == (1).to_bytes(4, "little")
        assert program.data[12:14] == b"AB"

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("x:\nx:\necall")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate a0, a1")

    def test_unknown_register_rejected(self):
        with pytest.raises(AsmError, match="register"):
            assemble("add q7, a0, a1")

    def test_bad_operand_count(self):
        with pytest.raises(AsmError, match="expects"):
            assemble("add a0, a1")

    def test_leaders_include_branch_targets(self):
        program = assemble(
            """
            li a0, 1
            beqz a0, skip
            addi a0, a0, 1
            skip:
            ecall
            """
        )
        assert program.symbols["skip"] in program.leaders
        assert 0 in program.leaders

    def test_comments_stripped(self):
        program = assemble("addi a0, x0, 1 # comment\n// full line\necall")
        assert program.size == 2


class TestCpuExecution:
    def test_arith_loop(self):
        result = run_program(
            """
                li a0, 0
                li a1, 5
            loop:
                add a0, a0, a1
                addi a1, a1, -1
                bnez a1, loop
                ecall
            """
        )
        assert result.exit_value == 5 + 4 + 3 + 2 + 1

    def test_memory_roundtrip(self):
        result = run_program(
            """
            .data
            buf: .space 16
            .text
                la t0, buf
                li t1, 0xdeadbeef
                sw t1, 4(t0)
                lw a0, 4(t0)
                ecall
            """
        )
        assert result.exit_value == 0xDEADBEEF

    def test_byte_and_half_access(self):
        result = run_program(
            """
            .data
            b: .word 0
            .text
                la t0, b
                li t1, -2
                sb t1, 0(t0)
                lb a0, 0(t0)
                ecall
            """
        )
        assert result.exit_value == 0xFFFFFFFE  # sign-extended -2

    def test_shift_and_logic(self):
        result = run_program(
            """
                li a0, 1
                slli a0, a0, 31
                srai a0, a0, 31
                ecall
            """
        )
        assert result.exit_value == 0xFFFFFFFF

    def test_jal_jalr_call_ret(self):
        result = run_program(
            """
                li a0, 0
                call addfive
                call addfive
                ecall
            addfive:
                addi a0, a0, 5
                ret
            """
        )
        assert result.exit_value == 10

    def test_x0_is_hardwired_zero(self):
        result = run_program(
            """
                li x0, 99
                mv a0, x0
                ecall
            """
        )
        assert result.exit_value == 0

    def test_fp_basic(self):
        one = 0x3C00
        result = run_program(
            f"""
                li t0, {one}
                fmv.h.x fa0, t0
                fadd.h fa1, fa0, fa0
                fmv.x.h a0, fa1
                ecall
            """
        )
        assert result.exit_value == 0x4000  # 2.0

    def test_fp_flags_accumulate(self):
        max_finite = 0x7BFF
        result = run_program(
            f"""
                li t0, {max_finite}
                fmv.h.x fa0, t0
                fadd.h fa1, fa0, fa0
                frflags a0
                ecall
            """
        )
        assert result.exit_value & f16.FLAG_OF
        assert result.exit_value & f16.FLAG_NX

    def test_fsflags_clears(self):
        result = run_program(
            """
                li t0, 0x7BFF
                fmv.h.x fa0, t0
                fadd.h fa1, fa0, fa0
                li t1, 0
                fsflags t1
                frflags a0
                ecall
            """
        )
        assert result.exit_value == 0

    def test_fcvt_roundtrip(self):
        result = run_program(
            """
                li t0, 100
                fcvt.h.w fa0, t0
                fcvt.w.h a0, fa0
                ecall
            """
        )
        assert result.exit_value == 100

    def test_runaway_program_stalls(self):
        with pytest.raises(CpuStall):
            run_program("loop: j loop\necall", max_instructions=1000)

    def test_pc_off_end_detected(self):
        with pytest.raises(CpuError, match="fell off"):
            run_program("addi a0, x0, 1")

    def test_cycle_accounting(self):
        result = run_program(
            """
                addi a0, x0, 1
                lw a1, 0(x0)
                ecall
            """
        )
        # addi 1 + lw 2 + ecall 1 = 4 cycles.
        assert result.cycles == 4

    def test_block_profile_counts(self):
        program = assemble(
            """
                li a1, 3
            loop:
                addi a1, a1, -1
                bnez a1, loop
                ecall
            """
        )
        cpu = Cpu(program, profile=True)
        result = cpu.run()
        loop_pc = program.symbols["loop"]
        assert result.block_counts[loop_pc] == 3
        assert result.block_counts[0] == 1


_ALU_SIM_CACHE = {}


def _alu_sim():
    if "sim" not in _ALU_SIM_CACHE:
        _ALU_SIM_CACHE["sim"] = GateSimulator(build_alu())
    return _ALU_SIM_CACHE["sim"]


class TestGateAluDesign:
    @given(op=st.sampled_from(list(AluOp)), a=U32, b=U32)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, op, a, b):
        sim = _alu_sim()
        sim.reset()
        frame = {"op": int(op), "a": a, "b": b, "mode": 0, "dft": 0}
        sim.step(frame)
        sim.step(frame)
        out = sim.step(frame)
        assert out["result"] == alu_reference(int(op), a, b)


class TestCosim:
    @pytest.fixture(scope="class")
    def alu_netlist(self):
        return build_alu()

    @pytest.fixture(scope="class")
    def fpu_netlist(self):
        return build_fpu()

    def test_gate_alu_backend_matches_golden(self, alu_netlist):
        backend = GateAluBackend(alu_netlist)
        import random

        rng = random.Random(1)
        for _ in range(40):
            op = rng.choice(list(AluOp))
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            assert backend.execute(int(op), a, b) == alu_reference(int(op), a, b)

    def test_gate_fpu_backend_matches_golden(self, fpu_netlist):
        backend = GateFpuBackend(fpu_netlist)
        import random

        rng = random.Random(2)
        for _ in range(40):
            op = rng.randrange(8)
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            assert backend.execute(op, a, b) == fpu_reference(op, a, b)

    def test_program_on_gate_backends(self, alu_netlist, fpu_netlist):
        source = """
            li a0, 21
            li a1, 2
            add a2, a0, a1
            sub a3, a2, a1
            xor a0, a2, a3
            ecall
        """
        golden = run_program(source)
        gate = run_program(source, alu=GateAluBackend(alu_netlist))
        assert gate.exit_value == golden.exit_value

    def test_failing_alu_corrupts_program(self, alu_netlist):
        """A failing netlist visibly corrupts software results."""
        from repro.lifting.instrument import make_failing_netlist
        from repro.lifting.models import CMode, FailureModel, ViolationKind

        # Find a stage1 -> stage2 flop pair that exists in the design.
        start = next(
            d.name for d in alu_netlist.dffs() if d.name.startswith("a_q_r0")
        )
        end = next(
            d.name for d in alu_netlist.dffs() if d.name.startswith("res_q_r0")
        )
        model = FailureModel(start, end, ViolationKind.SETUP, CMode.ONE)
        failing = make_failing_netlist(alu_netlist, model)
        source = """
            li a0, 0
            li t0, 2
            li t1, 4
            add a1, t0, t1
            add a2, t0, t1
            xor a0, a1, a2
            ecall
        """
        # Toggling operands arms the model; results of back-to-back
        # identical adds can then disagree.
        gate = run_program(source, alu=GateAluBackend(failing.netlist))
        golden = run_program(source)
        # The corrupted run may or may not fire on this exact stream,
        # but it must at least execute to completion.
        assert gate.instructions == golden.instructions

    def test_failing_fpu_valid_chain_stalls(self, fpu_netlist):
        from repro.lifting.instrument import make_failing_netlist
        from repro.lifting.models import CMode, FailureModel, ViolationKind

        model = FailureModel(
            "v_q_r0", "ov_q_r0", ViolationKind.HOLD, CMode.ZERO
        )
        failing = make_failing_netlist(fpu_netlist, model)
        backend = GateFpuBackend(failing.netlist, timeout=8)
        with pytest.raises(CpuStall):
            # Issue two ops: the valid pulse toggles v_q, the model
            # fires, and out_valid never rises.
            backend.execute(int(FpuOp.FADD), 0x3C00, 0x3C00)
            backend.execute(int(FpuOp.FADD), 0x3C00, 0x3C00)
