"""Distributed service ingest — sustained throughput across shards.

The sharded service (:mod:`repro.scheduler.distributed`) splits the
fleet belief across worker processes behind a frame router.  This
benchmark drives complete distributed runs at 1, 2, 4, and 8 shards
over one fixed fleet and records, per shard count:

* **ingest throughput** — result events folded into shard beliefs per
  second of end-to-end wall time;
* **p99 batch latency** — 99th-percentile wall time per planning tick
  (one batch planned + its results ingested), pooled over shards;
* **drain time** — wall time from the last client retiring to every
  shard's done frame landing (graceful drain + final checkpoint).

Every run must uphold the merge-exactness invariant (merged shard
digest == single-process fold of the concatenated event stream) —
throughput that corrupts the belief does not count.  ``VEGA_SMOKE=1``
shrinks the fleet so CI exercises all shard counts in seconds.
"""

import os

import pytest

from repro.core.config import CampaignConfig, SchedulerConfig
from repro.scheduler import DistributedSession, ScheduleSession

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
SHARDS = (1, 2, 4, 8)
DEVICES = 16 if SMOKE else 64
#: Floor on end-to-end ingest throughput at every shard count
#: (events/sec).  Process spawn + drain are inside the wall time, so
#: the floor is far below the steady-state rate.
MIN_EVENTS_PER_S = 1.0 if SMOKE else 5.0

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="multi-process shards need os.fork",
)


def _session(ctx):
    config = CampaignConfig(
        devices=DEVICES,
        seed=2024,
        silifuzz_snapshots=3,
        base_onset_years=6.0,
    )
    sched = SchedulerConfig(
        policy="thompson",
        policy_seed=7,
        batch_size=8,
        batch_window=4,
        ingest_queue=64,
        checkpoint_every=1_000_000,  # no checkpoint I/O in the timing
        cycle_budget=25_000,
    )
    return ScheduleSession(
        ctx.alu.netlist,
        "alu",
        ctx.alu.suite(False),
        ctx.alu.failure_models(),
        config=config,
        scheduler=sched,
    )


def test_distributed_ingest(ctx, benchmark, recorder):
    # Warm shared caches (suite assembly, instrumented netlists, arm
    # cost measurement) so the table reflects steady-state service
    # cost, not one-time pipeline setup.
    _session(ctx).run()

    rows = [
        f"Distributed service ingest ({DEVICES} devices, thompson "
        "policy)" + (" [smoke]" if SMOKE else ""),
        "shards | events | wall (s) | events/s | p99 tick (ms) "
        "| drain (ms)",
    ]
    measured = {}
    for shards in SHARDS:
        outcome = DistributedSession(_session(ctx), shards=shards).run(
            mode="process"
        )
        # Throughput only counts if the run is correct: exact shard
        # merge, fold-referee agreement, no operational alerts.
        assert outcome.report is not None
        assert outcome.report.devices == DEVICES
        assert outcome.fold_digest == outcome.merged_digest
        assert not outcome.alerts

        stats = outcome.stats
        wall = stats["wall_seconds"]
        events_per_s = stats.get("events_per_second", 0.0)
        p99_ms = 1000.0 * stats.get("p99_tick_wall_seconds", 0.0)
        drain_ms = 1000.0 * stats.get("drain_wall_seconds", 0.0)
        measured[shards] = events_per_s
        rows.append(
            f"{shards:6d} | {outcome.report.events:6d} | {wall:8.3f} "
            f"| {events_per_s:8.1f} | {p99_ms:13.2f} | {drain_ms:10.2f}"
        )
        meta = dict(
            shards=shards, devices=DEVICES, policy="thompson",
            seed=2024,
        )
        recorder.sample(
            "distributed_ingest", "ingest_rate", events_per_s,
            "events/s", timing=True, bigger_is_better=True, **meta,
        )
        recorder.sample(
            "distributed_ingest", "p99_tick_latency", p99_ms,
            "ms/tick", timing=True, **meta,
        )
        recorder.sample(
            "distributed_ingest", "drain_time", drain_ms, "ms",
            timing=True, **meta,
        )
        recorder.sample(
            "distributed_ingest", "events_ingested",
            outcome.report.events, "events", bigger_is_better=True,
            **meta,
        )
    recorder.table("distributed_ingest", "\n".join(rows))

    for shards, events_per_s in measured.items():
        assert events_per_s >= MIN_EVENTS_PER_S, (
            f"{shards} shard(s): sustained ingest "
            f"{events_per_s:.1f} events/s below floor "
            f"{MIN_EVENTS_PER_S}"
        )

    report = benchmark(
        lambda: DistributedSession(_session(ctx), shards=SHARDS[-1])
        .run(mode="process")
        .report
    )
    assert report.devices == DEVICES
