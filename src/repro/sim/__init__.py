"""Gate-level simulation: compiled simulator, SP probes, VCD output."""

from .gatesim import (
    GateSimulator,
    SimulationError,
    pack_vectors,
    simulated_cycles,
    unpack_vectors,
)
from .parallel_profile import (
    profile_operand_stream_parallel,
    profile_operand_stream_reference,
    profile_workload_streams,
)
from .probes import (
    ActivityProfile,
    SPCounter,
    SPProfile,
    profile_activity,
    profile_operand_stream,
    profile_stimulus,
)
from .vcd import VcdWriter
from .vcd_reader import VcdParseError, parse_vcd, sp_profile_from_vcd

__all__ = [
    "GateSimulator",
    "SimulationError",
    "pack_vectors",
    "unpack_vectors",
    "ActivityProfile",
    "SPCounter",
    "SPProfile",
    "profile_activity",
    "profile_operand_stream",
    "profile_operand_stream_parallel",
    "profile_operand_stream_reference",
    "profile_stimulus",
    "profile_workload_streams",
    "simulated_cycles",
    "VcdWriter",
    "VcdParseError",
    "parse_vcd",
    "sp_profile_from_vcd",
]
