"""Signal-probability (SP) profiling — §3.2.1 of the paper.

Vega attaches a counter to the output port of every cell (Q for DFFs, Y
for gates), driven by a free-running profiling clock, and simulates
representative workloads.  The fraction of samples at logic "1" is the
cell's SP, which feeds the BTI stress model.

Here the counter clock is the simulator's cycle loop: every simulated
cycle samples every cell output, including cycles where the design's
own state does not advance — the software analogue of the paper's
"separate free-running clock".  Packed (bit-parallel) simulation counts
all vectors in a word via popcount.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..netlist.netlist import Netlist
from .gatesim import GateSimulator


def net_levels(netlist: Netlist) -> Dict[str, int]:
    """Logic depth of every combinational net.

    Primary inputs and DFF outputs are depth-0 sources; a cell's output
    net sits one past its deepest combinational fanin.  Only nets
    driven by combinational cells appear in the result (sources are
    implicit zeros), mirroring :meth:`Netlist.levelize` ordering.
    """
    levels: Dict[str, int] = {}
    for inst in netlist.levelize():
        depth = 0
        for net in inst.input_nets():
            depth = max(depth, levels.get(net.name, 0))
        levels[inst.output_net.name] = depth + 1
    return levels


@dataclass
class SPProfile:
    """Per-net signal probabilities for one netlist.

    ``sp[name]`` is the fraction of observed samples in which net
    ``name`` held logic "1".  ``samples`` is the total sample count the
    profile aggregates (cycles x packed vectors).

    ``ones`` optionally carries the raw per-net one-counts behind
    ``sp``.  Profiles built by :class:`SPCounter` always have it; with
    counts present, :meth:`merge` is *exact* (integer sums, one final
    division) and therefore associative bit-for-bit — the property the
    parallel profiling engine relies on to make sharded runs
    reproducible for any worker count.
    """

    netlist_name: str
    sp: Dict[str, float] = field(default_factory=dict)
    samples: int = 0
    ones: Optional[Dict[str, int]] = None

    def of_instance(self, netlist: Netlist, instance_name: str) -> float:
        """SP of a cell's output net."""
        inst = netlist.instances[instance_name]
        return self.sp[inst.output_net.name]

    def net_samples(self, name: str) -> int:
        """How many of this profile's samples observed net ``name``.

        Every sampled cycle observes every net of the netlist, so a net
        either appears in ``sp`` (observed ``samples`` times) or was
        never part of this profile's netlist view (0 times).
        """
        return self.samples if name in self.sp else 0

    def merge(self, other: "SPProfile") -> "SPProfile":
        """Sample-weighted merge of two profiles of the same netlist.

        A net present in only one operand is weighted by the sample
        count of the profiles that actually observed it — *not* averaged
        against an implicit SP of 0.0 for the other profile's samples,
        which would silently deflate BTI stress for that net.  When both
        operands carry raw one-counts the merge is exact and
        associative: counts add, and SP is one integer division.
        """
        if other.netlist_name != self.netlist_name:
            raise ValueError("cannot merge profiles of different netlists")
        total = self.samples + other.samples
        if total == 0:
            return SPProfile(
                self.netlist_name,
                dict(self.sp),
                0,
                dict(self.ones) if self.ones is not None else None,
            )
        names = set(self.sp) | set(other.sp)
        if self.ones is not None and other.ones is not None:
            merged_ones: Dict[str, int] = {}
            merged_sp: Dict[str, float] = {}
            for name in names:
                count = self.ones.get(name, 0) + other.ones.get(name, 0)
                observed = self.net_samples(name) + other.net_samples(name)
                merged_ones[name] = count
                merged_sp[name] = count / observed
            return SPProfile(self.netlist_name, merged_sp, total, merged_ones)
        merged = {}
        for name in names:
            w_self = self.net_samples(name)
            w_other = other.net_samples(name)
            a = self.sp.get(name, 0.0) * w_self
            b = other.sp.get(name, 0.0) * w_other
            merged[name] = (a + b) / (w_self + w_other)
        return SPProfile(self.netlist_name, merged, total)

    def to_json(self) -> str:
        payload = {
            "netlist": self.netlist_name,
            "samples": self.samples,
            "sp": self.sp,
        }
        if self.ones is not None:
            payload["ones"] = self.ones
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SPProfile":
        data = json.loads(text)
        ones = data.get("ones")
        return cls(
            netlist_name=data["netlist"],
            sp=dict(data["sp"]),
            samples=int(data["samples"]),
            ones={k: int(v) for k, v in ones.items()} if ones is not None else None,
        )

    # -- feature extraction (shared by profiling and the surrogate) -----
    def level_aggregates(
        self, netlist: Netlist, buckets: int = 8
    ) -> List[Tuple[float, float, float]]:
        """(mean, min, max) SP per logic-depth bucket.

        Combinational nets are grouped by their logic depth (see
        :func:`net_levels`) into ``buckets`` equal-width depth bands, so
        the aggregates separate shallow decode logic from the deep
        arithmetic cones where aged paths actually fail.  Empty buckets
        report the neutral (0.5, 0.5, 0.5) so the feature width is
        fixed for any netlist.  Iteration is name-sorted throughout —
        the aggregates are bit-identical for any profile dict order.
        """
        levels = net_levels(netlist)
        max_level = max(levels.values(), default=0)
        groups: List[List[float]] = [[] for _ in range(buckets)]
        for name in sorted(levels):
            sp = self.sp.get(name)
            if sp is None:
                continue
            bucket = min(
                buckets - 1, (levels[name] - 1) * buckets // max(1, max_level)
            )
            groups[bucket].append(sp)
        out: List[Tuple[float, float, float]] = []
        for values in groups:
            if values:
                out.append(
                    (sum(values) / len(values), min(values), max(values))
                )
            else:
                out.append((0.5, 0.5, 0.5))
        return out

    def feature_vector(self, netlist: Netlist, buckets: int = 8):
        """Fixed-width numpy summary of this profile over ``netlist``.

        Layout (``7 + 3 * buckets`` floats):

        0. mean SP over all profiled nets
        1. population standard deviation of SP
        2. fraction of nets with SP <= 0.1 (near-DC low: the maximally
           BTI-stressed population for ``stress_state == 0`` cells)
        3. fraction of nets with SP >= 0.9 (near-DC high)
        4. mean toggle proxy ``2 * sp * (1 - sp)``
        5. mean SP of DFF outputs (architectural-state stress)
        6. mean SP of combinational nets
        7... per-level (mean, min, max) triples from
           :meth:`level_aggregates`

        All reductions run in name-sorted order so the vector is
        bit-identical regardless of profile construction order.
        """
        import numpy as np

        names = sorted(self.sp)
        values = [self.sp[name] for name in names]
        n = max(1, len(values))
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        low = sum(1 for v in values if v <= 0.1) / n
        high = sum(1 for v in values if v >= 0.9) / n
        toggle = sum(2.0 * v * (1.0 - v) for v in values) / n
        dff_nets = sorted(
            dff.output_net.name for dff in netlist.dffs()
            if dff.output_net.name in self.sp
        )
        dff_mean = (
            sum(self.sp[name] for name in dff_nets) / len(dff_nets)
            if dff_nets else 0.5
        )
        comb_names = sorted(net_levels(netlist))
        comb = [self.sp[name] for name in comb_names if name in self.sp]
        comb_mean = sum(comb) / len(comb) if comb else 0.5
        head = [mean, var ** 0.5, low, high, toggle, dff_mean, comb_mean]
        tail = [
            value
            for triple in self.level_aggregates(netlist, buckets)
            for value in triple
        ]
        return np.asarray(head + tail, dtype=np.float64)


class SPCounter:
    """Accumulates 1-state (and optional toggle) counts for every net.

    Toggle counting compares consecutive samples per net; it feeds the
    switching-activity analyses (electromigration and dynamic IR drop,
    :mod:`repro.aging.em`) the paper lists as Aging Analysis extensions.
    """

    def __init__(self, netlist: Netlist, count_toggles: bool = False):
        self.netlist = netlist
        self.ones: Dict[str, int] = {name: 0 for name in netlist.nets}
        self.samples = 0
        self.count_toggles = count_toggles
        self.toggles: Dict[str, int] = {name: 0 for name in netlist.nets}
        self.demand_series: List[float] = []
        self._previous: Optional[Dict[str, int]] = None

    def sample(self, sim: GateSimulator, mask: int = 1) -> None:
        """Record one cycle's values (all packed vectors at once)."""
        width = mask.bit_count()
        values = sim.values
        if self.count_toggles:
            previous = self._previous
            snapshot: Dict[str, int] = {}
            cycle_toggles = 0
            for name, index in sim._net_index.items():
                value = values[index] & mask
                self.ones[name] += value.bit_count()
                snapshot[name] = value
                if previous is not None:
                    flips = (value ^ previous[name]).bit_count()
                    self.toggles[name] += flips
                    cycle_toggles += flips
            if previous is not None:
                self.demand_series.append(cycle_toggles / max(1, width))
            self._previous = snapshot
        else:
            for name, index in sim._net_index.items():
                self.ones[name] += (values[index] & mask).bit_count()
        self.samples += width

    def reset_history(self) -> None:
        """Forget the previous sample (e.g. across packed batches)."""
        self._previous = None

    def profile(self) -> SPProfile:
        if self.samples == 0:
            raise ValueError("no samples collected")
        return SPProfile(
            netlist_name=self.netlist.name,
            sp={
                name: ones / self.samples for name, ones in self.ones.items()
            },
            samples=self.samples,
            ones=dict(self.ones),
        )

    def activity(self) -> "ActivityProfile":
        """Per-net toggle rates (transitions per sampled cycle)."""
        if not self.count_toggles:
            raise ValueError("toggle counting was not enabled")
        if self.samples == 0:
            raise ValueError("no samples collected")
        return ActivityProfile(
            netlist_name=self.netlist.name,
            toggle_rate={
                name: count / self.samples
                for name, count in self.toggles.items()
            },
            samples=self.samples,
            demand_series=list(self.demand_series),
        )


@dataclass
class ActivityProfile:
    """Per-net switching activity (toggles per cycle).

    ``demand_series`` records the aggregate toggle count per sampled
    cycle, feeding the dynamic IR-drop analysis.
    """

    netlist_name: str
    toggle_rate: Dict[str, float] = field(default_factory=dict)
    samples: int = 0
    demand_series: List[float] = field(default_factory=list)

    def hottest(self, count: int = 10):
        """The most active nets, busiest first."""
        return sorted(
            self.toggle_rate.items(), key=lambda kv: -kv[1]
        )[:count]


def profile_stimulus(
    netlist: Netlist,
    stimulus: Iterable[Mapping[str, int]],
    packed: bool = False,
    mask: int = 1,
) -> SPProfile:
    """Simulate ``stimulus`` and return the resulting SP profile.

    In packed mode each stimulus entry maps port names to bit-plane
    lists and ``mask`` selects the active vectors.
    """
    sim = GateSimulator(netlist)
    counter = SPCounter(netlist)
    for vector in stimulus:
        sim.step(dict(vector), mask=mask, packed=packed)
        counter.sample(sim, mask=mask)
    return counter.profile()


def profile_activity(
    netlist: Netlist,
    stimulus: Iterable[Mapping[str, int]],
) -> "ActivityProfile":
    """Simulate ``stimulus`` with toggle counting; return the activity.

    Scalar-mode only: toggle counting compares consecutive cycles, so
    packed lanes (independent vectors) would not form a time series.
    """
    sim = GateSimulator(netlist)
    counter = SPCounter(netlist, count_toggles=True)
    for vector in stimulus:
        sim.step(dict(vector))
        counter.sample(sim)
    return counter.activity()


def profile_operand_stream(
    netlist: Netlist,
    operands: Sequence[Mapping[str, int]],
    lanes: int = 256,
    drain_cycles: int = 2,
) -> SPProfile:
    """Profile a long operand stream with bit-parallel batching.

    ``operands`` is a list of per-port integer values (one dict per
    operation, e.g. the ALU inputs recorded while a workload ran on the
    ISA simulator).  Operations are packed ``lanes`` at a time into one
    simulated stream, which keeps profiling long workloads cheap.
    ``drain_cycles`` extra cycles let pipelined results reach the
    output registers so their SP is observed too.
    """
    from .gatesim import pack_vectors

    if not operands:
        raise ValueError("empty operand stream")
    sim = GateSimulator(netlist)
    counter = SPCounter(netlist)
    ports = {p.name: p.width for p in netlist.input_ports()}
    for start in range(0, len(operands), lanes):
        batch = operands[start : start + lanes]
        mask = (1 << len(batch)) - 1
        packed_inputs: Dict[str, list] = {}
        for name, width in ports.items():
            values = [op.get(name, 0) for op in batch]
            packed_inputs[name] = pack_vectors(values, width)
        sim.reset()
        for _ in range(1 + drain_cycles):
            sim.step(packed_inputs, mask=mask, packed=True)
            counter.sample(sim, mask=mask)
    return counter.profile()
