"""Fleet triage: surrogate-cleared cohort + exactly re-verified tail.

The triage contract:

* Every device of a ``config.devices``-sized fleet is drawn from the
  ``surrogate.fleet`` stream — a corner, a workload-skew intensity,
  and (through the shared :func:`~repro.surrogate.dataset
  .device_sp_vector` stream) a per-net SP vector.
* The surrogate scores every device in microseconds.  Devices whose
  predicted onset clears the calibrated threshold form the *cleared
  cohort* and never touch the exact pipeline; the rest are the
  *predicted-risky tail*.
* The tail is re-verified **exactly**: :func:`profiled_fleet` runs the
  per-device oracle (charlib + aging STA, linear onset scan) and
  builds real :class:`~repro.campaign.fleet.DeviceSpec`\\ s, which the
  unmodified :class:`~repro.campaign.engine.CampaignEngine` executes.
  Because a device's spec is a pure function of its index — the rng
  draw order is fixed and the oracle consumes no randomness — the
  tail's report rows are byte-identical to the rows an all-exact
  campaign over the full fleet would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aging.corners import TYPICAL_CORNER, WORST_CORNER
from ..campaign.engine import CampaignEngine
from ..campaign.fleet import DeviceSpec, assign_model
from ..campaign.report import CampaignReport
from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import CampaignConfig, SurrogateConfig
from ..core.rng import stream_rng, stream_seed
from ..integration.library_gen import AgingLibrary
from ..lifting.models import FailureModel
from ..netlist.cells import CellLibrary
from ..netlist.netlist import Netlist
from ..scheduler.belief import BROAD_CLASS
from ..sim.probes import SPProfile
from .dataset import device_sp_vector
from .features import FleetFeaturizer
from .model import RidgeSurrogate
from .oracle import ExactAgingOracle


def fleet_draws(
    config: CampaignConfig, surrogate: SurrogateConfig, index: int
):
    """(rng, corner, intensity) for one triaged device.

    The returned rng has consumed exactly the corner and intensity
    draws; :func:`profiled_spec` continues it for the faulty-model
    assignment, so the exact and surrogate paths stay in lockstep.
    """
    rng = stream_rng("surrogate.fleet", config.seed, index)
    corner = (
        WORST_CORNER
        if rng.random() < config.worst_corner_fraction
        else TYPICAL_CORNER
    )
    intensity = rng.uniform(surrogate.skew_min, surrogate.skew_max)
    return rng, corner, intensity


def profiled_spec(
    index: int,
    oracle: ExactAgingOracle,
    featurizer: FleetFeaturizer,
    base_sp: np.ndarray,
    config: CampaignConfig,
    surrogate: SurrogateConfig,
    models: Sequence[FailureModel],
) -> DeviceSpec:
    """Exactly analyzed device spec for one fleet index.

    A pure function of ``index``: the onset comes from the exact
    oracle (censored clean devices land at
    ``oracle.censored_onset`` — strictly beyond the mission window, so
    they are healthy), then the model draw continues the device's own
    rng stream.  Analyzing any subset of indices, in any order, yields
    the same specs as analyzing the full fleet.
    """
    rng, corner, intensity = fleet_draws(config, surrogate, index)
    sp = device_sp_vector(
        base_sp, intensity, surrogate.noise, config.seed, index
    )
    onset = oracle.onset(featurizer.profile(sp), corner)
    onset_years = oracle.censored_onset if onset is None else onset
    faulty, model = assign_model(
        rng, list(models), onset_years, config.mission_years
    )
    return DeviceSpec(
        index=index,
        device_id=f"dev-{index:04d}",
        corner=corner.name,
        onset_years=round(onset_years, 6),
        faulty=faulty,
        model=model,
        backend_seed=stream_seed("campaign.backend", config.seed, index)
        & 0xFFFFFFFF,
    )


def profiled_fleet(
    netlist: Netlist,
    library: CellLibrary,
    base_profile: SPProfile,
    models: Sequence[FailureModel],
    config: CampaignConfig,
    surrogate: Optional[SurrogateConfig] = None,
    indices: Optional[Sequence[int]] = None,
) -> List[DeviceSpec]:
    """Exact per-device analysis for ``indices`` (default: all devices).

    This is the expensive path the surrogate exists to amortize: every
    listed device pays a full oracle onset scan.
    """
    surrogate = surrogate or SurrogateConfig()
    featurizer = FleetFeaturizer(netlist, buckets=surrogate.level_buckets)
    oracle = ExactAgingOracle(netlist, library, config=surrogate)
    base_sp = featurizer.base_vector(base_profile)
    if indices is None:
        indices = range(config.devices)
    return [
        profiled_spec(
            index, oracle, featurizer, base_sp, config, surrogate, models
        )
        for index in indices
    ]


@dataclass(frozen=True)
class TriagedDevice:
    """The surrogate's verdict on one sampled device."""

    index: int
    device_id: str
    corner: str
    intensity: float
    predicted_onset_years: float
    predicted_slack_ns: float
    flagged: bool

    def as_row(self) -> Dict[str, Any]:
        return {
            "device": self.device_id,
            "corner": self.corner,
            "intensity": self.intensity,
            "predicted_onset_years": self.predicted_onset_years,
            "predicted_slack_ns": self.predicted_slack_ns,
            "flagged": self.flagged,
        }


@dataclass
class TriageOutcome:
    """A whole fleet's triage split."""

    threshold: float
    mission_years: float
    devices: List[TriagedDevice] = field(default_factory=list)

    @property
    def flagged(self) -> List[TriagedDevice]:
        return [d for d in self.devices if d.flagged]

    @property
    def cleared(self) -> List[TriagedDevice]:
        return [d for d in self.devices if not d.flagged]

    @property
    def flagged_indices(self) -> List[int]:
        return [d.index for d in self.devices if d.flagged]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "mission_years": self.mission_years,
            "cleared": len(self.cleared),
            "flagged": len(self.flagged),
            "devices": [d.as_row() for d in self.devices],
        }


def triage_fleet(
    model: RidgeSurrogate,
    netlist: Netlist,
    base_profile: SPProfile,
    config: CampaignConfig,
    surrogate: Optional[SurrogateConfig] = None,
    featurizer: Optional[FleetFeaturizer] = None,
) -> TriageOutcome:
    """Score every device of the fleet; split cleared vs flagged.

    Devices are scored at ``config.mission_years`` of age (the horizon
    the operator cares about).  The threshold is the model's
    calibrated one — a model without calibration is refused, since an
    uncalibrated threshold silently clears everything.
    """
    threshold = model.threshold
    if threshold is None:
        raise ValueError(
            "surrogate model carries no calibrated threshold; train it "
            "with train_surrogate before triage"
        )
    surrogate = surrogate or SurrogateConfig()
    if featurizer is None:
        featurizer = FleetFeaturizer(
            netlist, buckets=surrogate.level_buckets
        )
    base_sp = featurizer.base_vector(base_profile)
    devices: List[TriagedDevice] = []
    with telemetry.span(
        "surrogate.triage",
        devices=config.devices,
        threshold=round(threshold, 6),
    ):
        for index in range(config.devices):
            _, corner, intensity = fleet_draws(config, surrogate, index)
            sp = device_sp_vector(
                base_sp, intensity, surrogate.noise, config.seed, index
            )
            features = featurizer.vector(
                sp, corner.name, config.mission_years
            )
            onset_pred, slack_pred = model.predict(features)[0]
            flagged = bool(onset_pred <= threshold)
            devices.append(
                TriagedDevice(
                    index=index,
                    device_id=f"dev-{index:04d}",
                    corner=corner.name,
                    intensity=intensity,
                    predicted_onset_years=float(onset_pred),
                    predicted_slack_ns=float(slack_pred),
                    flagged=flagged,
                )
            )
            telemetry.add(
                "surrogate.triage.flagged"
                if flagged
                else "surrogate.triage.cleared"
            )
    return TriageOutcome(
        threshold=float(threshold),
        mission_years=config.mission_years,
        devices=devices,
    )


def run_surrogate_campaign(
    netlist: Netlist,
    unit: str,
    library: AgingLibrary,
    cell_library: CellLibrary,
    base_profile: SPProfile,
    models: Sequence[FailureModel],
    model: RidgeSurrogate,
    config: Optional[CampaignConfig] = None,
    surrogate: Optional[SurrogateConfig] = None,
    cache: Optional[ArtifactCache] = None,
    base_onset_years: Optional[float] = None,
) -> Tuple[TriageOutcome, CampaignReport]:
    """Surrogate-triage campaign: clear the cohort, re-verify the tail.

    Only the predicted-risky tail pays for exact oracle analysis and
    suite execution; the campaign engine then runs over exactly those
    specs, so its report equals the corresponding slice of an
    all-exact profiled campaign byte for byte.
    """
    config = config or CampaignConfig()
    surrogate = surrogate or SurrogateConfig()
    outcome = triage_fleet(
        model, netlist, base_profile, config, surrogate
    )
    tail = profiled_fleet(
        netlist,
        cell_library,
        base_profile,
        models,
        config,
        surrogate,
        indices=outcome.flagged_indices,
    )
    engine = CampaignEngine(
        netlist,
        unit,
        library,
        models,
        config=config,
        cache=cache,
        base_onset_years=base_onset_years,
        fleet=tail,
    )
    return outcome, engine.run()


def surrogate_device_prior(
    outcome: TriageOutcome,
    classes: Sequence[str],
    strength: float = 1.0,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Per-device Beta priors for the scheduler, from predicted onsets.

    Mirrors :func:`repro.scheduler.belief.fleet_prior`'s shape (a
    Jeffreys 0.5/0.5 floor plus ``strength`` pseudo-counts of the
    risk estimate) but *per device*: a device the surrogate expects to
    violate well inside the mission window starts hot, a cleared
    device starts cold — the informed starting point the dispatch
    policies exploit before any real outcome streams back.
    """
    priors: Dict[str, Dict[str, Tuple[float, float]]] = {}
    n_classes = max(1, len(classes))
    for device in outcome.devices:
        margin = device.predicted_onset_years - outcome.mission_years
        if margin <= 0.0:
            risk = 1.0
        else:
            # Linear decay past the mission window; clean well beyond
            # the horizon means near-zero prior risk.
            risk = max(0.0, 1.0 - margin / outcome.mission_years)
        table: Dict[str, Tuple[float, float]] = {}
        for label in classes:
            p = risk / n_classes
            table[label] = (
                0.5 + strength * p,
                0.5 + strength * (1.0 - p),
            )
        table[BROAD_CLASS] = (
            0.5 + strength * risk,
            0.5 + strength * (1.0 - risk),
        )
        priors[device.device_id] = table
    return priors


def accelerated_triage(
    outcome: TriageOutcome, acceleration: float
) -> TriageOutcome:
    """Re-triage a scored fleet under attacker-accelerated aging.

    The adversary engine's acceleration factor divides every device's
    time-to-onset (``repro.adversary``); the surrogate's predicted
    onsets scale the same way, so an attack scenario can be re-triaged
    without re-running the featurizer or the model.  Flags are
    recomputed against the unchanged threshold; since onsets only
    shrink, the flagged set grows monotonically with ``acceleration``.
    """
    acceleration = max(1.0, float(acceleration))
    devices = []
    for device in outcome.devices:
        onset = device.predicted_onset_years / acceleration
        devices.append(
            TriagedDevice(
                index=device.index,
                device_id=device.device_id,
                corner=device.corner,
                intensity=device.intensity,
                predicted_onset_years=float(onset),
                predicted_slack_ns=device.predicted_slack_ns,
                flagged=bool(onset <= outcome.threshold),
            )
        )
    return TriageOutcome(
        threshold=outcome.threshold,
        mission_years=outcome.mission_years,
        devices=devices,
    )
