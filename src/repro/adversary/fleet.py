"""Attack fleets: the natural fleet under adversarial acceleration.

An attack fleet describes the *same individuals* as the natural fleet —
every per-device corner, onset, and mechanism draw flows through the
shared :func:`repro.campaign.fleet.device_draw` streams — with one
difference: devices the attacker reaches have their onset divided by
the search's acceleration factor before the mission-window check.
Per-device detection lead (natural onset minus attacked onset) is
therefore well defined, and the fleets drop into the unchanged
:class:`~repro.campaign.engine.CampaignEngine` (and its packed
prefilter) via the ``fleet=`` override.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.fleet import DeviceSpec, assign_model, device_draw
from ..core.config import CampaignConfig
from ..core.rng import stream_rng, stream_seed
from ..lifting.models import FailureModel
from ..scheduler.belief import BROAD_CLASS


def derive_base_onset(
    unit_experiment,
    config: CampaignConfig,
    onset_sweep_years: Sequence[float] = (2.5, 5.0, 7.5, 10.0),
) -> float:
    """Fleet-median onset for a unit, as the campaign engine derives it.

    Mirrors :meth:`repro.campaign.engine.CampaignEngine.for_unit`:
    honour a pinned ``base_onset_years``, else take the first onset of
    a coarse lifetime sweep, else fall back to the mission midpoint.
    """
    if config.base_onset_years is not None:
        return float(config.base_onset_years)
    from ..core.experiments import CLOCK_CHAIN_LENGTH
    from ..core.lifetime import LifetimeSimulator

    simulator = LifetimeSimulator(
        unit_experiment.netlist,
        unit_experiment.sp_profile,
        config=unit_experiment.context.config.aging,
        gated_instances=unit_experiment.gated_instances(),
        clock_chain_length=CLOCK_CHAIN_LENGTH,
    )
    sweep = simulator.sweep(list(onset_sweep_years))
    base = sweep.first_onset_years
    if base is None:
        base = 0.6 * config.mission_years
    return float(base)


def sample_attack_fleet(
    config: CampaignConfig,
    failing_models: Sequence[FailureModel],
    base_onset_years: float,
    acceleration: float,
    attack_fraction: float = 1.0,
    attack_seed: int = 0,
) -> List[DeviceSpec]:
    """The natural fleet's twin under attacker-accelerated aging.

    ``acceleration`` (>= 1) divides the onset of every attacked device;
    ``attack_fraction`` < 1 draws the attacked subset from the
    ``adversary.fleet`` stream (keyed by ``attack_seed`` and the device
    index), leaving the rest aging naturally.  The faulty/model draw
    happens *after* acceleration, so attacks pull boundary devices into
    the mission window exactly as the physics would.
    """
    acceleration = max(1.0, float(acceleration))
    models = list(failing_models)
    fleet: List[DeviceSpec] = []
    for index in range(config.devices):
        rng, corner, onset, mechanism = device_draw(
            config, index, base_onset_years
        )
        attacked = True
        if attack_fraction < 1.0:
            attacked = (
                stream_rng("adversary.fleet", attack_seed, index).random()
                < attack_fraction
            )
        if attacked:
            onset = onset / acceleration
        faulty, model = assign_model(
            rng, models, onset, config.mission_years
        )
        fleet.append(
            DeviceSpec(
                index=index,
                device_id=f"dev-{index:04d}",
                corner=corner.name,
                onset_years=round(onset, 6),
                faulty=faulty,
                model=model,
                backend_seed=stream_seed(
                    "campaign.backend", config.seed, index
                )
                & 0xFFFFFFFF,
                mechanism=mechanism,
            )
        )
    return fleet


def accelerate_fleet(
    fleet: Sequence[DeviceSpec],
    acceleration: float,
    failing_models: Sequence[FailureModel],
    mission_years: float,
    attack_seed: int = 0,
) -> List[DeviceSpec]:
    """Apply an attack to an *already sampled* fleet.

    For fleets whose onsets came from somewhere other than the sampler
    — e.g. the surrogate's exact per-device oracle
    (:func:`repro.surrogate.triage.profiled_fleet`) — divide each onset
    by the acceleration and re-derive the mission verdict.  Devices
    that were already faulty keep their model (the attack changes
    *when* they fail, not *how*); devices the attack newly pulls into
    the window draw one from the ``adversary.model`` stream.
    """
    acceleration = max(1.0, float(acceleration))
    models = list(failing_models)
    out: List[DeviceSpec] = []
    for spec in fleet:
        onset = round(spec.onset_years / acceleration, 6)
        faulty = bool(models) and onset <= mission_years
        model = spec.model
        if faulty and model is None:
            model = stream_rng(
                "adversary.model", attack_seed, spec.index
            ).choice(models)
        if not faulty:
            model = None
        out.append(
            DeviceSpec(
                index=spec.index,
                device_id=spec.device_id,
                corner=spec.corner,
                onset_years=onset,
                faulty=faulty,
                model=model,
                backend_seed=spec.backend_seed,
                mechanism=spec.mechanism,
            )
        )
    return out


def attack_device_prior(
    natural: Sequence[DeviceSpec],
    attacked: Sequence[DeviceSpec],
    classes: Sequence[str],
    mission_years: float,
    strength: float = 1.0,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Per-device Beta priors for the scheduler, from an attack scenario.

    Mirrors :func:`repro.surrogate.triage.surrogate_device_prior`'s
    shape (Jeffreys 0.5/0.5 floor plus ``strength`` pseudo-counts) but
    scores risk from the *attacked* onset margin, boosted by how much
    the attack moved the device: a device the attack pulls deep into
    the mission window starts hot in
    :class:`~repro.scheduler.belief.FleetBelief`, so dispatch policies
    probe suspected victims first.
    """
    by_index: Dict[int, DeviceSpec] = {s.index: s for s in natural}
    priors: Dict[str, Dict[str, Tuple[float, float]]] = {}
    n_classes = max(1, len(classes))
    for spec in attacked:
        margin = spec.onset_years - mission_years
        if margin <= 0.0:
            risk = 1.0
        else:
            risk = max(0.0, 1.0 - margin / mission_years)
        twin = by_index.get(spec.index)
        if twin is not None and twin.onset_years > 0.0:
            # Scale by the attack's bite on this device: untouched
            # devices keep their natural risk, strongly accelerated
            # ones are weighted toward certainty.
            bite = min(
                1.0,
                max(0.0, 1.0 - spec.onset_years / twin.onset_years),
            )
            risk = min(1.0, risk * (1.0 + bite))
        table: Dict[str, Tuple[float, float]] = {}
        for label in classes:
            p = risk / n_classes
            table[label] = (
                0.5 + strength * p,
                0.5 + strength * (1.0 - p),
            )
        table[BROAD_CLASS] = (
            0.5 + strength * risk,
            0.5 + strength * (1.0 - risk),
        )
        priors[spec.device_id] = table
    return priors
