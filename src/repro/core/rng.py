"""Named, reproducible RNG streams.

Several layers draw randomness that must be (a) reproducible across
runs and processes and (b) *independent* between consumers: the Table 7
baseline generates ten random suites per configuration, the campaign
engine samples per-device aging corners and failure models for a whole
virtual fleet, and the co-simulation backends draw per-cycle values for
``CMode.RANDOM`` failure models.  Ad-hoc arithmetic like
``seed = run * 97 + 13`` makes streams collide silently the moment two
call sites pick overlapping constants.

:func:`stream_seed` derives a 64-bit seed from a *namespace string*
plus integer indices by hashing them with SHA-256, so:

* every ``(namespace, *indices)`` tuple names exactly one stream;
* distinct namespaces can never collide (the hash mixes the full
  tuple, unlike affine seed formulas);
* the derivation is stable across Python versions and platforms
  (``hash()`` randomization never enters the picture).

Conventional namespaces are dotted paths naming the consumer, e.g.
``"baseline.random_suite"`` or ``"campaign.fleet"``.
"""

from __future__ import annotations

import hashlib
import random

#: Mask producing the 64-bit seed range handed to ``random.Random``.
_SEED_BITS = 64


def stream_seed(namespace: str, *indices: int) -> int:
    """Deterministic 64-bit seed for the named RNG stream.

    ``indices`` select a member of the stream family — e.g. the run
    number of a random baseline suite, or the device index within a
    campaign fleet.
    """
    payload = ":".join([namespace, *(str(i) for i in indices)])
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[: _SEED_BITS // 8], "big")


def stream_rng(namespace: str, *indices: int) -> random.Random:
    """A ``random.Random`` positioned at the start of the named stream."""
    return random.Random(stream_seed(namespace, *indices))
