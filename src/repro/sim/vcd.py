"""Minimal VCD (value change dump) writer.

Traces found by the bounded model checker are "captured and saved as a
waveform" in the paper (§3.3.3).  This writer produces standard VCD text
so traces and simulations can be inspected with any waveform viewer.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, TextIO


def _id_code(index: int) -> str:
    """Short printable identifier per VCD spec (chars '!'..'~')."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 94)
        chars.append(chr(33 + rem))
    return "".join(reversed(chars))


class VcdWriter:
    """Streams value changes for a fixed set of scalar signals."""

    def __init__(
        self,
        signals: Sequence[str],
        timescale: str = "1ns",
        module: str = "top",
    ):
        self.signals = list(signals)
        self.timescale = timescale
        self.module = module
        self._codes: Dict[str, str] = {
            name: _id_code(i) for i, name in enumerate(self.signals)
        }
        self._last: Dict[str, Optional[int]] = {n: None for n in self.signals}
        self._lines: List[str] = []
        self._time = 0
        self._emit_header()

    def _emit_header(self) -> None:
        self._lines.append(f"$timescale {self.timescale} $end")
        self._lines.append(f"$scope module {self.module} $end")
        for name in self.signals:
            safe = name.replace(" ", "_")
            self._lines.append(
                f"$var wire 1 {self._codes[name]} {safe} $end"
            )
        self._lines.append("$upscope $end")
        self._lines.append("$enddefinitions $end")

    def sample(self, values: Mapping[str, int], time: Optional[int] = None) -> None:
        """Record the current value of every signal at ``time``."""
        if time is None:
            time = self._time
        changes = []
        for name in self.signals:
            value = values.get(name)
            if value is None or value == self._last[name]:
                continue
            changes.append(f"{value & 1}{self._codes[name]}")
            self._last[name] = value
        if changes:
            self._lines.append(f"#{time}")
            self._lines.extend(changes)
        self._time = time + 1

    def dump(self) -> str:
        return "\n".join(self._lines) + "\n"

    def write(self, fp: TextIO) -> None:
        fp.write(self.dump())
