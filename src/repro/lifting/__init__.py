"""Error Lifting: failure models, instrumentation, formal test generation."""

from .instrument import (
    CoverInstrumentation,
    FailingNetlist,
    InstrumentationError,
    RANDOM_C_PORT,
    instrument_for_cover,
    make_failing_netlist,
)
from .fuzz import FuzzResult, FuzzTraceGenerator
from .lifter import (
    ErrorLifter,
    LiftingReport,
    PairOutcome,
    PairResult,
    VariantResult,
)
from .models import CMode, EdgeQualifier, FailureModel, ViolationKind
from .testcase import (
    IsaMapper,
    TestCase,
    TestInstruction,
    UnmappableTraceError,
)

__all__ = [
    "CoverInstrumentation",
    "FailingNetlist",
    "InstrumentationError",
    "RANDOM_C_PORT",
    "instrument_for_cover",
    "make_failing_netlist",
    "FuzzResult",
    "FuzzTraceGenerator",
    "ErrorLifter",
    "LiftingReport",
    "PairOutcome",
    "PairResult",
    "VariantResult",
    "CMode",
    "EdgeQualifier",
    "FailureModel",
    "ViolationKind",
    "IsaMapper",
    "TestCase",
    "TestInstruction",
    "UnmappableTraceError",
]
