"""RTL construction DSL and synthesis to the vega28 cell library."""

from .signal import (
    Bit,
    Module,
    Register,
    RtlError,
    Signal,
    leading_zero_count,
    mux,
    mux_by_index,
)
from .synth import synthesize

__all__ = [
    "Bit",
    "Module",
    "Register",
    "RtlError",
    "Signal",
    "leading_zero_count",
    "mux",
    "mux_by_index",
    "synthesize",
]
