"""Tests for the online fleet scheduler (repro.scheduler)."""

import asyncio
import dataclasses

import pytest

from repro.campaign.fleet import sample_fleet
from repro.core.artifacts import ArtifactCache
from repro.core.config import (
    CampaignConfig,
    ErrorLiftingConfig,
    SchedulerConfig,
)
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.scheduler import (
    DetectionService,
    EventLog,
    FleetBelief,
    ResultEvent,
    RetryAfter,
    ScheduleReport,
    ScheduleSession,
    build_arms,
    fleet_prior,
    make_policy,
    verify_replay,
)
from repro.scheduler.belief import BROAD_CLASS, ArmSpec
from repro.scheduler.policy import PlanRequest
from repro.sta.timing import TimingViolation

MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.RANDOM),
]

CONFIG = CampaignConfig(
    devices=8,
    seed=11,
    silifuzz_snapshots=3,
    base_onset_years=6.0,
)

SCHED = SchedulerConfig(
    policy="thompson",
    policy_seed=7,
    batch_size=4,
    batch_window=3,
    ingest_queue=8,
    checkpoint_every=4,
    cycle_budget=40_000,
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def vega_library(alu_netlist):
    lifter = ErrorLifter(alu_netlist, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    return AgingLibrary(
        name="sched_vega",
        test_cases=lifter.lift_pair(violation).test_cases,
    )


def make_session(
    alu_netlist, vega_library, config=CONFIG, sched=SCHED, cache=None
):
    return ScheduleSession(
        alu_netlist,
        "alu",
        vega_library,
        MODELS,
        config=config,
        scheduler=sched,
        cache=cache,
    )


def _fleet():
    return sample_fleet(CONFIG, MODELS, 6.0)


def _classes():
    return sorted({m.label for m in MODELS})


# ---------------------------------------------------------------------
# Belief state
# ---------------------------------------------------------------------
class TestBelief:
    def test_fleet_prior_reflects_corner_populations(self):
        fleet = _fleet()
        prior = fleet_prior(fleet, _classes())
        assert set(prior) == {spec.corner for spec in fleet}
        for table in prior.values():
            assert BROAD_CLASS in table
            for alpha, beta in table.values():
                assert alpha > 0 and beta > 0
        # Every device here is faulty (onset well inside the mission),
        # so the broad-class prior is hot at every corner.
        for table in prior.values():
            alpha, beta = table[BROAD_CLASS]
            assert alpha > beta

    def test_outcome_updates_posterior_and_ttd(self):
        fleet = _fleet()
        belief = FleetBelief(fleet, _classes(), cycle_budget=1000)
        device = fleet[0].device_id
        label = _classes()[0]
        arm = ArmSpec("case:x", "case", label, 40, 0)
        before = belief.mean(device, label)
        belief.record_outcome(device, arm, False, 40)
        assert belief.mean(device, label) < before
        assert belief.devices[device].spent_cycles == 40
        assert not belief.devices[device].detected

        belief.record_outcome(device, arm, True, 35, detected_by="x")
        state = belief.devices[device]
        assert state.detected and state.detected_by == "x"
        assert state.detected_cycles == 75  # cumulative cycles at hit
        # Fleet-level evidence moved too.
        assert belief.fleet_posteriors[label] == [1.0, 1.0]

    def test_candidates_respect_budget_and_run_counts(self):
        fleet = _fleet()
        belief = FleetBelief(fleet, _classes(), cycle_budget=100)
        device = fleet[0].device_id
        arms = [
            ArmSpec("a", "case", _classes()[0], 60, 0),
            ArmSpec("b", "case", _classes()[1], 300, 1),  # over budget
        ]
        assert [a.name for a in belief.candidates(device, arms)] == ["a"]
        belief.record_dispatch(device, arms[0])
        assert belief.candidates(device, arms) == []
        assert belief.device_done(device, arms)

    def test_snapshot_roundtrip_is_exact(self):
        fleet = _fleet()
        belief = FleetBelief(fleet, _classes(), cycle_budget=500)
        arm = ArmSpec("a", "case", _classes()[0], 10, 0)
        belief.record_dispatch(fleet[0].device_id, arm)
        belief.record_outcome(fleet[0].device_id, arm, True, 10)
        clone = FleetBelief.from_json(belief.to_json())
        assert clone.digest() == belief.digest()
        assert clone.to_json() == belief.to_json()
        # The restored belief keeps evolving identically.
        for b in (belief, clone):
            b.record_outcome(fleet[1].device_id, arm, False, 10)
        assert clone.digest() == belief.digest()


# ---------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------
class TestPolicies:
    def _arms(self):
        labels = _classes()
        return [
            ArmSpec(f"case:{k}", "case", labels[k % len(labels)], 50 + k, k)
            for k in range(4)
        ]

    def _requests(self, fleet):
        return [
            PlanRequest(device_id=s.device_id, device_index=s.index)
            for s in fleet[:4]
        ]

    @pytest.mark.parametrize(
        "name", ["sequential", "greedy", "thompson", "round_robin"]
    )
    def test_policies_are_deterministic(self, name):
        fleet = _fleet()
        arms = self._arms()
        requests = self._requests(fleet)
        schedules = []
        for _ in range(2):
            belief = FleetBelief(fleet, _classes(), cycle_budget=1000)
            policy = make_policy(name, seed=5)
            schedules.append(
                policy.plan(belief, arms, requests, tick=3)
            )
        first, second = schedules
        assert [d.as_record() for d in first.dispatches] == [
            d.as_record() for d in second.dispatches
        ]

    def test_sequential_walks_catalogue_order(self):
        fleet = _fleet()
        arms = self._arms()
        belief = FleetBelief(fleet, _classes(), cycle_budget=1000)
        policy = make_policy("sequential")
        schedule = policy.plan(
            belief, arms, self._requests(fleet), tick=1
        )
        assert {d.arm for d in schedule.dispatches} == {"case:0"}

    def test_thompson_draws_depend_on_seed_stream(self):
        fleet = _fleet()
        arms = self._arms()
        belief = FleetBelief(fleet, _classes(), cycle_budget=1000)
        requests = self._requests(fleet)
        picks = {
            seed: tuple(
                d.arm
                for d in make_policy("thompson", seed)
                .plan(belief, arms, requests, tick=1)
                .dispatches
            )
            for seed in range(12)
        }
        # Some seed must explore off the greedy pick.
        assert len(set(picks.values())) > 1

    def test_plan_retires_exhausted_devices(self):
        fleet = _fleet()
        arms = self._arms()
        belief = FleetBelief(fleet, _classes(), cycle_budget=1000)
        for arm in arms:
            belief.record_dispatch(fleet[0].device_id, arm)
        schedule = make_policy("greedy").plan(
            belief, arms, self._requests(fleet), tick=1
        )
        assert fleet[0].device_id in schedule.retired

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nonesuch")


# ---------------------------------------------------------------------
# Service mechanics (no fleet execution needed)
# ---------------------------------------------------------------------
class TestServiceMechanics:
    def _service(self, queue=2):
        fleet = _fleet()
        belief = FleetBelief(fleet, _classes(), cycle_budget=1000)
        arms = [ArmSpec("a", "case", _classes()[0], 10, 0)]
        sched = dataclasses.replace(SCHED, ingest_queue=queue)
        return DetectionService(
            belief=belief,
            arms=arms,
            policy=make_policy("sequential"),
            config=sched,
            log=EventLog(run_id="test"),
        ), fleet

    def test_full_ingest_queue_raises_retry_after(self):
        service, fleet = self._service(queue=2)

        async def drive():
            for k in range(2):
                await service.submit_result(
                    ResultEvent(
                        device_id=fleet[k].device_id,
                        device_index=fleet[k].index,
                        arm="a",
                        class_label=_classes()[0],
                        detected=False,
                        stalled=False,
                        cycles=10,
                    )
                )
            with pytest.raises(RetryAfter) as exc:
                await service.submit_result(
                    ResultEvent(
                        device_id=fleet[2].device_id,
                        device_index=fleet[2].index,
                        arm="a",
                        class_label=_classes()[0],
                        detected=False,
                        stalled=False,
                        cycles=10,
                    )
                )
            assert exc.value.retry_after >= 1

        asyncio.run(drive())

    def test_retry_after_scales_with_queue_occupancy(self):
        # Regression: the hint used to be a constant 1, so every
        # client of a saturated service retried on the very next pass.
        service, fleet = self._service(queue=12)

        def event(k):
            dev = fleet[k % len(fleet)]
            return ResultEvent(
                device_id=dev.device_id,
                device_index=dev.index,
                arm="a",
                class_label=_classes()[0],
                detected=False,
                stalled=False,
                cycles=10,
            )

        hints = []

        async def drive():
            for k in range(12):
                await service.submit_result(event(k))
                hints.append(service._retry_hint())
            with pytest.raises(RetryAfter) as exc:
                await service.submit_result(event(12))
            assert exc.value.retry_after == hints[-1]

        asyncio.run(drive())
        # Monotone non-decreasing in occupancy, strictly larger for a
        # full queue than a near-empty one.
        assert hints == sorted(hints)
        assert hints[-1] > hints[0]

    def test_fuller_service_advertises_longer_backoff(self):
        def saturate(queue):
            service, fleet = self._service(queue=queue)

            async def drive():
                for k in range(queue):
                    await service.submit_result(
                        ResultEvent(
                            device_id=fleet[k % len(fleet)].device_id,
                            device_index=fleet[k % len(fleet)].index,
                            arm="a",
                            class_label=_classes()[0],
                            detected=False,
                            stalled=False,
                            cycles=10,
                        )
                    )
                with pytest.raises(RetryAfter) as exc:
                    await service.submit_result(
                        ResultEvent(
                            device_id=fleet[0].device_id,
                            device_index=fleet[0].index,
                            arm="a",
                            class_label=_classes()[0],
                            detected=False,
                            stalled=False,
                            cycles=10,
                        )
                    )
                return exc.value.retry_after

            return asyncio.run(drive())

        assert saturate(12) > saturate(4) >= 1

    def test_checkpoint_state_roundtrips_belief(self):
        service, fleet = self._service()
        arm = service.arms[0]
        service.belief.record_outcome(
            fleet[0].device_id, arm, True, 10, detected_by="a"
        )
        state = service.checkpoint_state()
        restored = FleetBelief.from_snapshot(state["belief"])
        assert restored.digest() == service.belief.digest()
        assert state["policy"] == "sequential"

    def test_event_log_counts_semantic_events(self):
        log = EventLog(run_id="test")
        log.event("dispatch", 1, device="d0", arm="a")
        log.event("result", 1, device="d0", arm="a", detected=True)
        records = log.trace_records()
        assert records[0]["type"] == "meta"
        assert records[-1]["counters"] == {
            "scheduler.dispatch": 1,
            "scheduler.result": 1,
        }


# ---------------------------------------------------------------------
# End-to-end sessions
# ---------------------------------------------------------------------
class TestScheduleSession:
    def test_arm_catalogue_covers_cases_and_suites(
        self, alu_netlist, vega_library
    ):
        from repro.campaign.engine import DeviceRunner

        runner = DeviceRunner(alu_netlist, "alu", CONFIG, vega_library)
        arms = build_arms(vega_library, runner)
        kinds = {arm.kind for arm in arms}
        assert kinds == {"case", "random", "silifuzz"}
        assert all(arm.cost_cycles > 0 for arm in arms)
        assert [arm.index for arm in arms] == list(range(len(arms)))
        case_arms = [a for a in arms if a.kind == "case"]
        assert len(case_arms) == len(vega_library.test_cases)
        assert all(a.class_label != BROAD_CLASS for a in case_arms)

    @pytest.mark.parametrize(
        "batch_size,batch_window,ingest_queue",
        [(16, 3, 32), (4, 3, 8), (2, 1, 2), (3, 0, 1)],
    )
    def test_live_equals_replay_at_any_configuration(
        self, alu_netlist, vega_library, batch_size, batch_window,
        ingest_queue,
    ):
        sched = dataclasses.replace(
            SCHED,
            batch_size=batch_size,
            batch_window=batch_window,
            ingest_queue=ingest_queue,
        )
        session = make_session(alu_netlist, vega_library, sched=sched)
        outcome = session.run()
        matches, replayed = verify_replay(session, outcome)
        assert matches
        assert replayed.report.to_json() == outcome.report.to_json()

    def test_event_log_is_a_valid_trace(self, alu_netlist, vega_library):
        from repro.core.telemetry import dump_trace, parse_trace

        outcome = make_session(alu_netlist, vega_library).run()
        text = outcome.log.to_jsonl()
        records = parse_trace(text)
        assert dump_trace(records) == text
        names = {r["name"] for r in records if r["type"] == "event"}
        assert {"dispatch", "result", "drain"} <= names
        # Ticks are monotone logical time.
        ticks = [r["t_s"] for r in records if r["type"] == "event"]
        assert ticks == sorted(ticks)

    def test_policies_change_trajectories(self, alu_netlist, vega_library):
        logs = {}
        for policy in ("sequential", "thompson"):
            sched = dataclasses.replace(SCHED, policy=policy)
            outcome = make_session(
                alu_netlist, vega_library, sched=sched
            ).run()
            logs[policy] = outcome.log.to_jsonl()
            assert outcome.report.policy == policy
        assert logs["sequential"] != logs["thompson"]

    def test_detection_outcomes_match_campaign_ground_truth(
        self, alu_netlist, vega_library
    ):
        """Every faulty device the full campaign suites detect, the
        scheduler (which dispatches the same tests one by one until a
        hit) also detects within budget."""
        outcome = make_session(alu_netlist, vega_library).run()
        report = outcome.report
        assert report.devices == CONFIG.devices
        assert report.faulty == sum(1 for s in outcome.fleet if s.faulty)
        assert report.detected == report.faulty  # these faults are loud
        assert report.mean_ttd_cycles is not None
        assert report.mean_ttd_cycles <= SCHED.cycle_budget

    def test_report_json_roundtrip(self, alu_netlist, vega_library):
        report = make_session(alu_netlist, vega_library).run().report
        clone = ScheduleReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.summary_lines() == report.summary_lines()

    def test_restart_after_kill_matches_uninterrupted(
        self, alu_netlist, vega_library, tmp_path
    ):
        """Kill the service mid-run after N ingested events; resuming
        from the last belief checkpoint must land on the same final
        report and belief as a run that was never interrupted."""
        sched = dataclasses.replace(
            SCHED, batch_size=16, checkpoint_every=4
        )
        uninterrupted = make_session(
            alu_netlist, vega_library, sched=sched
        ).run()

        cache = ArtifactCache(tmp_path)
        killed = make_session(
            alu_netlist, vega_library, sched=sched, cache=cache
        ).run(kill_after_events=9)
        assert killed.killed
        assert killed.report.events < uninterrupted.report.events

        resumed = make_session(
            alu_netlist, vega_library, sched=sched, cache=cache
        ).run(resume=True)
        assert resumed.resumed
        assert resumed.report.to_json() == uninterrupted.report.to_json()
        assert resumed.belief.digest() == uninterrupted.belief.digest()

    def test_resume_of_finished_run_executes_nothing(
        self, alu_netlist, vega_library, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        sched = dataclasses.replace(SCHED, checkpoint_every=1)
        first = make_session(
            alu_netlist, vega_library, sched=sched, cache=cache
        ).run()
        again = make_session(
            alu_netlist, vega_library, sched=sched, cache=cache
        ).run(resume=True)
        assert again.resumed
        assert again.report.events == first.report.events
        assert again.belief.digest() == first.belief.digest()

    def test_outcomes_are_memoized_across_devices(
        self, alu_netlist, vega_library
    ):
        """Devices sharing a failure model share simulations — the
        fleet-level dedup that keeps big fleets cheap."""
        from repro.core import telemetry as tele_mod

        tele = tele_mod.Telemetry(run_id="memo-test")
        with tele_mod.use(tele):
            make_session(alu_netlist, vega_library).run()
        assert tele.counters.get("scheduler.outcome_memo_hits", 0) > 0
