"""Counterexample/witness traces produced by the bounded model checker.

A trace is the cycle-accurate, module-level input sequence the paper's
§3.3.3 step produces (Table 2 shows one for the example adder): per
cycle, a value for every input port, plus observed values for any nets
of interest.  Traces render as text tables and as VCD waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim.vcd import VcdWriter


@dataclass
class Trace:
    """A bounded witness: ``inputs[t][port]`` is the port value at cycle t."""

    netlist_name: str
    inputs: List[Dict[str, int]] = field(default_factory=list)
    observed: List[Dict[str, int]] = field(default_factory=list)
    property_cycle: int = -1
    # Original-output nets that differ from their shadow at the
    # property cycle (filled by the lifter for cover witnesses).
    mismatch_nets: List[str] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.inputs)

    def port_values(self, port: str) -> List[int]:
        return [frame.get(port, 0) for frame in self.inputs]

    def to_table(self) -> str:
        """Render like the paper's Table 2 (cycles as columns)."""
        ports = sorted({k for frame in self.inputs for k in frame})
        nets = sorted({k for frame in self.observed for k in frame})
        header = ["Cycle"] + [str(t + 1) for t in range(self.depth)]
        rows = [header]
        for port in ports:
            rows.append(
                [port]
                + [format(frame.get(port, 0), "b") for frame in self.inputs]
            )
        for net in nets:
            rows.append(
                [net]
                + [str(frame.get(net, "-")) for frame in self.observed]
            )
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        lines = [
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        ]
        return "\n".join(lines)

    def to_vcd(self) -> str:
        """Serialize observed single-bit nets as a VCD waveform."""
        nets = sorted({k for frame in self.observed for k in frame})
        writer = VcdWriter(nets, module=self.netlist_name)
        for t, frame in enumerate(self.observed):
            writer.sample({k: int(v) for k, v in frame.items()}, time=t)
        return writer.dump()
