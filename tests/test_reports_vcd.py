"""Tests for the timing-report renderer and the VCD reader."""

import pytest

from repro.aging.corners import TYPICAL_CORNER
from repro.sim.gatesim import GateSimulator
from repro.sim.vcd import VcdWriter
from repro.sim.vcd_reader import (
    VcdParseError,
    parse_vcd,
    sp_profile_from_vcd,
)
from repro.sta.report import format_path, report_timing
from repro.sta.timing import DelayModel, StaticTimingAnalyzer


@pytest.fixture
def violated_report(paper_adder):
    model = DelayModel.fresh(paper_adder, TYPICAL_CORNER)
    analyzer = StaticTimingAnalyzer(paper_adder, model)
    return analyzer.check(period_ns=0.9), model


class TestTimingReport:
    def test_report_structure(self, paper_adder, violated_report):
        report, model = violated_report
        text = report_timing(report, paper_adder, model, max_paths=2)
        assert "Timing report" in text
        assert "WNS setup" in text
        assert text.count("Startpoint:") == 2
        assert "(VIOLATED)" in text

    def test_per_stage_arrivals_accumulate(self, paper_adder, violated_report):
        report, model = violated_report
        worst = min(report.violations, key=lambda v: v.slack)
        text = format_path(worst, paper_adder, model)
        # The last cumulative figure equals the path arrival.
        lines = [l for l in text.splitlines() if l and l[0] not in "-SEa("]
        last_cumulative = float(lines[-1].split()[-1])
        assert last_cumulative == pytest.approx(worst.arrival)

    def test_structural_only_without_delays(self, paper_adder, violated_report):
        report, _ = violated_report
        worst = report.violations[0]
        text = format_path(worst, paper_adder)
        assert "clk->q" not in text
        for cell in worst.cells:
            assert cell in text

    def test_kind_filter(self, paper_adder, violated_report):
        report, model = violated_report
        text = report_timing(report, paper_adder, model, kind="hold")
        assert "(no violating paths)" in text

    def test_clean_report(self, paper_adder):
        model = DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        report = StaticTimingAnalyzer(paper_adder, model).check(1.0)
        text = report_timing(report, paper_adder, model)
        assert "(no violating paths)" in text


class TestVcdReader:
    def test_roundtrip_with_writer(self):
        writer = VcdWriter(["x", "y"])
        # x: 1 for 3 of 4 time steps; y: always 0.
        writer.sample({"x": 1, "y": 0}, time=0)
        writer.sample({"x": 1, "y": 0}, time=1)
        writer.sample({"x": 1, "y": 0}, time=2)
        writer.sample({"x": 0, "y": 0}, time=3)
        profile = sp_profile_from_vcd(writer.dump(), "t")
        assert profile.sp["x"] == pytest.approx(3 / 4)
        assert profile.sp["y"] == 0.0

    def test_simulation_capture_roundtrip(self, paper_adder):
        """Record a real simulation to VCD, read SP back, and compare
        against the direct SP counter."""
        from repro.sim.probes import SPCounter

        nets = sorted(paper_adder.nets)
        writer = VcdWriter(nets)
        sim = GateSimulator(paper_adder)
        counter = SPCounter(paper_adder)
        stimulus = [
            {"a": (7 * i) % 4, "b": (5 * i + 1) % 4} for i in range(40)
        ]
        for t, frame in enumerate(stimulus):
            sim.step(frame)
            counter.sample(sim)
            writer.sample(
                {n: sim.read_net(n) & 1 for n in nets}, time=t
            )
        direct = counter.profile()
        from_vcd = sp_profile_from_vcd(writer.dump(), paper_adder.name)
        for net in nets:
            assert from_vcd.sp[net] == pytest.approx(
                direct.sp[net], abs=0.03
            )

    def test_vcd_profile_drives_aging_sta(self, paper_adder):
        """Field-trace ingestion end to end: VCD -> SP -> aged STA."""
        from repro.aging.charlib import AgingTimingLibrary
        from repro.core.config import AgingAnalysisConfig
        from repro.sta.aging_sta import AgingAwareSta

        nets = sorted(paper_adder.nets)
        writer = VcdWriter(nets)
        sim = GateSimulator(paper_adder)
        for t in range(60):
            sim.step({"a": t % 4, "b": (3 * t) % 4})
            writer.sample({n: sim.read_net(n) & 1 for n in nets}, time=t)
        profile = sp_profile_from_vcd(writer.dump(), paper_adder.name)
        sta = AgingAwareSta(
            paper_adder,
            AgingTimingLibrary.characterize(paper_adder.library),
            config=AgingAnalysisConfig(clock_margin=0.042),
            corner=TYPICAL_CORNER,
        )
        result = sta.analyze(profile, clock_period_ns=1.0)
        assert result.report.setup_violations()

    def test_vector_signals_rejected(self):
        bad = "$var wire 8 ! bus $end\n$enddefinitions $end\n"
        with pytest.raises(VcdParseError, match="scalar"):
            parse_vcd(bad)

    def test_unknown_code_rejected(self):
        bad = (
            "$var wire 1 ! x $end\n$enddefinitions $end\n#0\n1?\n"
        )
        with pytest.raises(VcdParseError, match="unknown code"):
            parse_vcd(bad)

    def test_x_values_read_as_zero(self):
        text = (
            "$var wire 1 ! x $end\n$enddefinitions $end\n"
            "#0\nx!\n#5\n1!\n#9\n0!\n"
        )
        data = parse_vcd(text)
        assert 0.0 < data.duty_cycle("!") < 1.0
