"""Artifact export and the content-addressed artifact cache.

The paper's third contribution: "We provide a set of circuit-level
failure models for the analyzed hardware to facilitate future research
into silent data corruptions."  Those models are the *failing netlists*
produced by failure-model instrumentation — standalone Verilog files
that behave like the aged circuit and can be simulated or mapped to an
FPGA.

:func:`export_failure_models` writes one ``.v`` per (endpoint pair, C
mode) plus a JSON index describing each model's violation, trigger
condition, and provenance; :func:`export_suite_artifacts` writes the
software side (assembly suite, C library, spliceable routine).

:class:`ArtifactCache` is the phase-1 memo store: SP profiles and aged
delay models are *pure functions* of (netlist structure, workload
content, cycle count, aging parameters, corner), so they are cached on
disk under a sha256 of exactly those inputs.  Repeated
``VegaWorkflow.run_aging_analysis`` or benchmark invocations then reuse
the artifacts instead of re-simulating the workload.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from . import telemetry
from ..integration.library_gen import AgingLibrary
from ..lifting.instrument import FailingNetlist


@dataclass
class ArtifactIndex:
    """Manifest of an exported artifact directory."""

    unit: str
    netlist_name: str
    models: List[Dict] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "unit": self.unit,
                "netlist": self.netlist_name,
                "models": self.models,
                "files": self.files,
            },
            indent=2,
        )


class ArtifactCache:
    """Content-addressed on-disk store for phase-1 artifacts.

    Entries live at ``<root>/<kind>/<key[:2]>/<key>.json`` where ``key``
    is :meth:`digest` over every input the artifact depends on.  There
    is deliberately no invalidation protocol: a changed input changes
    the key, and stale entries simply stop being addressed.

    ``hits``/``misses`` count lookups for reporting and tests.
    """

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------
    @staticmethod
    def digest(*parts: Any) -> str:
        """sha256 over the canonical JSON encoding of ``parts``."""
        payload = json.dumps(parts, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    @staticmethod
    def stream_digest(operands: Sequence[Mapping[str, int]]) -> str:
        """Content id of an operand stream (workload identity).

        Hashes the per-operation port values in order, so the same
        recorded workload addresses the same cache entry in any process.
        """
        h = hashlib.sha256()
        for op in operands:
            for name in sorted(op):
                h.update(f"{name}={op[name]};".encode())
            h.update(b"\n")
        return h.hexdigest()

    # -- raw text entries ----------------------------------------------
    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / kind / key[:2] / f"{key}.json"

    def load(self, kind: str, key: str) -> Optional[str]:
        path = self._path(kind, key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return text

    def store(self, kind: str, key: str, text: str) -> pathlib.Path:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        tmp.replace(path)  # atomic publish: readers never see partials
        return path

    # -- pickled phase checkpoints --------------------------------------
    def _checkpoint_path(self, key: str) -> pathlib.Path:
        return self.root / "checkpoint" / key[:2] / f"{key}.pkl"

    def load_checkpoint(self, key: str) -> Optional[Any]:
        """A previously published phase result, or None.

        Corrupt or truncated checkpoints (a crash mid-``replace`` is
        impossible, but a damaged disk entry is not) count as misses
        rather than raising — resume then recomputes the phase.  The
        corruption is *loud*, though: the bad file is quarantined as
        ``<key>.pkl.corrupt`` (so the evidence survives and the key
        stops addressing it), a ``cache.checkpoint_corrupt`` telemetry
        event fires, and a :class:`UserWarning` is emitted.  Silently
        re-running a multi-minute phase with no signal was a bug.
        """
        import pickle

        path = self._checkpoint_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            value = pickle.loads(data)
        except (
            pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, KeyError, ValueError, TypeError,
        ) as exc:
            self.misses += 1
            self._quarantine_checkpoint(path, key, exc)
            return None
        self.hits += 1
        return value

    def _quarantine_checkpoint(
        self, path: pathlib.Path, key: str, exc: BaseException
    ) -> Optional[pathlib.Path]:
        """Move a corrupt checkpoint aside and report it."""
        quarantine: Optional[pathlib.Path]
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            path.replace(quarantine)
        except OSError:  # e.g. raced delete; nothing left to keep
            quarantine = None
        telemetry.add("cache.checkpoint_corrupt")
        telemetry.event(
            "cache.checkpoint_corrupt",
            key=key,
            error=f"{type(exc).__name__}: {exc}",
            quarantined=str(quarantine) if quarantine else None,
        )
        warnings.warn(
            f"corrupt checkpoint {path.name} ({type(exc).__name__}: {exc}); "
            + (
                f"quarantined as {quarantine.name}, "
                if quarantine
                else ""
            )
            + "the phase will be recomputed",
            stacklevel=3,
        )
        return quarantine

    def store_checkpoint(self, key: str, value: Any) -> pathlib.Path:
        """Atomically publish a phase result for later resume.

        Checkpoints are pickled (phase results are plain dataclasses),
        written to a temp file and renamed, so a killed run never leaves
        a partially-written checkpoint addressable.
        """
        import pickle

        path = self._checkpoint_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        tmp.replace(path)
        return path

    # -- typed entries -------------------------------------------------
    def load_profile(self, key: str):
        from ..sim.probes import SPProfile

        text = self.load("sp-profile", key)
        return SPProfile.from_json(text) if text is not None else None

    def store_profile(self, key: str, profile) -> None:
        self.store("sp-profile", key, profile.to_json())

    def load_delay_model(self, key: str):
        """Cached (DelayModel, delay_increase) or None."""
        from ..aging.corners import OperatingCorner
        from ..sta.timing import DelayModel

        text = self.load("aged-delays", key)
        if text is None:
            return None
        data = json.loads(text)
        model = DelayModel(
            delays={
                name: (pair[0], pair[1])
                for name, pair in data["delays"].items()
            },
            clock_early=dict(data["clock_early"]),
            clock_late=dict(data["clock_late"]),
            corner=OperatingCorner(**data["corner"]),
        )
        return model, dict(data["increase"])

    def store_delay_model(self, key: str, model, increase: Dict[str, float]) -> None:
        import dataclasses

        payload = {
            "delays": {
                name: [tmin, tmax]
                for name, (tmin, tmax) in model.delays.items()
            },
            "clock_early": model.clock_early,
            "clock_late": model.clock_late,
            "corner": dataclasses.asdict(model.corner),
            "increase": increase,
        }
        self.store("aged-delays", key, json.dumps(payload, sort_keys=True))


def export_failure_models(
    failing: Sequence[FailingNetlist],
    directory: str,
    unit: str = "unit",
) -> ArtifactIndex:
    """Write each failing netlist as Verilog plus a JSON manifest.

    Returns the index (also written as ``index.json``).
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    index = ArtifactIndex(
        unit=unit,
        netlist_name=failing[0].netlist.name.split("__")[0] if failing else "",
    )
    for model in failing:
        filename = f"{model.model.label}.v"
        (out_dir / filename).write_text(model.to_verilog())
        index.files.append(filename)
        index.models.append(
            {
                "file": filename,
                "kind": model.model.kind.value,
                "start": model.model.start,
                "end": model.model.end,
                "c_mode": model.model.c_mode.value,
                "edge": model.model.edge.value,
                "cells": model.netlist.stats()["_cells"],
            }
        )
    (out_dir / "index.json").write_text(index.to_json())
    return index


def export_suite_artifacts(
    library: AgingLibrary,
    directory: str,
) -> List[str]:
    """Write the software aging library's three artifact flavours."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in (
        (f"{library.name}.s", library.suite_source()),
        (f"{library.name}.c", library.c_source()),
        (f"{library.name}_routine.s", library.routine_source()),
    ):
        (out_dir / name).write_text(text)
        written.append(name)
    return written
