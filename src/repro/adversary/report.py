"""The ``AttackReport`` artifact: detection lead under attack.

The headline question — "does the Vega suite flag attacker-accelerated
aging earlier than natural aging at equal budget?" — is answered by
running the *same* campaign config twice, once over the natural fleet
and once over its attack twin, and pairing devices by index:

* **detection lead (devices)** — per suite, how many more devices the
  suite detects on the attack fleet than on the natural one inside the
  mission window (the attack pulls onsets forward, so devices that
  would have escaped as "not yet faulty" become detectable);
* **detection lead (years)** — per suite, the mean onset advance
  (natural onset minus attacked onset) over devices the suite detects
  on the attack fleet: the suite flags at violation onset, so an
  accelerated onset means the same device is flagged that many years
  earlier in its deployed life.

Like every campaign artifact, the report is a pure function of the two
fleets and their suite outcomes — no wall clock, no worker counts — so
it is byte-identical however the campaigns were sharded or resumed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence

from ..campaign.fleet import DeviceSpec
from ..campaign.report import CampaignReport
from .search import AttackSearchResult


def _detected_by_suite(report: CampaignReport) -> Dict[str, set]:
    """suite -> set of device ids the suite detected."""
    out: Dict[str, set] = {suite: set() for suite in report.suites}
    for row in report.device_rows:
        for outcome in row["outcomes"]:
            if outcome["detected"]:
                out[outcome["suite"]].add(row["device"])
    return out


@dataclass
class AttackReport:
    """Natural vs attack campaign comparison at equal budget."""

    unit: str
    seed: int
    attack_seed: int
    devices: int
    suites: List[str]
    budget_instructions: int
    mission_years: float
    base_onset_years: float
    stress_ratio: float
    acceleration: float
    attack_fraction: float
    attacked_devices: int
    #: Devices the attack pulled into the mission window.
    newly_faulty: int
    #: Mean/max onset advance (years) over attacked devices.
    onset_lead_years_mean: float
    onset_lead_years_max: float
    #: {"faulty", "detected", "escapes"} per campaign.
    natural: Dict[str, int] = field(default_factory=dict)
    attack: Dict[str, int] = field(default_factory=dict)
    #: suite -> attack detections minus natural detections (devices).
    detection_lead_devices: Dict[str, int] = field(default_factory=dict)
    #: suite -> mean onset advance over the suite's attack detections.
    detection_lead_years: Dict[str, float] = field(default_factory=dict)
    #: One row per device, pairing the natural and attacked draws.
    device_rows: List[dict] = field(default_factory=list)

    @classmethod
    def from_campaigns(
        cls,
        search: AttackSearchResult,
        natural_fleet: Sequence[DeviceSpec],
        attack_fleet: Sequence[DeviceSpec],
        natural_report: CampaignReport,
        attack_report: CampaignReport,
        attack_fraction: float,
        attack_seed: int,
        budget_instructions: int,
    ) -> "AttackReport":
        nat_by_index = {s.index: s for s in natural_fleet}
        nat_detected = _detected_by_suite(natural_report)
        att_detected = _detected_by_suite(attack_report)

        rows: List[dict] = []
        leads: List[float] = []
        attacked = 0
        newly_faulty = 0
        for spec in attack_fleet:
            twin = nat_by_index[spec.index]
            lead = round(twin.onset_years - spec.onset_years, 6)
            was_attacked = spec.onset_years < twin.onset_years
            if was_attacked:
                attacked += 1
                leads.append(lead)
            if spec.faulty and not twin.faulty:
                newly_faulty += 1
            rows.append(
                {
                    "device": spec.device_id,
                    "corner": spec.corner,
                    "mechanism": spec.mechanism,
                    "natural_onset_years": twin.onset_years,
                    "attack_onset_years": spec.onset_years,
                    "onset_lead_years": lead,
                    "attacked": was_attacked,
                    "natural_faulty": twin.faulty,
                    "attack_faulty": spec.faulty,
                    "natural_detected_by": sorted(
                        suite
                        for suite, ids in nat_detected.items()
                        if spec.device_id in ids
                    ),
                    "attack_detected_by": sorted(
                        suite
                        for suite, ids in att_detected.items()
                        if spec.device_id in ids
                    ),
                }
            )

        lead_devices: Dict[str, int] = {}
        lead_years: Dict[str, float] = {}
        for suite in natural_report.suites:
            lead_devices[suite] = len(att_detected[suite]) - len(
                nat_detected[suite]
            )
            advances = [
                row["onset_lead_years"]
                for row in rows
                if suite in row["attack_detected_by"]
                and row["onset_lead_years"] > 0.0
            ]
            lead_years[suite] = (
                round(sum(advances) / len(advances), 6) if advances else 0.0
            )

        return cls(
            unit=natural_report.unit,
            seed=natural_report.seed,
            attack_seed=attack_seed,
            devices=natural_report.devices,
            suites=list(natural_report.suites),
            budget_instructions=budget_instructions,
            mission_years=natural_report.mission_years,
            base_onset_years=natural_report.base_onset_years,
            stress_ratio=search.stress_ratio,
            acceleration=search.acceleration,
            attack_fraction=attack_fraction,
            attacked_devices=attacked,
            newly_faulty=newly_faulty,
            onset_lead_years_mean=(
                round(sum(leads) / len(leads), 6) if leads else 0.0
            ),
            onset_lead_years_max=(max(leads) if leads else 0.0),
            natural={
                "faulty": natural_report.faulty_devices,
                "detected": natural_report.detected_devices,
                "escapes": natural_report.escapes,
            },
            attack={
                "faulty": attack_report.faulty_devices,
                "detected": attack_report.detected_devices,
                "escapes": attack_report.escapes,
            },
            detection_lead_devices=lead_devices,
            detection_lead_years=lead_years,
            device_rows=rows,
        )

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no wall clock, no worker count."""
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "AttackReport":
        return cls(**json.loads(text))

    # -- human view ----------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"attack: {self.unit} fleet of {self.devices} "
            f"(accel {self.acceleration:.2f}x on "
            f"{self.attacked_devices}/{self.devices} devices, "
            f"stress ratio {self.stress_ratio:.3f})",
            f"  equal budget: {self.budget_instructions} instructions/"
            f"suite, mission {self.mission_years:.0f}y, "
            f"base onset ~{self.base_onset_years:.2f}y",
            f"  natural: faulty {self.natural['faulty']}  "
            f"detected {self.natural['detected']}  "
            f"escapes {self.natural['escapes']}",
            f"  attack:  faulty {self.attack['faulty']}  "
            f"detected {self.attack['detected']}  "
            f"escapes {self.attack['escapes']}  "
            f"(+{self.newly_faulty} newly faulty)",
            f"  onset lead: mean {self.onset_lead_years_mean:.2f}y, "
            f"max {self.onset_lead_years_max:.2f}y across attacked "
            f"devices",
        ]
        for suite in self.suites:
            lines.append(
                f"  detection lead ({suite}): "
                f"{self.detection_lead_devices[suite]:+d} device(s), "
                f"{self.detection_lead_years[suite]:.2f}y earlier "
                f"detection (mean onset advance)"
            )
        return "\n".join(lines)
