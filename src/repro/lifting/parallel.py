"""Parallel fan-out of Error Lifting across endpoint pairs.

Every unique endpoint pair of the STA report is an independent unit of
work: it clones its own shadow netlist, runs its own BMC queries, and
produces its own :class:`~repro.lifting.lifter.PairResult`.  This module
shards those pairs across ``multiprocessing`` workers:

* the netlist, config, and mapper travel to each worker **once** (via
  the pool initializer — with the ``fork`` start method they are
  inherited copy-on-write, never pickled);
* per-pair tasks carry only the :class:`~repro.sta.timing.TimingViolation`
  and an index, and results are re-assembled **in submission order**, so
  a parallel run is bit-identical to a serial one;
* platforms without ``fork`` (or ``workers <= 1``, or a pool that fails
  to come up) fall back to the serial loop transparently.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sta.timing import TimingViolation
    from .lifter import ErrorLifter, PairResult

#: Per-worker lifter, installed by :func:`_init_worker` after the fork.
_WORKER_LIFTER: Optional["ErrorLifter"] = None


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def _init_worker(netlist, config, mapper) -> None:
    """Build one lifter per worker process (netlist shipped once)."""
    global _WORKER_LIFTER
    import dataclasses

    from .lifter import ErrorLifter

    # Workers must not recurse into their own pools.
    _WORKER_LIFTER = ErrorLifter(
        netlist, dataclasses.replace(config, workers=1), mapper
    )


def _lift_one(task: Tuple[int, "TimingViolation"]) -> Tuple[int, "PairResult"]:
    index, violation = task
    assert _WORKER_LIFTER is not None
    return index, _WORKER_LIFTER.lift_pair(violation)


def lift_pairs(
    lifter: "ErrorLifter",
    violations: Sequence["TimingViolation"],
    workers: int = 1,
) -> List["PairResult"]:
    """Lift every violation, sharded across ``workers`` processes.

    Results come back ordered like ``violations`` regardless of which
    worker finished first.  ``workers <= 0`` means "one per CPU" —
    lifting is CPU-bound, so extra processes beyond the core count only
    add fork/pickle overhead.  Serial execution (identical code path to
    ``[lifter.lift_pair(v) for v in violations]``) is used when the
    effective worker count is 1, when there is at most one pair to
    process, or when the platform lacks the ``fork`` start method.
    """
    violations = list(violations)
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    workers = min(workers, len(violations)) if violations else 1
    if workers <= 1 or not fork_available():
        return [lifter.lift_pair(v) for v in violations]
    ctx = multiprocessing.get_context("fork")
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(lifter.netlist, lifter.config, lifter.mapper),
        ) as pool:
            indexed = pool.map(_lift_one, list(enumerate(violations)))
    except (OSError, ValueError):  # pool could not start: degrade
        return [lifter.lift_pair(v) for v in violations]
    indexed.sort(key=lambda pair: pair[0])
    return [result for _, result in indexed]
