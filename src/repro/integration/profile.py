"""Profile-guided test integration — §3.4.2 of the paper.

The integrator:

1. instruments the application with basic-block counters and runs it on
   representative inputs (our ISA simulator's leader-PC profile),
2. picks an integration point that is *routinely but not hotly*
   executed,
3. splices a call to the aging-test routine at that point,
4. estimates the overhead by instruction counting (the paper compares
   IR instruction counts before/after), and
5. if the estimate exceeds the user threshold, gates the tests behind
   an invocation counter so only every Nth execution runs them.

The paper implements this as LLVM passes; here the "IR" is assembly
text, which our toolchain can rewrite directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import telemetry
from ..core.config import TestIntegrationConfig
from ..cpu.asm import assemble
from ..cpu.cpu import Cpu, CpuStall
from .library_gen import FAULT_SENTINEL, AgingLibrary


@dataclass
class BlockProfile:
    """Execution counts per basic-block leader, plus totals."""

    block_counts: Dict[int, int]
    total_instructions: int
    label_of_pc: Dict[int, str]

    def labelled_counts(self) -> Dict[str, int]:
        return {
            self.label_of_pc[pc]: count
            for pc, count in self.block_counts.items()
            if pc in self.label_of_pc
        }


def profile_application(source: str) -> BlockProfile:
    """Run the application with block counters (§3.4.2 step 1)."""
    program = assemble(source)
    cpu = Cpu(program, profile=True)
    result = cpu.run()
    label_of_pc = {
        pc: label
        for label, pc in program.symbols.items()
        if pc < 4 * program.size
    }
    return BlockProfile(
        block_counts=result.block_counts,
        total_instructions=result.instructions,
        label_of_pc=label_of_pc,
    )


@dataclass
class IntegrationPlan:
    """The integrator's decisions, for reporting."""

    label: str
    block_count: int
    estimated_overhead: float
    gate_period: int = 1  # 1 = ungated; N = run tests every Nth visit
    strategy: str = "sequential"  # test scheduling of the spliced routine

    @property
    def gated(self) -> bool:
        return self.gate_period > 1


@dataclass
class IntegratedApplication:
    """An application with the aging tests spliced in."""

    source: str
    plan: IntegrationPlan
    library: AgingLibrary

    def run(self, alu=None, fpu=None, mdu=None, max_instructions: int = 20_000_000):
        """Execute; returns (RunResult, fault_detected: bool)."""
        program = assemble(self.source)
        cpu = Cpu(program, alu=alu, fpu=fpu, mdu=mdu)
        try:
            result = cpu.run(max_instructions=max_instructions)
        except CpuStall:
            return None, True
        return result, result.exit_value == FAULT_SENTINEL


class ProfileGuidedIntegrator:
    """Splices an aging library into an application, §3.4.2 style."""

    def __init__(
        self,
        library: AgingLibrary,
        config: Optional[TestIntegrationConfig] = None,
    ):
        self.library = library
        self.config = config or TestIntegrationConfig()
        # Measured per-visit costs, keyed by (strategy, gate_period,
        # library fingerprint) — see _visit_costs.
        self._cost_cache: Dict[tuple, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def choose_block(self, profile: BlockProfile) -> Tuple[str, int]:
        """Pick the integration label.

        Candidates execute at least ``min_block_executions`` times
        ("routinely accessed") and account for at most
        ``max_block_share`` of dynamic instructions ("not frequently
        invoked"); among them, the least-frequent wins.
        """
        candidates: List[Tuple[int, str]] = []
        labelled = profile.labelled_counts()
        for label, count in labelled.items():
            if label.startswith("__vega"):
                continue
            if count < self.config.min_block_executions:
                continue
            share = count / max(1, profile.total_instructions)
            if share > self.config.max_block_share:
                continue
            candidates.append((count, label))
        if not candidates:
            raise ValueError(
                "no basic block satisfies the integration constraints"
            )
        count, label = min(candidates)
        return label, count

    def _harness_cost(
        self, plan: IntegrationPlan, preseed: Optional[int] = None
    ) -> int:
        """Exact dynamic instruction cost of one visit to the call site.

        Assembles a minimal harness — the real call site followed by an
        exit, plus the real support code for ``plan`` — and executes it
        fault-free.  ``preseed`` overrides the gate counter's initial
        value: ``gate_period - 1`` forces the single visit down the
        run-tests path, ``0`` down the skip path.
        """
        lines = self._call_site(plan) + ["    ecall", ""]
        lines.extend(self._support_code(plan))
        source = "\n".join(lines) + "\n"
        if preseed:
            source = source.replace(
                "__vega_ctr: .word 0", f"__vega_ctr: .word {preseed}"
            )
        result = Cpu(assemble(source)).run()
        return result.instructions - 1  # the harness's own ecall

    def _visit_costs(self, plan: IntegrationPlan) -> Tuple[int, int]:
        """(run-path, skip-path) dynamic cost per visit, memoized."""
        key = (
            plan.strategy,
            plan.gate_period,
            self.library._fingerprint(),
        )
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        if plan.gated:
            costs = (
                self._harness_cost(plan, preseed=plan.gate_period - 1),
                self._harness_cost(plan, preseed=0),
            )
        else:
            costs = (self._harness_cost(plan), 0)
        self._cost_cache[key] = costs
        return costs

    def estimate_overhead(
        self,
        profile: BlockProfile,
        block_count: int,
        gate_period: int = 1,
        strategy: str = "sequential",
    ) -> float:
        """Dynamic-instruction overhead of splicing (the paper's IR delta).

        Measured, not modelled: the exact call site + support code that
        :meth:`_splice` would emit — for the *scheduling strategy that
        will actually be spliced* — is assembled and executed once per
        (strategy, period), giving the precise per-visit cost of the
        run-tests and gate-skip paths.  Over ``block_count`` visits the
        gate counter runs the tests exactly ``block_count //
        gate_period`` times, so the returned estimate equals the spliced
        program's measured instruction delta over the profiled inputs.
        """
        plan = IntegrationPlan(
            label="",
            block_count=block_count,
            estimated_overhead=0.0,
            gate_period=gate_period,
            strategy=strategy,
        )
        run_cost, skip_cost = self._visit_costs(plan)
        runs = block_count // gate_period
        added = runs * run_cost + (block_count - runs) * skip_cost
        return added / max(1, profile.total_instructions)

    def plan(
        self, profile: BlockProfile, strategy: str = "sequential"
    ) -> IntegrationPlan:
        label, count = self.choose_block(profile)
        overhead = self.estimate_overhead(profile, count, strategy=strategy)
        period = 1
        while (
            overhead > self.config.overhead_threshold
            and period < 1 << 20
        ):
            period *= 2
            overhead = self.estimate_overhead(
                profile, count, period, strategy
            )
        telemetry.event(
            "integration.plan",
            label=label,
            block_count=count,
            gate_period=period,
            strategy=strategy,
            estimated_overhead=round(overhead, 6),
        )
        telemetry.add("integration.plans")
        return IntegrationPlan(
            label=label,
            block_count=count,
            estimated_overhead=overhead,
            gate_period=period,
            strategy=strategy,
        )

    # ------------------------------------------------------------------
    def integrate(
        self, source: str, strategy: str = "sequential"
    ) -> IntegratedApplication:
        """Profile, plan, and splice; returns the rewritten program."""
        profile = profile_application(source)
        plan = self.plan(profile, strategy=strategy)
        spliced = self._splice(source, plan)
        return IntegratedApplication(
            source=spliced, plan=plan, library=self.library
        )

    def _splice(self, source: str, plan: IntegrationPlan) -> str:
        lines = source.splitlines()
        out: List[str] = []
        pattern = re.compile(rf"^\s*{re.escape(plan.label)}\s*:\s*$")
        inline_pattern = re.compile(
            rf"^(\s*){re.escape(plan.label)}\s*:\s*(\S.*)$"
        )
        spliced = False
        for line in lines:
            if not spliced and pattern.match(line.split("#")[0]):
                out.append(line)
                out.extend(self._call_site(plan))
                spliced = True
                continue
            inline = None if spliced else inline_pattern.match(line.split("#")[0])
            if inline:
                out.append(f"{plan.label}:")
                out.extend(self._call_site(plan))
                out.append(f"    {inline.group(2)}")
                spliced = True
                continue
            out.append(line)
        if not spliced:
            raise ValueError(f"label {plan.label!r} not found in source")
        out.append("")
        out.extend(self._support_code(plan))
        return "\n".join(out) + "\n"

    def _call_site(self, plan: IntegrationPlan) -> List[str]:
        lines = [
            "    # --- vega aging-test integration point ---",
            "    addi sp, sp, -16",
            "    sw ra, 0(sp)",
        ]
        if plan.gated:
            lines.append("    jal ra, __vega_gate")
        else:
            lines.append("    jal ra, __vega_tests")
        lines += [
            "    lw ra, 0(sp)",
            "    addi sp, sp, 16",
            "    # --- end vega integration point ---",
        ]
        return lines

    def _support_code(self, plan: IntegrationPlan) -> List[str]:
        lines: List[str] = []
        if plan.gated:
            lines.append(".data")
            lines.append("__vega_ctr: .word 0")
            lines.append(".text")
            lines.append("__vega_gate:")
            lines.append("    addi sp, sp, -16")
            lines.append("    sw t0, 0(sp)")
            lines.append("    sw t1, 4(sp)")
            lines.append("    sw t2, 8(sp)")
            lines.append("    la t0, __vega_ctr")
            lines.append("    lw t1, 0(t0)")
            lines.append("    addi t1, t1, 1")
            lines.append(f"    li t2, {plan.gate_period}")
            lines.append("    blt t1, t2, __vega_gate_skip")
            lines.append("    li t1, 0")
            lines.append("    sw t1, 0(t0)")
            lines.append("    lw t0, 0(sp)")
            lines.append("    lw t1, 4(sp)")
            lines.append("    lw t2, 8(sp)")
            lines.append("    addi sp, sp, 16")
            lines.append("    j __vega_tests")
            lines.append("__vega_gate_skip:")
            lines.append("    sw t1, 0(t0)")
            lines.append("    lw t0, 0(sp)")
            lines.append("    lw t1, 4(sp)")
            lines.append("    lw t2, 8(sp)")
            lines.append("    addi sp, sp, 16")
            lines.append("    ret")
        lines.extend(self.library.routine_source(plan.strategy).splitlines())
        return lines
