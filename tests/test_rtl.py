"""Tests for the RTL DSL and its synthesis to gates.

Strategy: build small combinational modules, synthesize them, and check
the gate-level simulation against ordinary Python arithmetic across
exhaustive or hypothesis-generated operands.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.cells import make_vega28_library
from repro.rtl.signal import Module, RtlError, leading_zero_count, mux, mux_by_index
from repro.rtl.synth import synthesize
from repro.sim.gatesim import GateSimulator

U8 = st.integers(min_value=0, max_value=255)
U16 = st.integers(min_value=0, max_value=0xFFFF)


def _comb_module(name, width, build):
    """Helper: module with inputs a,b -> output y = build(a, b)."""
    m = Module(name)
    a = m.input("a", width)
    b = m.input("b", width)
    m.output("y", build(m, a, b))
    # Synthesis requires at least a well-formed module; no registers here.
    return m


def _eval_comb(module, a, b, out="y"):
    sim = GateSimulator(synthesize(module, make_vega28_library()))
    return sim.evaluate({"a": a, "b": b})[out]


class TestSignalShaping:
    def test_width_mismatch_raises(self):
        m = Module("t")
        a = m.input("a", 4)
        b = m.input("b", 5)
        with pytest.raises(RtlError, match="width"):
            _ = a & b

    def test_int_coercion(self):
        m = Module("t")
        a = m.input("a", 4)
        y = a & 0b0101
        assert y.width == 4

    def test_slicing_and_concat(self):
        m = Module("t")
        a = m.input("a", 8)
        low = a[:4]
        high = a[4:]
        again = low.concat(high)
        assert again.width == 8
        assert [id(x) for x in again.bits] == [id(x) for x in a.bits]

    def test_zext_sext(self):
        m = Module("t")
        a = m.input("a", 4)
        assert a.zext(8).width == 8
        assert a.sext(8).bits[7] is a.bits[3]
        with pytest.raises(RtlError):
            a.zext(2)

    def test_repeat_requires_single_bit(self):
        m = Module("t")
        a = m.input("a", 2)
        with pytest.raises(RtlError):
            a.repeat(3)

    def test_constant_folding_collapses(self):
        m = Module("t")
        a = m.input("a", 1)
        zero = m.const(0, 1)
        assert (a & zero).bits[0].op == "const"
        assert (a | zero).bits[0] is a.bits[0]
        assert (a ^ a).bits[0].op == "const"

    def test_interning_shares_nodes(self):
        m = Module("t")
        a = m.input("a", 1)
        b = m.input("b", 1)
        x = a & b
        y = a & b
        assert x.bits[0] is y.bits[0]
        # Commutativity canonicalization also shares b & a.
        z = b & a
        assert z.bits[0] is x.bits[0]


class TestCombinationalSynthesis:
    @given(a=U8, b=U8)
    @settings(max_examples=20, deadline=None)
    def test_bitwise_ops(self, a, b):
        m = Module("bw")
        sa = m.input("a", 8)
        sb = m.input("b", 8)
        m.output("y_and", sa & sb)
        m.output("y_or", sa | sb)
        m.output("y_xor", sa ^ sb)
        m.output("y_not", ~sa)
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        out = sim.evaluate({"a": a, "b": b})
        assert out["y_and"] == a & b
        assert out["y_or"] == a | b
        assert out["y_xor"] == a ^ b
        assert out["y_not"] == (~a) & 0xFF

    @given(a=U16, b=U16)
    @settings(max_examples=20, deadline=None)
    def test_add_sub(self, a, b):
        m = Module("arith")
        sa = m.input("a", 16)
        sb = m.input("b", 16)
        m.output("sum", sa + sb)
        m.output("diff", sa - sb)
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        out = sim.evaluate({"a": a, "b": b})
        assert out["sum"] == (a + b) & 0xFFFF
        assert out["diff"] == (a - b) & 0xFFFF

    @given(a=U8, b=U8)
    @settings(max_examples=20, deadline=None)
    def test_comparisons(self, a, b):
        m = Module("cmp")
        sa = m.input("a", 8)
        sb = m.input("b", 8)
        m.output("eq", sa.eq(sb))
        m.output("ult", sa.ult(sb))
        m.output("slt", sa.slt(sb))
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        out = sim.evaluate({"a": a, "b": b})
        signed = lambda v: v - 256 if v >= 128 else v
        assert out["eq"] == int(a == b)
        assert out["ult"] == int(a < b)
        assert out["slt"] == int(signed(a) < signed(b))

    @given(a=U8, sh=st.integers(min_value=0, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_shifts(self, a, sh):
        m = Module("sh")
        sa = m.input("a", 8)
        ssh = m.input("b", 3)
        m.output("shl", sa.shl(ssh))
        m.output("shr", sa.shr(ssh))
        m.output("sra", sa.sra(ssh))
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        out = sim.evaluate({"a": a, "b": sh})
        assert out["shl"] == (a << sh) & 0xFF
        assert out["shr"] == a >> sh
        signed = a - 256 if a >= 128 else a
        assert out["sra"] == (signed >> sh) & 0xFF

    @given(a=U8, b=U8)
    @settings(max_examples=15, deadline=None)
    def test_multiplier(self, a, b):
        m = _comb_module("mul", 8, lambda m, x, y: x * y)
        assert _eval_comb(m, a, b) == a * b

    @given(a=U8, b=U8, s=st.integers(min_value=0, max_value=1))
    @settings(max_examples=15, deadline=None)
    def test_mux(self, a, b, s):
        m = Module("mx")
        sa = m.input("a", 8)
        sb = m.input("b", 8)
        ss = m.input("s", 1)
        m.output("y", mux(ss, sa, sb))
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        out = sim.evaluate({"a": a, "b": b, "s": s})
        assert out["y"] == (b if s else a)

    def test_mux_by_index(self):
        m = Module("mxi")
        sel = m.input("s", 2)
        arms = [m.const(v, 8) for v in (11, 22, 33)]
        m.output("y", mux_by_index(sel, arms))
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        assert sim.evaluate({"s": 0})["y"] == 11
        assert sim.evaluate({"s": 1})["y"] == 22
        assert sim.evaluate({"s": 2})["y"] == 33
        assert sim.evaluate({"s": 3})["y"] == 11  # out of range -> arm 0

    @given(a=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_leading_zero_count(self, a):
        m = Module("lzc")
        sa = m.input("a", 16)
        m.output("y", leading_zero_count(sa))
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        expected = 16 if a == 0 else 16 - a.bit_length()
        assert sim.evaluate({"a": a})["y"] == expected

    @given(a=U8, b=U8)
    @settings(max_examples=15, deadline=None)
    def test_reductions(self, a, b):
        m = Module("red")
        sa = m.input("a", 8)
        sb = m.input("b", 8)
        m.output("any", sa.any())
        m.output("all", sa.all())
        m.output("par", sa.parity())
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        out = sim.evaluate({"a": a, "b": b})
        assert out["any"] == int(a != 0)
        assert out["all"] == int(a == 0xFF)
        assert out["par"] == bin(a).count("1") % 2


class TestSequentialSynthesis:
    def test_register_requires_next(self):
        m = Module("seq")
        m.register("r", 4)
        with pytest.raises(RtlError, match="next-state"):
            synthesize(m, make_vega28_library())

    def test_counter(self):
        m = Module("ctr")
        en = m.input("en", 1)
        r = m.register("count", 4, init=0)
        r.next = mux(en, r.q, r.q + 1)
        m.output("count_out", r.q)
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        values = [sim.step({"en": 1})["count_out"] for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]
        # Disable: holds value.
        assert sim.step({"en": 0})["count_out"] == 5
        assert sim.step({"en": 0})["count_out"] == 5

    def test_register_init_value(self):
        m = Module("init")
        r = m.register("r", 4, init=0b1010)
        r.next = r.q
        m.output("y", r.q)
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        assert sim.step({})["y"] == 0b1010

    def test_pipelined_adder_matches_paper_example(self):
        # Listing 1 of the paper, via the DSL this time.
        m = Module("adder")
        a = m.input("a", 2)
        b = m.input("b", 2)
        aq = m.register("aq", 2)
        bq = m.register("bq", 2)
        oreg = m.register("o", 2)
        aq.next = a
        bq.next = b
        oreg.next = aq.q + bq.q
        m.output("o_out", oreg.q)
        sim = GateSimulator(synthesize(m, make_vega28_library()))
        sim.step({"a": 1, "b": 3})
        sim.step({"a": 0, "b": 0})
        out = sim.step({"a": 0, "b": 0})
        assert out["o_out"] == (1 + 3) & 0b11
