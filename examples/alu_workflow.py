#!/usr/bin/env python3
"""Full Vega workflow on the 32-bit ALU (§4-5 of the paper).

Synthesizes the RV32I ALU, profiles it with the embench-style *minver*
workload, runs aging-aware STA for a 10-year lifetime, lifts the
violating paths into software test cases, and finally injects one of
the discovered failures into a gate-level co-simulation to watch the
generated suite catch it.

Run:  python examples/alu_workflow.py
"""

from repro.aging.charlib import AgingTimingLibrary
from repro.core.config import AgingAnalysisConfig, ErrorLiftingConfig
from repro.cpu.alu_design import build_alu
from repro.cpu.cosim import GateAluBackend
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.netlist.cells import VEGA28
from repro.sim.probes import profile_operand_stream
from repro.sta.aging_sta import AgingAwareSta
from repro.workloads import collect_operand_streams


def main() -> None:
    alu = build_alu()
    stats = alu.stats()
    print(f"ALU synthesized: {stats['_cells']} cells, {stats['_dffs']} flops")

    print("\n[1/4] Signal-probability profiling with 'minver' ...")
    alu_stream, _ = collect_operand_streams(["minver"])
    profile = profile_operand_stream(alu, alu_stream)
    parked_low = sum(1 for v in profile.sp.values() if v < 0.05)
    print(f"  {len(alu_stream)} ALU operations profiled; "
          f"{parked_low}/{len(profile.sp)} nets parked near logic 0")

    print("\n[2/4] Aging-aware STA (10-year lifetime, worst corner) ...")
    timing_lib = AgingTimingLibrary.characterize(VEGA28)
    sta = AgingAwareSta(
        alu,
        timing_lib,
        config=AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=100),
    )
    result = sta.analyze(profile)
    report = result.report
    print(f"  target period {result.period_ns:.3f} ns "
          f"({1000/result.period_ns:.0f} MHz); fresh design meets timing: "
          f"{not result.fresh_report.violations}")
    print(f"  after aging: {len(report.setup_violations())} setup-violating "
          f"paths, {len(report.unique_endpoint_pairs())} unique endpoint pairs")

    print("\n[3/4] Error Lifting (formal test generation) ...")
    lifter = ErrorLifter(alu, ErrorLiftingConfig(), AluMapper())
    lifting = lifter.lift(report)
    print(f"  outcomes: {lifting.outcome_counts()}")
    suite = AgingLibrary.from_lifting_report(lifting, name="vega_alu")
    print(f"  {len(suite.test_cases)} test cases; "
          f"one full pass takes {suite.suite_cycles()} cycles")
    for case in suite.test_cases[:3]:
        print("   ", case.describe().splitlines()[0].lstrip("; "))

    print("\n[4/4] Injecting a failure and running the suite ...")
    failing = lifter.failing_netlists(report)[0]
    print(f"  injected: {failing.model.label}")
    detection = suite.run_suite(alu=GateAluBackend(failing.netlist))
    if detection.detected:
        print(f"  DETECTED by test {detection.detected_by!r} "
              f"after {detection.cycles} cycles")
    else:
        print("  not detected by this suite order")
    healthy = suite.run_suite(alu=GateAluBackend(alu))
    print(f"  healthy ALU passes the suite: {not healthy.detected}")


if __name__ == "__main__":
    main()
