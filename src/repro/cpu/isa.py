"""Instruction-set definition for the repo's RV32I-style core ("VR32").

A faithful-in-spirit subset of RV32I plus a binary16 floating-point
extension (mirroring the Zfh idea at our FPU's width):

* integer ALU ops (register and immediate forms),
* loads/stores (word/half/byte),
* branches and jumps,
* FP16 compute (fadd.h .. fle.h), moves, converts, loads/stores,
* ``frflags``/``fsflags`` for the accumulated FP status flags,
* ``ecall`` to halt.

Instructions are kept in decoded form (no binary encoding): the paper's
artifacts are assembly-level test cases, and everything downstream —
the simulator, the co-simulation harness, profile-guided integration —
operates on this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Optional

from .alu_design import AluOp
from .fpu_design import FpuOp
from .mdu_design import MduOp


class Fmt(Enum):
    """Operand format of a mnemonic (drives parsing and execution)."""

    R = auto()        # rd, rs1, rs2
    I = auto()        # rd, rs1, imm
    LOAD = auto()     # rd, imm(rs1)
    STORE = auto()    # rs2, imm(rs1)
    BRANCH = auto()   # rs1, rs2, label
    JAL = auto()      # rd, label
    JALR = auto()     # rd, imm(rs1)
    U = auto()        # rd, imm
    FR = auto()       # fd, fs1, fs2
    FCMP = auto()     # rd, fs1, fs2
    FLOAD = auto()    # fd, imm(rs1)
    FSTORE = auto()   # fs2, imm(rs1)
    FMVXH = auto()    # rd, fs1
    FMVHX = auto()    # fd, rs1
    FCVTWH = auto()   # rd, fs1
    FCVTHW = auto()   # fd, rs1
    SYS = auto()      # no operands / single register


@dataclass(frozen=True)
class Spec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Fmt
    alu_op: Optional[AluOp] = None
    fpu_op: Optional[FpuOp] = None
    mdu_op: Optional[MduOp] = None
    cycles: int = 1
    mem_size: int = 0
    mem_signed: bool = False


#: Cycle costs loosely follow the CV32E40P: single-cycle ALU, 2-cycle
#: loads, taken-branch penalty (applied dynamically), 2-cycle FP ops.
SPECS: Dict[str, Spec] = {}


def _spec(*args, **kwargs) -> None:
    spec = Spec(*args, **kwargs)
    SPECS[spec.mnemonic] = spec


# Integer register-register (through the ALU backend).
for name, op in [
    ("add", AluOp.ADD), ("sub", AluOp.SUB), ("sll", AluOp.SLL),
    ("slt", AluOp.SLT), ("sltu", AluOp.SLTU), ("xor", AluOp.XOR),
    ("srl", AluOp.SRL), ("sra", AluOp.SRA), ("or", AluOp.OR),
    ("and", AluOp.AND),
]:
    _spec(name, Fmt.R, alu_op=op)

# Integer register-immediate (also through the ALU backend).
for name, op in [
    ("addi", AluOp.ADD), ("slti", AluOp.SLT), ("sltiu", AluOp.SLTU),
    ("xori", AluOp.XOR), ("ori", AluOp.OR), ("andi", AluOp.AND),
    ("slli", AluOp.SLL), ("srli", AluOp.SRL), ("srai", AluOp.SRA),
]:
    _spec(name, Fmt.I, alu_op=op)

# RV32M multiplication subset (through the MDU backend).
_spec("mul", Fmt.R, mdu_op=MduOp.MUL)
_spec("mulh", Fmt.R, mdu_op=MduOp.MULH, cycles=2)
_spec("mulhsu", Fmt.R, mdu_op=MduOp.MULHSU, cycles=2)
_spec("mulhu", Fmt.R, mdu_op=MduOp.MULHU, cycles=2)

_spec("lui", Fmt.U)
_spec("auipc", Fmt.U)

for name, size, signed in (
    ("lw", 4, False), ("lh", 2, True), ("lhu", 2, False),
    ("lb", 1, True), ("lbu", 1, False),
):
    _spec(name, Fmt.LOAD, cycles=2, mem_size=size, mem_signed=signed)
for name, size in (("sw", 4), ("sh", 2), ("sb", 1)):
    _spec(name, Fmt.STORE, cycles=1, mem_size=size)

for name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
    _spec(name, Fmt.BRANCH)
_spec("jal", Fmt.JAL, cycles=2)
_spec("jalr", Fmt.JALR, cycles=2)

# FP16 extension (through the FPU backend).
for name, op in [
    ("fadd.h", FpuOp.FADD), ("fsub.h", FpuOp.FSUB), ("fmul.h", FpuOp.FMUL),
    ("fmin.h", FpuOp.FMIN), ("fmax.h", FpuOp.FMAX),
]:
    _spec(name, Fmt.FR, fpu_op=op, cycles=2)
for name, op in [
    ("feq.h", FpuOp.FEQ), ("flt.h", FpuOp.FLT), ("fle.h", FpuOp.FLE),
]:
    _spec(name, Fmt.FCMP, fpu_op=op, cycles=2)
_spec("flh", Fmt.FLOAD, cycles=2)
_spec("fsh", Fmt.FSTORE, cycles=1)
_spec("fmv.x.h", Fmt.FMVXH)
_spec("fmv.h.x", Fmt.FMVHX)
_spec("fcvt.w.h", Fmt.FCVTWH, cycles=2)
_spec("fcvt.h.w", Fmt.FCVTHW, cycles=2)

_spec("frflags", Fmt.SYS)
_spec("fsflags", Fmt.SYS)
_spec("ecall", Fmt.SYS)

#: Extra cycles charged when a branch is taken (pipeline refill).
TAKEN_BRANCH_PENALTY = 2


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``rd``/``rs1``/``rs2`` index the integer file; ``fd``/``fs1``/``fs2``
    the FP file; ``imm`` is the sign-extended immediate; ``target`` a
    resolved absolute PC for branches/jumps.  The spec is resolved once
    at construction — the simulator's hot loop reads it per executed
    instruction.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    fd: int = 0
    fs1: int = 0
    fs2: int = 0
    imm: int = 0
    target: Optional[int] = None
    source_line: int = 0
    spec: Optional[Spec] = None

    def __post_init__(self):
        object.__setattr__(self, "spec", SPECS[self.mnemonic])


REG_NAMES: Dict[str, int] = {}
for i in range(32):
    REG_NAMES[f"x{i}"] = i
_ABI = (
    ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1"]
    + [f"a{i}" for i in range(8)]
    + [f"s{i}" for i in range(2, 12)]
    + [f"t{i}" for i in range(3, 7)]
)
for i, name in enumerate(_ABI):
    REG_NAMES[name] = i
REG_NAMES["fp"] = 8

FREG_NAMES: Dict[str, int] = {f"f{i}": i for i in range(32)}
_FABI = (
    [f"ft{i}" for i in range(8)]
    + ["fs0", "fs1"]
    + [f"fa{i}" for i in range(8)]
    + [f"fs{i}" for i in range(2, 12)]
    + [f"ft{i}" for i in range(8, 12)]
)
for i, name in enumerate(_FABI):
    FREG_NAMES[name] = i
