"""Shared fixtures: cell library, the paper's example adder, RTL helpers."""

import pytest

from repro.core.example import build_paper_adder, make_paper_library
from repro.netlist.cells import make_vega28_library


@pytest.fixture
def vega28():
    return make_vega28_library()


@pytest.fixture
def paper_lib():
    return make_paper_library()


@pytest.fixture
def paper_adder():
    return build_paper_adder()
