"""Instruction rendering (disassembly) for the VR32 ISA.

Completes the toolchain triangle — assembler (text → decoded), encoder
(decoded → words), and this renderer (decoded → text) — so binary test
blobs and lifted suites can always be inspected as assembly, and so the
property ``assemble(render(i)) == i`` can be tested.
"""

from __future__ import annotations

from typing import List

from .encoding import decode
from .isa import Fmt, Instruction

_IREG = [f"x{i}" for i in range(32)]
_FREG = [f"f{i}" for i in range(32)]


def render_instruction(instr: Instruction) -> str:
    """Canonical assembly text for one decoded instruction.

    Branch/jump targets render as absolute-address labels in the form
    ``. + offset`` is avoided: the caller is expected to resolve labels;
    here the absolute target renders as a bare integer, which the
    assembler accepts.
    """
    name = instr.mnemonic
    fmt = instr.spec.fmt
    if fmt is Fmt.R:
        return f"{name} {_IREG[instr.rd]}, {_IREG[instr.rs1]}, {_IREG[instr.rs2]}"
    if fmt is Fmt.I:
        return f"{name} {_IREG[instr.rd]}, {_IREG[instr.rs1]}, {instr.imm}"
    if fmt is Fmt.LOAD:
        return f"{name} {_IREG[instr.rd]}, {instr.imm}({_IREG[instr.rs1]})"
    if fmt is Fmt.STORE:
        return f"{name} {_IREG[instr.rs2]}, {instr.imm}({_IREG[instr.rs1]})"
    if fmt is Fmt.BRANCH:
        return f"{name} {_IREG[instr.rs1]}, {_IREG[instr.rs2]}, {instr.target}"
    if fmt is Fmt.JAL:
        return f"{name} {_IREG[instr.rd]}, {instr.target}"
    if fmt is Fmt.JALR:
        return f"{name} {_IREG[instr.rd]}, {instr.imm}({_IREG[instr.rs1]})"
    if fmt is Fmt.U:
        return f"{name} {_IREG[instr.rd]}, {instr.imm}"
    if fmt is Fmt.FR:
        return f"{name} {_FREG[instr.fd]}, {_FREG[instr.fs1]}, {_FREG[instr.fs2]}"
    if fmt is Fmt.FCMP:
        return f"{name} {_IREG[instr.rd]}, {_FREG[instr.fs1]}, {_FREG[instr.fs2]}"
    if fmt is Fmt.FLOAD:
        return f"{name} {_FREG[instr.fd]}, {instr.imm}({_IREG[instr.rs1]})"
    if fmt is Fmt.FSTORE:
        return f"{name} {_FREG[instr.fs2]}, {instr.imm}({_IREG[instr.rs1]})"
    if fmt is Fmt.FMVXH:
        return f"{name} {_IREG[instr.rd]}, {_FREG[instr.fs1]}"
    if fmt is Fmt.FMVHX:
        return f"{name} {_FREG[instr.fd]}, {_IREG[instr.rs1]}"
    if fmt is Fmt.FCVTWH:
        return f"{name} {_IREG[instr.rd]}, {_FREG[instr.fs1]}"
    if fmt is Fmt.FCVTHW:
        return f"{name} {_FREG[instr.fd]}, {_IREG[instr.rs1]}"
    if name == "frflags":
        return f"frflags {_IREG[instr.rd]}"
    if name == "fsflags":
        return f"fsflags {_IREG[instr.rs1]}"
    return name  # ecall


def disassemble(words: List[int], base_pc: int = 0) -> str:
    """Disassemble encoded words into an annotated listing."""
    lines = []
    for index, word in enumerate(words):
        pc = base_pc + 4 * index
        try:
            text = render_instruction(decode(word, pc=pc))
        except Exception:
            text = f".word {word:#010x}  # undecodable"
        lines.append(f"{pc:08x}: {word:08x}  {text}")
    return "\n".join(lines)
