"""The online detection service: dispatch loop, ingestion, checkpoints.

:class:`DetectionService` is the fleet-side half of the paper's
"proactive runtime detection" story run as an *online* system: devices
ask for their next test, run it during idle cycles, and stream the
verdict back; the service folds verdicts into the
:class:`~repro.scheduler.belief.FleetBelief` and plans the next
dispatches with a :class:`~repro.scheduler.policy.Policy`.

The service is an asyncio event loop with **logical time**: one *tick*
is one planning round, and no wall-clock value ever enters the
decision path or the event log.  Because every client in this repo is
pure computation driven by the same single-threaded loop, a run is a
deterministic function of (fleet, arms, policy, seed, scheduler
config) — live execution and replay produce byte-identical event logs.

Operational mechanics:

* **Batching** — plan requests accumulate until ``batch_size`` devices
  are waiting (or the ``batch_window`` grace, counted in scheduler
  passes, elapses with a partial batch).  Results for a batch must all
  be ingested before the next batch plans, so ticks are strictly
  ordered.
* **Backpressure** — the ingest buffer is bounded at ``ingest_queue``;
  a submit against a full buffer raises :class:`RetryAfter` telling the
  client how many passes to back off.  Rejections are operational
  noise, not semantics: they count into :mod:`repro.core.telemetry`,
  never into the canonical event log.
* **Checkpoints** — every ``checkpoint_every`` ingested results (at a
  tick boundary, so no half-processed state exists) the full belief
  snapshot publishes through :class:`~repro.core.artifacts.
  ArtifactCache.store_checkpoint` under a content-addressed key.  A
  killed service restarted from the checkpoint continues without
  replaying the event log.
* **Drain** — shutdown stops planning, ingests whatever is still in
  flight, resolves waiting clients with "no more work", writes a final
  checkpoint, and closes the log with a ``drain`` event.

The event log is TRACE_SCHEMA JSONL (meta line, ``event`` records with
the tick as ``t_s``, closing ``counters`` line), so ``repro trace
summarize`` and :func:`~repro.core.telemetry.parse_trace` work on it
unchanged.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
from dataclasses import dataclass
from typing import (
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import SchedulerConfig
from ..core.telemetry import TRACE_SCHEMA
from .belief import ArmSpec, FleetBelief, arms_digest
from .policy import Dispatch, PlanRequest, Policy


class RetryAfter(Exception):
    """Backpressure verdict: the ingest buffer is full.

    ``retry_after`` is the suggested client back-off, in scheduler
    passes (logical time — there are no wall-clock timers anywhere in
    the service).  The service scales it with queue occupancy and the
    batch deadline, so a saturated fleet's clients fan out across
    ticks instead of retrying in lockstep every pass.
    """

    def __init__(self, retry_after: int = 1):
        super().__init__(f"ingest queue full; retry after {retry_after}")
        self.retry_after = int(retry_after)


@dataclass(frozen=True)
class ResultEvent:
    """One streamed detection outcome from a device client."""

    device_id: str
    device_index: int
    arm: str
    class_label: str
    detected: bool
    stalled: bool
    cycles: int
    detected_by: Optional[str] = None


class EventLog:
    """Deterministic JSONL event log (TRACE_SCHEMA-compatible).

    Unlike :class:`~repro.core.telemetry.Telemetry` this log carries no
    wall-clock timestamps: ``t_s`` is the logical tick, the run id is
    derived from the run's content identity, and only semantic records
    (dispatch/result/checkpoint/retire/drain) enter.  That is what lets
    a live run and its replay be compared byte for byte.
    """

    def __init__(self, run_id: str):
        self.run_id = run_id
        self.records: List[dict] = [
            {"type": "meta", "schema": TRACE_SCHEMA, "run_id": run_id}
        ]
        self.counters: Dict[str, int] = {}

    def event(self, name: str, tick: int, **attrs: object) -> None:
        self.records.append(
            {"type": "event", "name": name, "t_s": tick, "attrs": attrs}
        )
        self.counters[f"scheduler.{name}"] = (
            self.counters.get(f"scheduler.{name}", 0) + 1
        )

    def trace_records(self) -> List[dict]:
        return self.records + [
            {"type": "counters", "counters": dict(self.counters)}
        ]

    def to_jsonl(self) -> str:
        out = io.StringIO()
        for record in self.trace_records():
            out.write(json.dumps(record, sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def write_jsonl(self, path: str) -> None:
        # The tmp name carries the pid: shard workers and the router may
        # publish logs under the same directory concurrently, and a
        # shared f"{path}.tmp" would let two writers clobber each
        # other's half-written file before the rename.  fsync before
        # os.replace so the atomic rename never publishes an empty or
        # partially flushed log after a crash.
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fp:
            fp.write(self.to_jsonl())
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)


class ServiceKilled(Exception):
    """Raised internally when a simulated kill point is reached."""


class DetectionService:
    """Asyncio scheduler service over one fleet.

    Drive it by running :meth:`run` concurrently with client tasks that
    call :meth:`request_plan` / :meth:`submit_result` (see
    :mod:`repro.scheduler.replay` for the simulated clients).
    """

    def __init__(
        self,
        belief: FleetBelief,
        arms: Sequence[ArmSpec],
        policy: Policy,
        config: SchedulerConfig,
        log: EventLog,
        cache: Optional[ArtifactCache] = None,
        checkpoint_key: Optional[str] = None,
        tick: int = 0,
        events_ingested: int = 0,
    ):
        self.belief = belief
        self.arms = list(arms)
        #: name -> ArmSpec, built once; the ingest hot path resolves
        #: every streamed result's arm against this instead of a
        #: linear catalogue scan.
        self._arms_by_name = {arm.name: arm for arm in self.arms}
        self.policy = policy
        self.config = config
        self.log = log
        self.cache = cache
        self.checkpoint_key = checkpoint_key
        self.tick = int(tick)
        self.events_ingested = int(events_ingested)
        self._last_checkpoint = self.events_ingested
        #: Simulated kill switch: drop dead (no drain, no final
        #: checkpoint) once this many events have been ingested.
        self.kill_after_events: Optional[int] = None
        self._waiters: List[Tuple[PlanRequest, asyncio.Future]] = []
        self._outstanding: Dict[str, Dispatch] = {}
        self._buffer: List[ResultEvent] = []
        self._draining = False
        self._stopped = False
        self._window = 0
        #: Lockstep mode only: device ids of clients still enrolled
        #: (never yet answered "retire"), built lazily on first plan.
        self._live_clients: Optional[set] = None
        #: Optional async callable awaited when a scheduler pass makes
        #: no progress (default: one cooperative ``asyncio.sleep(0)``
        #: pass).  The distributed shard worker parks here on its
        #: "frame arrived" event instead of spinning on the socket.
        #: In lockstep mode idle passes never mutate state (the batch
        #: window cannot expire), so the wait strategy cannot change
        #: the trajectory.
        self.idle_wait: Optional[Callable[[], Awaitable[None]]] = None

    # -- client API ----------------------------------------------------
    async def request_plan(
        self, device_id: str, device_index: int
    ) -> Optional[Dispatch]:
        """Ask for the device's next test; None means "retire".

        The request parks until the batch it lands in is planned.
        """
        if self._draining or self._stopped:
            # A drained client retires exactly like one the planner
            # retires: with a logged ``retire`` event.  The two paths
            # used to be asymmetric (the planner logged, this early
            # return did not), so drain accounting depended on *where*
            # a client happened to be when shutdown began.  A stopped
            # (killed or fully drained) service keeps its log closed.
            if self._draining and not self._stopped:
                self._log_retire(device_id)
            return None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(
            (PlanRequest(device_id=device_id, device_index=device_index),
             future)
        )
        return await future

    async def submit_result(self, result: ResultEvent) -> None:
        """Stream one outcome in; raises :class:`RetryAfter` when the
        bounded ingest buffer is full."""
        if self._stopped:
            return  # dead service: drop the result, client will retire
        if len(self._buffer) >= max(1, self.config.ingest_queue):
            telemetry.add("scheduler.ingest_rejected")
            raise RetryAfter(retry_after=self._retry_hint())
        self._buffer.append(result)
        telemetry.add("scheduler.ingest_accepted")
        # One pass of cooperative latency so the scheduler loop can
        # drain the buffer before the same client submits again.
        await asyncio.sleep(0)

    def _retry_hint(self) -> int:
        """Back-off hint: scheduler passes until the next drain is
        expected to free ingest capacity.

        The backlog drains in batch-sized planning rounds, so a deeper
        buffer means proportionally more passes before a retried
        submit can land.  On top of that the next drain is deferred by
        whichever is pending: the in-flight batch (its remaining
        results must stream in and ingest before the next plan) or,
        with nothing outstanding, a partial batch's remaining grace
        window.  Monotone non-decreasing in queue occupancy, so a
        saturated fleet's clients spread their retries instead of
        hammering every tick.
        """
        batch = max(1, self.config.batch_size)
        backlog_passes = -(-len(self._buffer) // batch)  # ceil
        if self._outstanding:
            # Results still in flight: they land in the buffer and
            # ingest batch-wise before capacity frees for a retried
            # submit, so the hint must cover their drain too — the old
            # hint ignored them and saturated clients re-collided on
            # the very next pass.
            deadline = -(-len(self._outstanding) // batch)
        else:
            deadline = max(0, self.config.batch_window - self._window)
        return max(1, backlog_passes + deadline)

    def request_shutdown(self) -> None:
        """Begin a graceful drain: no new batches, finish in-flight."""
        self._draining = True

    # -- scheduler loop ------------------------------------------------
    async def run(self) -> None:
        """Scheduler main loop; returns once the fleet is drained."""
        try:
            while not self._stopped:
                progressed = self._step()
                if self._finished():
                    break
                if not progressed:
                    # Yield so clients can enqueue requests/results.
                    if self.idle_wait is not None:
                        await self.idle_wait()
                    else:
                        await asyncio.sleep(0)
        except ServiceKilled:
            # Simulated hard kill: leave belief/log state as-is (the
            # periodic checkpoints are the only survivors), but release
            # parked clients so the driving gather() can unwind.
            self._stopped = True
            self._retire_waiters()
            return
        self._drain()

    def _finished(self) -> bool:
        if self._outstanding or self._buffer:
            return False
        if any(not future.done() for _, future in self._waiters):
            return False
        if self._draining:
            return True
        # Nothing in flight and nobody waiting: done exactly when the
        # whole fleet is retired (detected or out of dispatchable
        # arms).  Clients of done devices that have not re-requested
        # yet get their "retire" answer from ``request_plan`` directly
        # once the loop stops.
        return self.belief.all_done(self.arms)

    def _step(self) -> bool:
        """One scheduler pass: ingest, then maybe plan.  Returns
        whether any state advanced."""
        progressed = False
        if self._buffer and self._ingest_ready():
            self._ingest()
            progressed = True
        if not self._outstanding and not self._buffer and not self._draining:
            progressed = self._maybe_plan() or progressed
        elif self._draining and not self._outstanding and not self._buffer:
            self._retire_waiters(log=True)
            progressed = True
        return progressed

    def _ingest_ready(self) -> bool:
        """Whether the buffered results may fold in on this pass.

        The default service ingests whatever is buffered, so the event
        log's within-tick record order follows the submit interleaving
        — deterministic for in-loop clients, racy for remote ones.  In
        ``lockstep`` mode (the distributed shard contract) ingestion
        waits for the in-flight batch to return *completely*; the batch
        then folds in sorted by device index, making the trajectory
        independent of frame arrival order on the wire.
        """
        if not self.config.lockstep:
            return True
        return len(self._buffer) >= len(self._outstanding)

    # -- ingestion -----------------------------------------------------
    def _ingest(self) -> None:
        """Fold buffered results into the belief, device order."""
        batch = sorted(self._buffer, key=lambda r: r.device_index)
        self._buffer.clear()
        for result in batch:
            dispatch = self._outstanding.pop(result.device_id, None)
            arm = self._arm_by_name(result.arm)
            self.belief.record_outcome(
                result.device_id,
                arm,
                result.detected,
                result.cycles,
                detected_by=result.detected_by,
            )
            self.events_ingested += 1
            self.log.event(
                "result",
                self.tick,
                device=result.device_id,
                arm=result.arm,
                detected=result.detected,
                stalled=result.stalled,
                cycles=result.cycles,
                detected_by=result.detected_by,
                seq=self.events_ingested,
            )
            telemetry.add("scheduler.results")
            if dispatch is None:
                telemetry.add("scheduler.unmatched_results")
            if (
                self.kill_after_events is not None
                and self.events_ingested >= self.kill_after_events
            ):
                raise ServiceKilled()
        if not self._outstanding:
            self._maybe_checkpoint()

    def _arm_by_name(self, name: str) -> ArmSpec:
        try:
            return self._arms_by_name[name]
        except KeyError:
            raise KeyError(f"unknown arm {name!r}") from None

    # -- planning ------------------------------------------------------
    def _lockstep_target(self) -> int:
        """Clients still enrolled (never yet answered "retire").

        The lockstep batch closes only once *every* enrolled client's
        request has arrived, so the close-time waiter set — and with
        it retire ordering and batch composition — is a pure function
        of the trajectory, never of frame arrival timing.
        """
        if self._live_clients is None:
            self._live_clients = {
                device_id
                for device_id in self.belief.devices
                if not self.belief.device_done(device_id, self.arms)
            }
        return len(self._live_clients)

    def _drop_client(self, device_id: str) -> None:
        if self._live_clients is not None:
            self._live_clients.discard(device_id)

    def _maybe_plan(self) -> bool:
        pending = [
            (request, future)
            for request, future in self._waiters
            if not future.done()
        ]
        if not pending:
            return False
        if self.config.lockstep:
            if len(pending) < self._lockstep_target():
                return False
            # Close with the full client set, in device order — the
            # scan order (and so the retire-event order) cannot depend
            # on how requests interleaved on the wire.
            pending.sort(key=lambda item: item[0].device_index)
        live: List[Tuple[PlanRequest, asyncio.Future]] = []
        for request, future in pending:
            if self.belief.device_done(request.device_id, self.arms):
                future.set_result(None)
                self._drop_client(request.device_id)
                self._log_retire(request.device_id)
            else:
                live.append((request, future))
        self._waiters = list(live)
        if not live:
            return True
        if not self.config.lockstep:
            target = min(self.config.batch_size, self._active_devices())
            if len(live) < target and self._window < self.config.batch_window:
                self._window += 1
                return False
        self._window = 0
        live.sort(key=lambda item: item[0].device_index)
        batch = live[: self.config.batch_size]
        self._waiters = list(live[self.config.batch_size :])
        self.tick += 1
        schedule = self.policy.plan(
            self.belief,
            self.arms,
            [request for request, _ in batch],
            self.tick,
        )
        by_device = {d.device_id: d for d in schedule.dispatches}
        for request, future in batch:
            dispatch = by_device.get(request.device_id)
            if dispatch is None:
                future.set_result(None)
                self._drop_client(request.device_id)
                self._log_retire(request.device_id)
                continue
            self.belief.record_dispatch(
                request.device_id, self._arm_by_name(dispatch.arm)
            )
            self._outstanding[request.device_id] = dispatch
            self.log.event(
                "dispatch",
                self.tick,
                device=request.device_id,
                arm=dispatch.arm,
                kind=dispatch.kind,
                cost_cycles=dispatch.cost_cycles,
                policy=self.policy.name,
            )
            telemetry.add("scheduler.dispatches")
            future.set_result(dispatch)
        return True

    def _active_devices(self) -> int:
        return self.belief.active_count(self.arms)

    def _log_retire(self, device_id: str) -> None:
        """One canonical ``retire`` record, shared by every path that
        sends a client home (planner, drain, early drain return)."""
        device = self.belief.devices.get(device_id)
        self.log.event(
            "retire",
            self.tick,
            device=device_id,
            detected=device.detected if device is not None else False,
        )

    def _retire_waiters(self, log: bool = False) -> None:
        """Resolve every parked client with "no more work".

        ``log=True`` on the graceful-drain path records a ``retire``
        event per resolved client — the same accounting the planner
        gives retired devices — so drained and planner-retired clients
        are logged identically.  The kill path leaves ``log=False``:
        a dead service's log is abandoned, only checkpoints survive.
        """
        for request, future in self._waiters:
            if not future.done():
                if log:
                    self._log_retire(request.device_id)
                future.set_result(None)
        self._waiters = []

    # -- checkpoints and drain -----------------------------------------
    def checkpoint_state(self) -> dict:
        """Everything a restarted service needs to resume."""
        return {
            "belief": self.belief.snapshot(),
            "tick": self.tick,
            "events_ingested": self.events_ingested,
            "arms": arms_digest(self.arms),
            "policy": self.policy.name,
            "policy_seed": self.policy.seed,
        }

    def _maybe_checkpoint(self, force: bool = False) -> None:
        due = (
            self.events_ingested - self._last_checkpoint
            >= max(1, self.config.checkpoint_every)
        )
        if not (due or (force and self.events_ingested
                        > self._last_checkpoint)):
            return
        self._last_checkpoint = self.events_ingested
        digest = self.belief.digest()
        if self.cache is not None and self.checkpoint_key is not None:
            self.cache.store_checkpoint(
                self.checkpoint_key, self.checkpoint_state()
            )
            telemetry.add("scheduler.checkpoints")
        self.log.event(
            "checkpoint",
            self.tick,
            events_ingested=self.events_ingested,
            belief=digest,
        )

    def _drain(self) -> None:
        self._retire_waiters()
        self._maybe_checkpoint(force=True)
        self.log.event(
            "drain",
            self.tick,
            events_ingested=self.events_ingested,
            belief=self.belief.digest(),
        )
        self._stopped = True
