"""Software test cases lifted from module-level traces (§3.3.5).

Instruction Construction translates a cycle-accurate module trace into
assembly.  Per the paper, the values of input/output registers are fixed
here, while *register allocation is deferred* to Test Integration so the
tests can be woven into an application without clobbering live state.

The :class:`IsaMapper` protocol is the "expert knowledge of the CPU's
microarchitecture": one implementation per (microarchitecture, unit)
knows which instruction activates which module-level signals and builds
the lookup tables the paper describes.  Mappers live in
:mod:`repro.cpu.mappers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Protocol, Sequence

from ..formal.bmc import InputAssumption
from ..formal.trace import Trace
from .models import FailureModel


class UnmappableTraceError(Exception):
    """A waveform that cannot be converted into a practical test case.

    Mirrors the paper's "FC" outcome: e.g. the only observable
    corruption is a status flag that an earlier instruction of the same
    trace already sets, leaving nothing to compare against (§5.2.2).
    """


@dataclass
class TestInstruction:
    """One checked instruction of a test case.

    (Domain vocabulary, not a pytest suite: ``__test__ = False``.)

    ``operands`` holds symbolic register slots mapped to immediate
    values (e.g. ``{"rs1": 0x7fff, "rs2": 3}``); ``expected`` is the
    golden destination value to compare against, or None when the
    instruction is set-up only; ``expected_flags`` optionally checks a
    status-flag register after the instruction.
    """

    __test__ = False  # keep pytest from collecting this dataclass

    mnemonic: str
    operands: Dict[str, int] = field(default_factory=dict)
    expected: Optional[int] = None
    expected_flags: Optional[int] = None
    comment: str = ""


@dataclass
class TestCase:
    """A compact, self-checking aging test for one failure model."""

    __test__ = False  # keep pytest from collecting this dataclass

    name: str
    unit: str
    model: FailureModel
    instructions: List[TestInstruction] = field(default_factory=list)
    source_trace: Optional[Trace] = None

    @property
    def checked_instructions(self) -> int:
        return sum(
            1
            for ins in self.instructions
            if ins.expected is not None or ins.expected_flags is not None
        )

    def describe(self) -> str:
        lines = [f"; test {self.name} ({self.unit}, {self.model.label})"]
        for ins in self.instructions:
            ops = ", ".join(f"{k}={v:#x}" for k, v in ins.operands.items())
            check = ""
            if ins.expected is not None:
                check = f" -> expect {ins.expected:#x}"
            if ins.expected_flags is not None:
                check += f" flags {ins.expected_flags:#x}"
            lines.append(f";   {ins.mnemonic} {ops}{check}")
        return "\n".join(lines)


class IsaMapper(Protocol):
    """Microarchitecture knowledge for one functional unit."""

    #: Unit tag, e.g. "alu" or "fpu".
    unit: str

    def assumptions(self) -> Sequence[InputAssumption]:
        """``assume property`` restrictions for realistic module input
        (§3.3.3), e.g. the opcode range of valid operations."""
        ...

    def trace_to_test(
        self,
        trace: Trace,
        golden_outputs: Sequence[Mapping[str, int]],
        model: FailureModel,
        name: str,
    ) -> TestCase:
        """Convert a BMC witness into a test case.

        ``golden_outputs[t]`` holds the fault-free module outputs at
        cycle ``t`` (from simulating the original netlist on the
        trace).  Raises :class:`UnmappableTraceError` for FC cases.
        """
        ...
