"""Scaling — parallel, vectorized Aging Analysis vs the seed path.

The seed profiled workloads one operand per simulated cycle group
(scalar values, one Python dict walk per gate per cycle) and ran STA by
walking per-net dicts in levelized order.  Phase 1 now packs operands
into bit-parallel lanes sharded across ``fork`` workers, propagates
arrival times over numpy level vectors, and memoizes both artifacts in
a content-addressed cache.

This benchmark runs the full Aging Analysis (SP profiling + aged STA)
on the ALU under the seed-style path and the new engines, checks the
SP profiles and violating-path sets are identical, and records the
wall-time table.  Acceptance: packed-parallel profiling + vectorized
STA is at least 2x faster than the seed-serial path (the observed gap
is orders of magnitude; 2x is the floor the cache can never hide
because the first run always simulates).

``VEGA_SMOKE=1`` shrinks the operand budget and relaxes the threshold
so CI can exercise every path in seconds.
"""

import os
import tempfile
import time

from repro.core.artifacts import ArtifactCache  # noqa: F401  (re-export check)
from repro.core.config import VegaConfig
from repro.core.workflow import VegaWorkflow
from repro.sim.gatesim import GateSimulator
from repro.sim.parallel_profile import (
    profile_operand_stream_parallel,
    profile_operand_stream_reference,
)
from repro.sim.probes import profile_operand_stream
from repro.sta.aging_sta import AgingAwareSta

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
#: The scalar baseline simulates ~3 cycles per operand at ~1300 cells;
#: its wall time caps how long this benchmark may run.
OPS = 800 if SMOKE else 20000
MIN_SPEEDUP = 1.5 if SMOKE else 2.0
REPEATS = 3


def _analyze(ctx, profile):
    unit = ctx.alu
    sta = AgingAwareSta(
        unit.netlist,
        ctx.timing_lib,
        config=ctx.config.aging,
        gated_instances=unit.gated_instances(),
        vectorized=True,
    )
    return sta.analyze(profile)


def _seed_serial(ctx, stream):
    """Scalar profiling + dict-walking STA: the pre-optimization path."""
    unit = ctx.alu
    profile = profile_operand_stream_reference(unit.netlist, stream)
    sta = AgingAwareSta(
        unit.netlist,
        ctx.timing_lib,
        config=ctx.config.aging,
        gated_instances=unit.gated_instances(),
        vectorized=False,
    )
    return profile, sta.analyze(profile)


def _packed(ctx, stream):
    profile = profile_operand_stream(ctx.alu.netlist, stream)
    return profile, _analyze(ctx, profile)


def _parallel(ctx, stream):
    profile = profile_operand_stream_parallel(
        ctx.alu.netlist, stream, workers=0
    )
    return profile, _analyze(ctx, profile)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _violation_set(result):
    return sorted(
        (v.kind, v.start, v.end, v.cells, v.arrival)
        for v in result.report.violations
    )


def test_aging_analysis_scaling(ctx, benchmark, recorder):
    stream = ctx.stream("alu")[:OPS]
    netlist = ctx.alu.netlist
    _packed(ctx, stream[:64])  # warm compile/levelize/timing-lib caches

    serial_time, (serial_profile, serial_result) = _timed(
        lambda: _seed_serial(ctx, stream), repeats=1
    )
    packed_time, (packed_profile, packed_result) = _timed(
        lambda: _packed(ctx, stream)
    )
    par_time, (par_profile, par_result) = _timed(
        lambda: _parallel(ctx, stream)
    )

    # The cached path: one priming run populates the artifact store, the
    # timed run reuses the SP profile and aged delay model.
    with tempfile.TemporaryDirectory() as cache_dir:
        workflow = VegaWorkflow(VegaConfig(cache_dir=cache_dir))
        workflow.run_aging_analysis(netlist, stream, workload_id="alu:minver")
        cached_time, (cached_profile, cached_result) = _timed(
            lambda: workflow.run_aging_analysis(
                netlist, stream, workload_id="alu:minver"
            )
        )
        assert workflow.last_cache_stats == (2, 0)

    # Every engine must agree bit-for-bit with the seed path.
    assert packed_profile.sp == serial_profile.sp
    assert par_profile.sp == serial_profile.sp
    assert cached_profile.sp == serial_profile.sp
    assert packed_profile.samples == serial_profile.samples
    baseline = _violation_set(serial_result)
    assert _violation_set(packed_result) == baseline
    assert _violation_set(par_result) == baseline
    assert _violation_set(cached_result) == baseline

    rows = [
        f"ALU aging analysis: {len(stream)}-op minver stream, "
        f"{netlist.stats()['_cells']} cells, {os.cpu_count()} CPU(s), "
        f"fast paths best of {REPEATS}"
        + (" [smoke]" if SMOKE else ""),
        "engine                            | wall (s) | speedup",
    ]
    for engine, label, wall in (
        ("seed_serial", "seed serial (scalar + dict STA)", serial_time),
        ("packed_vectorized", "packed + vectorized STA", packed_time),
        ("parallel_vectorized", "parallel + vectorized STA", par_time),
        ("cache_hit", "artifact cache hit (2nd run)", cached_time),
    ):
        rows.append(
            f"{label:33s} | {wall:8.3f} | {serial_time / wall:7.2f}x"
        )
        recorder.sample(
            "profiling_scaling", "wall_time", wall, "seconds",
            engine=engine, ops=OPS, timing=True,
        )
    recorder.sample(
        "profiling_scaling", "speedup", serial_time / par_time, "ratio",
        engine="parallel_vectorized", ops=OPS,
        timing=True, bigger_is_better=True,
    )
    recorder.sample(
        "profiling_scaling", "profiled_samples", serial_profile.samples,
        "samples", ops=OPS, bigger_is_better=True,
    )
    recorder.sample(
        "profiling_scaling", "aged_violations",
        len(serial_result.report.violations), "paths", ops=OPS,
    )
    recorder.table("profiling_scaling", "\n".join(rows))

    assert serial_time / par_time >= MIN_SPEEDUP, (
        f"parallel+vectorized only {serial_time / par_time:.2f}x faster"
    )

    result = benchmark(lambda: _packed(ctx, stream)[0])
    assert result.samples == 3 * len(stream)


def test_run_loop_hoists_compiled_cycle(ctx, monkeypatch):
    """`GateSimulator.run` never re-enters the compile machinery.

    A second simulator over the same netlist hits the per-structure
    compile cache, and the hoisted `run` loop must not consult it again
    per cycle — the loop body is the compiled straight-line function
    plus state capture only.  The hoisted loop is also benchmarked
    against the equivalent per-`step` loop; it must not be slower.
    """
    netlist = ctx.alu.netlist
    stream = ctx.stream("alu")[:512]
    frames = [
        {name: op.get(name, 0) for name in (p.name for p in netlist.input_ports())}
        for op in stream
    ]
    sim = GateSimulator(netlist)  # warms the compile cache

    compiles = []
    original = GateSimulator._compile_uncached
    monkeypatch.setattr(
        GateSimulator,
        "_compile_uncached",
        lambda self: compiles.append(1) or original(self),
    )
    hot = GateSimulator(netlist)
    hot.run(frames)
    assert compiles == []  # zero recompiles: cache hit + hoisted loop

    def run_loop():
        sim.reset()
        sim.run(frames)

    def step_loop():
        sim.reset()
        for frame in frames:
            sim.step(frame)

    run_time, _ = _timed(run_loop, repeats=5)
    step_time, _ = _timed(step_loop, repeats=5)
    # Identical work, fewer per-cycle lookups: run() must not lose, and
    # on small netlists it wins outright.
    assert run_time <= step_time * 1.05, (
        f"hoisted run() slower than step() loop: "
        f"{run_time:.4f}s vs {step_time:.4f}s"
    )
