"""The regression gate: diff two canonical benchmark documents.

Samples match across runs on ``(metric, unit-independent identity)``
where identity is the metadata with volatile provenance keys removed.
A matched pair regresses when the candidate is worse than the baseline
by strictly more than the threshold percentage in the metric's bad
direction (``bigger_is_better`` metadata, default: smaller is better).

Findings carry a severity: ``fail`` exits the CLI nonzero, ``warn``
prints but passes.  ``timing_warn_only`` downgrades regressions of
samples tagged ``timing: true`` — wall-clock numbers on shared CI
runners jitter far beyond any honest threshold, while correctness-
derived counts (devices simulated, events ingested, coverage rows)
must hold exactly-ish.  Structural problems (metric missing from the
candidate, unit mismatch) always fail: a silently vanished metric is
precisely the failure mode the gate exists to catch.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from .sample import Sample, document_samples, parse_document

#: Provenance metadata excluded from cross-run sample identity.
VOLATILE_KEYS = frozenset({"git_rev", "timestamp", "cpus", "hostname"})


class BenchCompareError(ValueError):
    """A comparison could not even start (missing file, bad schema).

    The message names the offending document (baseline vs candidate),
    its path, and what to do about it — the CLI prints it verbatim, so
    a CI failure reads as an instruction rather than a traceback.
    """


def identity(sample: Sample) -> Tuple:
    """Cross-run identity of a sample: metric + stable metadata."""
    stable = tuple(
        sorted(
            (k, _hashable(v))
            for k, v in sample.metadata.items()
            if k not in VOLATILE_KEYS
        )
    )
    return (sample.metric, stable)


def _hashable(value):
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class Finding:
    """One comparison outcome worth telling a human about."""

    severity: str  # "fail" | "warn" | "info"
    kind: str  # "regression" | "missing" | "unit-mismatch" | "new"
    metric: str
    detail: str

    def format(self) -> str:
        return f"[{self.severity.upper()}] {self.kind}: {self.metric}: {self.detail}"


@dataclass
class ComparisonResult:
    benchmark: str
    threshold_pct: float
    findings: List[Finding]
    compared: int

    @property
    def failed(self) -> bool:
        return any(f.severity == "fail" for f in self.findings)

    def summary(self) -> str:
        fails = sum(f.severity == "fail" for f in self.findings)
        warns = sum(f.severity == "warn" for f in self.findings)
        verdict = "FAIL" if self.failed else "ok"
        return (
            f"bench compare [{self.benchmark}]: {self.compared} sample(s) "
            f"matched, {fails} failure(s), {warns} warning(s), "
            f"threshold {self.threshold_pct:g}% -> {verdict}"
        )


def _describe(sample: Sample) -> str:
    keys = {
        k: v for k, v in sorted(sample.metadata.items())
        if k not in VOLATILE_KEYS and k not in ("timing", "bigger_is_better")
    }
    ctx = ", ".join(f"{k}={v}" for k, v in keys.items())
    return f"({ctx})" if ctx else ""


def compare_documents(
    baseline: Mapping,
    candidate: Mapping,
    threshold_pct: float = 10.0,
    timing_warn_only: bool = False,
) -> ComparisonResult:
    """Diff two parsed BENCH documents; see the module docstring."""
    base_by_id: Dict[Tuple, Sample] = {}
    for sample in document_samples(baseline):
        base_by_id[identity(sample)] = sample
    findings: List[Finding] = []
    compared = 0
    seen = set()
    for sample in document_samples(candidate):
        key = identity(sample)
        seen.add(key)
        base = base_by_id.get(key)
        if base is None:
            findings.append(Finding(
                "info", "new", sample.metric,
                f"{_describe(sample)} present only in candidate",
            ))
            continue
        if base.unit != sample.unit:
            findings.append(Finding(
                "fail", "unit-mismatch", sample.metric,
                f"{_describe(sample)} baseline unit {base.unit!r} vs "
                f"candidate unit {sample.unit!r}",
            ))
            continue
        compared += 1
        finding = _judge(base, sample, threshold_pct, timing_warn_only)
        if finding is not None:
            findings.append(finding)
    for key, base in sorted(base_by_id.items()):
        if key not in seen:
            findings.append(Finding(
                "fail", "missing", base.metric,
                f"{_describe(base)} present in baseline but absent from "
                f"candidate",
            ))
    return ComparisonResult(
        benchmark=str(candidate.get("benchmark", "?")),
        threshold_pct=threshold_pct,
        findings=findings,
        compared=compared,
    )


def _judge(
    base: Sample,
    cand: Sample,
    threshold_pct: float,
    timing_warn_only: bool,
) -> Finding | None:
    bigger_is_better = bool(base.metadata.get("bigger_is_better", False))
    delta = cand.value - base.value
    worse = delta < 0 if bigger_is_better else delta > 0
    if not worse:
        return None
    if base.value == 0:
        pct = float("inf")
    else:
        # Same 9-significant-digit normalization as canonical sample
        # values, so "exactly at threshold" isn't decided by the
        # binary-float residue of the division (1.1/1.0 -> 10.000…009).
        pct = float(f"{abs(delta) / abs(base.value) * 100.0:.9g}")
    if pct <= threshold_pct:
        return None
    severity = "fail"
    if timing_warn_only and base.metadata.get("timing"):
        severity = "warn"
    direction = "down" if bigger_is_better else "up"
    return Finding(
        severity, "regression", base.metric,
        f"{_describe(base)} {base.value} -> {cand.value} {base.unit} "
        f"({direction} {pct:.1f}%, threshold {threshold_pct:g}%)",
    )


_REMEDY = {
    "baseline": (
        "re-record the benchmark and commit the refreshed baseline "
        "under benchmarks/baselines/"
    ),
    "candidate": (
        "run the benchmark suite first (pytest benchmarks/) to "
        "produce it"
    ),
}


def _read_document(role: str, path: str | pathlib.Path) -> Mapping:
    """Read + parse one document, or raise an actionable error."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise BenchCompareError(
            f"{role} benchmark document {path} cannot be read "
            f"({exc.strerror or exc}); {_REMEDY[role]}"
        ) from exc
    try:
        return parse_document(text)
    except ValueError as exc:
        raise BenchCompareError(
            f"{role} benchmark document {path} is not comparable: "
            f"{exc}; {_REMEDY[role]}"
        ) from exc


def compare_files(
    baseline_path: str | pathlib.Path,
    candidate_path: str | pathlib.Path,
    threshold_pct: float = 10.0,
    timing_warn_only: bool = False,
) -> ComparisonResult:
    """Compare two documents on disk.

    Raises :class:`BenchCompareError` — naming the role, the path, and
    the remedy — when either file is missing, unreadable, or carries an
    incompatible schema.
    """
    baseline = _read_document("baseline", baseline_path)
    candidate = _read_document("candidate", candidate_path)
    return compare_documents(
        baseline, candidate, threshold_pct, timing_warn_only
    )
