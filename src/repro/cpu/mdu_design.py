"""Gate-level multiply unit (MDU) — RV32M's multiplication subset.

A third functional unit, beyond the paper's ALU/FPU pair, demonstrating
the workflow's claim that "Vega's design can be applied to other
instruction sets, microarchitectures, and process technologies" (§4):
the same phases — SP profiling, aging STA, failure-model lifting, suite
generation — run unmodified on this unit (see
``benchmarks/test_extension_mdu.py``).

Structure mirrors the CV32E40P MULT block: a two-stage pipeline around
a 32x32 unsigned array multiplier, with sign corrections for the
signed/mixed variants computed on the high word:

    high(mulh)    = high_u - (a<0 ? b_u : 0) - (b<0 ? a_u : 0)
    high(mulhsu)  = high_u - (a<0 ? b_u : 0)

The unit carries the same mission-constant DFT hook as the ALU/FPU.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

from ..netlist.cells import CellLibrary, VEGA28
from ..netlist.netlist import Netlist
from ..rtl.signal import Module, mux, mux_by_index
from ..rtl.synth import synthesize


class MduOp(IntEnum):
    MUL = 0      # low 32 bits of a * b
    MULH = 1     # high 32, signed x signed
    MULHSU = 2   # high 32, signed x unsigned
    MULHU = 3    # high 32, unsigned x unsigned


VALID_MDU_OPS = tuple(int(op) for op in MduOp)

MDU_LATENCY = 2


def build_mdu_module(width: int = 32) -> Module:
    """The MDU as an RTL module (pre-synthesis)."""
    m = Module("mdu")
    op = m.input("op", 2)
    a = m.input("a", width)
    b = m.input("b", width)
    dft = m.input("dft", 1)

    op_q = m.register("op_q", 2)
    a_q = m.register("a_q", width)
    b_q = m.register("b_q", width)
    dft_q = m.register("dft_q", 1)
    res_q = m.register("res_q", width)
    op_q.next = op
    a_q.next = a
    b_q.next = b
    dft_q.next = dft

    pattern = m.const(0x3C3C3C3C & ((1 << width) - 1), width)
    av = a_q.q ^ (pattern & dft_q.q.repeat(width))
    bv = b_q.q ^ (pattern & dft_q.q.repeat(width))

    product = av * bv  # unsigned, 2*width bits
    low = product[:width]
    high_u = product[width:]

    zero = m.const(0, width)
    a_neg = av[width - 1]
    b_neg = bv[width - 1]
    corr_a = mux(a_neg, zero, bv)  # subtract b_u when a is negative
    corr_b = mux(b_neg, zero, av)  # subtract a_u when b is negative
    high_signed = high_u - corr_a - corr_b     # MULH
    high_su = high_u - corr_a                  # MULHSU

    res_q.next = mux_by_index(
        op_q.q, [low, high_signed, high_su, high_u]
    )
    m.output("result", res_q.q)
    return m


def build_mdu(
    width: int = 32, library: Optional[CellLibrary] = None
) -> Netlist:
    """Synthesized MDU netlist on the vega28 library."""
    return synthesize(build_mdu_module(width), library or VEGA28)


def mdu_reference(op: int, a: int, b: int, width: int = 32) -> int:
    """Golden software model of the MDU."""
    mask = (1 << width) - 1
    a &= mask
    b &= mask

    def signed(x: int) -> int:
        return x - (1 << width) if x >> (width - 1) else x

    operation = MduOp(op)
    if operation is MduOp.MUL:
        return (a * b) & mask
    if operation is MduOp.MULH:
        return ((signed(a) * signed(b)) >> width) & mask
    if operation is MduOp.MULHSU:
        return ((signed(a) * b) >> width) & mask
    return ((a * b) >> width) & mask  # MULHU
