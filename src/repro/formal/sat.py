"""A CDCL SAT solver (conflict-driven clause learning).

The paper drives JasperGold to find traces covering its failure models.
With no SMT/SAT package available offline, this module implements the
solver itself: two-watched-literal propagation, 1UIP conflict analysis
with clause learning and non-chronological backjumping, EVSIDS-style
decision activity with phase saving, geometric restarts, and learned-
clause garbage collection.

A configurable conflict budget turns "too hard" into an explicit
``UNKNOWN`` result — which the Vega workflow reports as the paper's
"FF" (formal-tool timeout) outcome in Table 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from ..core import telemetry


class SatStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatResult:
    """Outcome of a solve call; ``model[var] -> bool`` when SAT."""

    status: SatStatus
    model: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return self.status is SatStatus.SAT


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


class SatSolver:
    """CDCL solver over DIMACS-style signed integer literals.

    Variables are positive integers; literal ``-v`` is the negation of
    ``v``.  Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        result = solver.solve()
        assert result and result.model[b]
    """

    def __init__(self):
        self._nvars = 0
        # Internal literal encoding: 2v for +v, 2v+1 for -v.
        self._watches: List[List[_Clause]] = [[], []]
        self._val: List[int] = [-1]  # -1 unassigned / 0 false / 1 true
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        # Max-heap of unassigned variables ordered by activity, with a
        # position index so bumps can sift in place (MiniSat's order
        # heap).  Keeps _decide O(log n) instead of scanning all vars —
        # essential for incremental solving, where variables accumulate
        # across BMC frames.
        self._heap: List[int] = []
        self._heap_pos: List[int] = [-1]
        self._phase: List[int] = [0]
        self._trail: List[int] = []  # internal lits, assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._unsat = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        # Lifetime count of learned clauses (units included) — unlike
        # len(self._learned), never shrunk by _reduce_db.
        self.learned_total = 0
        # Optional DRAT proof log: learned clauses in order, for
        # external checking of UNSAT results (drat-trim compatible).
        self.proof_logging = False
        self._proof: List[List[int]] = []

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self._nvars += 1
        self._val.append(-1)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._heap_pos.append(-1)
        self._phase.append(0)
        self._watches.append([])
        self._watches.append([])
        self._heap_insert(self._nvars)
        return self._nvars

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause of signed literals; duplicates and tautologies
        are simplified away.

        Clauses may also be added *between* :meth:`solve` calls — the
        incremental BMC grows the CNF one frame at a time.  Literals
        already falsified at the root level are dropped and clauses
        already satisfied at the root level are skipped, which keeps the
        two-watched-literal invariant intact across solves.  Adding
        clauses while a search is suspended mid-decision is still
        unsupported (``solve`` always returns at decision level 0).
        """
        seen: Dict[int, int] = {}
        out: List[int] = []
        for lit in lits:
            var = abs(lit)
            if var == 0 or var > self._nvars:
                raise ValueError(f"unknown variable in literal {lit}")
            internal = (var << 1) | (lit < 0)
            prior = seen.get(var)
            if prior is None:
                seen[var] = internal
                out.append(internal)
            elif prior != internal:
                return  # tautology: v and -v in the same clause
        # Root-level simplification: assignments at level 0 are
        # permanent, so satisfied clauses vanish and false literals drop.
        simplified: List[int] = []
        for lit in out:
            if self._val[lit >> 1] >= 0 and self._level[lit >> 1] == 0:
                if self._lit_val(lit) == 1:
                    return  # permanently satisfied
                continue  # permanently false: drop the literal
            simplified.append(lit)
        out = simplified
        if not out:
            self._unsat = True
            return
        if len(out) == 1:
            # Unit at the root level.
            lit = out[0]
            current = self._lit_val(lit)
            if current == 0:
                self._unsat = True
            elif current == -1:
                self._enqueue(lit, None)
            return
        clause = _Clause(out)
        self._clauses.append(clause)
        # watches[w] holds the clauses currently watching literal w; the
        # clause is revisited when w becomes false.
        self._watches[out[0]].append(clause)
        self._watches[out[1]].append(clause)

    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def drat_proof(self) -> str:
        """The learned-clause trail in DRAT format.

        Every CDCL-learned clause is RUP (reverse unit propagation)
        with respect to the formula plus earlier learned clauses, so
        the trail — terminated by the empty clause for UNSAT results —
        is checkable by standard DRAT checkers.  Enable with
        ``solver.proof_logging = True`` before solving.
        """
        lines = [
            " ".join(str(l) for l in clause) + " 0"
            for clause in self._proof
        ]
        lines.append("0")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _lit_val(self, lit: int) -> int:
        value = self._val[lit >> 1]
        if value < 0:
            return -1
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> None:
        var = lit >> 1
        self._val[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = self._val[var]
        self._trail.append(lit)

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = lit ^ 1
            watchers = self._watches[false_lit]
            keep: List[_Clause] = []
            conflict = None
            index = 0
            count = len(watchers)
            while index < count:
                clause = watchers[index]
                index += 1
                lits = clause.lits
                # Ensure the false literal sits at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_val(first) == 1:
                    keep.append(clause)
                    continue
                # Search for a new literal to watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_val(lits[k]) != 0:
                        # lits[k] is not false, so it differs from
                        # false_lit: the append never targets the list
                        # being rebuilt here.
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause)
                if self._lit_val(first) == 0:
                    # Conflict: keep remaining watchers, bail out.
                    keep.extend(watchers[index:count])
                    conflict = clause
                    break
                self.propagations += 1
                self._enqueue(first, clause)
            self._watches[false_lit] = keep
            if conflict is not None:
                return conflict
        return None

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """1UIP conflict analysis; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._nvars + 1)
        counter = 0
        lit = -1
        reason: Optional[_Clause] = conflict
        trail_index = len(self._trail) - 1
        current_level = len(self._trail_lim)

        while True:
            assert reason is not None
            self._bump_clause(reason)
            # Skip position 0 (the implied literal) except for the
            # initial conflict clause, where every literal matters.
            start = 1 if lit != -1 else 0
            for clause_lit in reason.lits[start:]:
                var = clause_lit >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_lit)
            # Walk back to the next marked literal on the trail.
            while not seen[self._trail[trail_index] >> 1]:
                trail_index -= 1
            lit = self._trail[trail_index]
            trail_index -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learned[0] = lit ^ 1

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        max_index = 1
        for i in range(2, len(learned)):
            if self._level[learned[i] >> 1] > self._level[learned[max_index] >> 1]:
                max_index = i
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, self._level[learned[1] >> 1]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = lit >> 1
            self._val[var] = -1
            self._reason[var] = None
            self._heap_insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._heap_pos[var] >= 0:
            self._heap_up(self._heap_pos[var])
        if self._activity[var] > 1e100:
            # Uniform rescale: relative order (and the heap) is preserved.
            for i in range(1, self._nvars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    # -- activity order heap -------------------------------------------
    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] >= 0:
            return
        self._heap_pos[var] = len(self._heap)
        self._heap.append(var)
        self._heap_up(len(self._heap) - 1)

    def _heap_up(self, index: int) -> None:
        # Ties break toward the lower variable index, matching the
        # linear scan this heap replaced (keeps witnesses stable).
        heap, pos, activity = self._heap, self._heap_pos, self._activity
        var = heap[index]
        key = activity[var]
        while index > 0:
            parent = (index - 1) >> 1
            pvar = heap[parent]
            pkey = activity[pvar]
            if pkey > key or (pkey == key and pvar < var):
                break
            heap[index] = pvar
            pos[pvar] = index
            index = parent
        heap[index] = var
        pos[var] = index

    def _heap_down(self, index: int) -> None:
        heap, pos, activity = self._heap, self._heap_pos, self._activity
        var = heap[index]
        key = activity[var]
        size = len(heap)
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size:
                ckey, rkey = activity[heap[child]], activity[heap[right]]
                if rkey > ckey or (rkey == ckey and heap[right] < heap[child]):
                    child = right
            cvar = heap[child]
            ckey = activity[cvar]
            if key > ckey or (key == ckey and var < cvar):
                break
            heap[index] = cvar
            pos[cvar] = index
            index = child
        heap[index] = var
        pos[var] = index

    def _heap_pop(self) -> int:
        heap, pos = self._heap, self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_down(0)
        return top

    def _decide(self) -> int:
        """Pick the unassigned variable with the highest activity.

        Assigned variables stay in the heap lazily; pop until an
        unassigned one surfaces (they re-enter on backtrack).
        """
        values = self._val
        while self._heap:
            var = self._heap_pop()
            if values[var] < 0:
                return var
        return 0

    def _reduce_db(self) -> None:
        """Drop the colder half of the learned clauses."""
        self._learned.sort(key=lambda c: c.activity)
        cutoff = len(self._learned) // 2
        removed = set()
        kept: List[_Clause] = []
        for i, clause in enumerate(self._learned):
            # Never drop clauses currently acting as reasons.
            is_reason = any(
                self._reason[lit >> 1] is clause for lit in clause.lits[:1]
            )
            if i < cutoff and not is_reason and len(clause.lits) > 2:
                removed.add(id(clause))
            else:
                kept.append(clause)
        if not removed:
            return
        self._learned = kept
        for lit in range(2, 2 * self._nvars + 2):
            self._watches[lit] = [
                c for c in self._watches[lit] if id(c) not in removed
            ]

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        conflict_limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        """Search for a model, optionally under ``assumptions``.

        ``assumptions`` are signed literals treated as forced first
        decisions (MiniSat-style): an UNSAT result under assumptions
        does *not* poison the solver — learned clauses, activities, and
        saved phases persist, and the next :meth:`solve` call may use
        different assumptions or follow :meth:`add_clause` extensions.
        ``conflict_limit`` bounds the solver's *cumulative* conflict
        count (``self.conflicts``), matching its lifetime statistics.
        """
        if telemetry.active() is None:
            return self._search(conflict_limit, assumptions)
        base = (
            self.decisions,
            self.propagations,
            self.conflicts,
            self.learned_total,
        )
        t0 = time.perf_counter()
        try:
            return self._search(conflict_limit, assumptions)
        finally:
            telemetry.add("sat.solves")
            telemetry.add("sat.solve_s", time.perf_counter() - t0)
            telemetry.add("sat.decisions", self.decisions - base[0])
            telemetry.add("sat.propagations", self.propagations - base[1])
            telemetry.add("sat.conflicts", self.conflicts - base[2])
            telemetry.add("sat.learned", self.learned_total - base[3])

    def _search(
        self,
        conflict_limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        if self._unsat:
            return SatResult(SatStatus.UNSAT)
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return SatResult(SatStatus.UNSAT)
        assume: List[int] = []
        for lit in assumptions:
            var = abs(lit)
            if var == 0 or var > self._nvars:
                raise ValueError(f"unknown variable in assumption {lit}")
            assume.append((var << 1) | (lit < 0))

        restart_interval = 100.0
        conflicts_until_restart = restart_interval
        max_learned = max(1000, len(self._clauses) // 2)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_until_restart -= 1
                if not self._trail_lim:
                    self._unsat = True
                    return SatResult(
                        SatStatus.UNSAT,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                    )
                learned, back_level = self._analyze(conflict)
                self.learned_total += 1
                self._backtrack(back_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    clause = _Clause(learned, learned=True)
                    clause.activity = self._cla_inc
                    self._learned.append(clause)
                    self._watches[learned[0]].append(clause)
                    self._watches[learned[1]].append(clause)
                    self._enqueue(learned[0], clause)
                if self.proof_logging:
                    self._proof.append(
                        [(l >> 1) * (-1 if l & 1 else 1) for l in learned]
                    )
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if conflict_limit is not None and self.conflicts >= conflict_limit:
                    self._backtrack(0)
                    return SatResult(
                        SatStatus.UNKNOWN,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                    )
                if len(self._learned) > max_learned:
                    self._reduce_db()
                    max_learned = int(max_learned * 1.3)
                continue

            if conflicts_until_restart <= 0:
                conflicts_until_restart = restart_interval
                restart_interval *= 1.5
                self._backtrack(0)
                continue

            if len(self._trail_lim) < len(assume):
                # Re-take pending assumptions as forced decisions, one
                # decision level per assumption (dummy levels for
                # assumptions already implied true keep the level <->
                # assumption correspondence intact across backjumps).
                lit = assume[len(self._trail_lim)]
                value = self._lit_val(lit)
                if value == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    # The formula (plus earlier assumptions) implies the
                    # negation: UNSAT under these assumptions only.
                    result = SatResult(
                        SatStatus.UNSAT,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                    )
                    self._backtrack(0)
                    return result
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue

            var = self._decide()
            if var == 0:
                model = {
                    v: bool(self._val[v]) for v in range(1, self._nvars + 1)
                }
                result = SatResult(
                    SatStatus.SAT,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                )
                self._backtrack(0)
                return result
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            # Phase saving: re-try the variable's previous polarity.
            lit = (var << 1) | (0 if self._phase[var] else 1)
            self._enqueue(lit, None)
