"""Tests for the §6.3 extensions: fuzz lifting, EM, and IR drop."""

import random

import pytest

from repro.aging.em import (
    EmParameters,
    electromigration_analysis,
    ir_drop_analysis,
)
from repro.core.example import build_paper_adder
from repro.formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from repro.lifting.fuzz import FuzzTraceGenerator
from repro.lifting.instrument import instrument_for_cover, make_failing_netlist
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.formal.bmc import InputAssumption
from repro.sim.gatesim import GateSimulator
from repro.sim.probes import SPCounter, profile_activity

SETUP_MODEL = FailureModel("d4", "d10", ViolationKind.SETUP, CMode.ONE)


def _random_stimulus(count, seed=3):
    rng = random.Random(seed)
    return [{"a": rng.randrange(4), "b": rng.randrange(4)} for _ in range(count)]


class TestFuzzTraceGenerator:
    def test_finds_activating_trace(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_MODEL)
        fuzzer = FuzzTraceGenerator(instr, seed=1)
        result = fuzzer.search(max_trials=100, max_depth=5)
        assert result.covered
        assert result.trace is not None
        assert result.trace.mismatch_nets == ["o[1]"]

    def test_trace_replays_on_failing_netlist(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_MODEL)
        fuzzer = FuzzTraceGenerator(instr, seed=2)
        result = fuzzer.search(max_trials=100, max_depth=5)
        failing = make_failing_netlist(paper_adder, SETUP_MODEL)
        good = GateSimulator(paper_adder)
        bad = GateSimulator(failing.netlist)
        mismatch = False
        for frame in result.trace.inputs:
            if good.step(frame) != bad.step(frame):
                mismatch = True
        assert mismatch

    def test_respects_assumptions(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_MODEL)
        fuzzer = FuzzTraceGenerator(
            instr,
            assumptions=[InputAssumption("a", [1, 3])],
            seed=4,
        )
        result = fuzzer.search(max_trials=100, max_depth=5)
        assert result.covered
        for frame in result.trace.inputs:
            assert frame["a"] in (1, 3)

    def test_cannot_prove_unreachability(self, paper_adder):
        """Fuzzing an unactivatable fault just exhausts its budget."""
        instr = instrument_for_cover(paper_adder, SETUP_MODEL)
        # Freeze both inputs: the trigger (d4 toggling) can never fire.
        fuzzer = FuzzTraceGenerator(
            instr,
            assumptions=[
                InputAssumption.fixed("a", 0),
                InputAssumption.fixed("b", 0),
            ],
            seed=5,
        )
        result = fuzzer.search(max_trials=30, max_depth=4)
        assert not result.covered
        assert result.trials == 30
        # The BMC, by contrast, *proves* it.
        bmc = BoundedModelChecker(
            instr.netlist,
            assumptions=[
                InputAssumption.fixed("a", 0),
                InputAssumption.fixed("b", 0),
            ],
        )
        formal = bmc.cover(
            CoverObjective(differ=instr.output_pairs), max_depth=4
        )
        assert formal.status is BmcStatus.UNREACHABLE

    def test_agrees_with_bmc_on_coverable_fault(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_MODEL)
        bmc = BoundedModelChecker(instr.netlist)
        formal = bmc.cover(
            CoverObjective(differ=instr.output_pairs), max_depth=4
        )
        fuzz = FuzzTraceGenerator(instr, seed=6).search(max_trials=200)
        assert (formal.status is BmcStatus.COVERED) == fuzz.covered


class TestActivityProfiling:
    def test_toggle_rates_bounded(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(200))
        assert all(0.0 <= r <= 1.0 for r in activity.toggle_rate.values())

    def test_constant_inputs_no_toggles(self, paper_adder):
        activity = profile_activity(paper_adder, [{"a": 2, "b": 1}] * 50)
        # After the pipeline warms up only the first transitions count.
        assert sum(activity.toggle_rate.values()) < 0.5

    def test_alternating_inputs_toggle_every_cycle(self, paper_adder):
        stim = [{"a": 3 * (i % 2), "b": 0} for i in range(100)]
        activity = profile_activity(paper_adder, stim)
        aq_net = paper_adder.instances["d1"].output_net.name
        assert activity.toggle_rate[aq_net] > 0.9

    def test_hottest_ranking(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(100))
        ranked = activity.hottest(3)
        rates = [rate for _, rate in ranked]
        assert rates == sorted(rates, reverse=True)

    def test_counter_requires_toggle_mode(self, paper_adder):
        counter = SPCounter(paper_adder, count_toggles=False)
        sim = GateSimulator(paper_adder)
        sim.step({"a": 0, "b": 0})
        counter.sample(sim)
        with pytest.raises(ValueError, match="toggle"):
            counter.activity()


class TestElectromigration:
    def test_busier_nets_fail_sooner(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(300))
        report = electromigration_analysis(paper_adder, activity)
        assert report.findings
        mttfs = [f.mttf_years for f in report.findings]
        assert mttfs == sorted(mttfs)
        worst = report.findings[0]
        best = report.findings[-1]
        assert worst.current_density >= best.current_density

    def test_hotter_fails_sooner(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(300))
        hot = electromigration_analysis(paper_adder, activity, 125.0)
        cold = electromigration_analysis(paper_adder, activity, 85.0)
        assert hot.findings[0].mttf_years < cold.findings[0].mttf_years

    def test_lifetime_filter(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(300))
        report = electromigration_analysis(paper_adder, activity)
        risky = report.below_lifetime(10.0)
        assert all(f.mttf_years < 10.0 for f in risky)

    def test_calibration_decade_scale(self, paper_adder):
        """A fully-toggling fanout-1 net lasts decades, not hours."""
        activity = profile_activity(paper_adder, _random_stimulus(300))
        report = electromigration_analysis(paper_adder, activity)
        assert 1.0 < report.findings[0].mttf_years < 10_000.0


class TestIrDrop:
    def test_peak_at_least_average(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(300))
        report = ir_drop_analysis(paper_adder, activity)
        assert report.peak_demand >= report.average_demand > 0

    def test_hotspots_sorted(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(300))
        report = ir_drop_analysis(paper_adder, activity)
        weights = [w for _, w in report.hotspots]
        assert weights == sorted(weights, reverse=True)

    def test_budget_verdict(self, paper_adder):
        activity = profile_activity(paper_adder, _random_stimulus(300))
        generous = ir_drop_analysis(paper_adder, activity, budget_fraction=10.0)
        stingy = ir_drop_analysis(paper_adder, activity, budget_fraction=1e-6)
        assert not generous.violated
        assert stingy.violated
