"""End-to-end orchestration of the three Vega phases.

`VegaWorkflow` ties together Aging Analysis (phase 1), Error Lifting
(phase 2), and Test Integration (phase 3), mirroring Figure 2 of the
paper.  Each phase is independently callable for finer control; `run`
chains them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile
from . import telemetry
from .config import VegaConfig


@dataclass
class WorkflowReport:
    """Aggregated results of a full Vega run (filled per phase)."""

    netlist_name: str = ""
    sp_profile: Optional[SPProfile] = None
    sta_report: object = None
    lifting_report: object = None
    test_suite: object = None
    #: The run's telemetry (spans/counters/events); set by ``run``.
    telemetry: Optional[telemetry.Telemetry] = None
    #: Phases loaded from checkpoints instead of recomputed.
    resumed_phases: List[str] = field(default_factory=list)

    def metrics_markdown(self) -> str:
        """Markdown metrics summary of the run's telemetry trace."""
        if self.telemetry is None:
            return ""
        return self.telemetry.summary_markdown()

    def write_trace(self, path: str) -> None:
        """Write the run's JSONL trace (no-op without telemetry)."""
        if self.telemetry is not None:
            self.telemetry.write_jsonl(path)

    def summary(self) -> str:
        lines = [f"Vega workflow report for {self.netlist_name!r}"]
        if self.sta_report is not None:
            aged = self.sta_report.report
            lines.append(
                f"  aging-prone paths: {len(aged.violations)} "
                f"({len(aged.unique_endpoint_pairs())} unique pairs)"
            )
        if self.lifting_report is not None:
            lines.append(
                f"  test cases constructed: {len(self.lifting_report.test_cases)}"
            )
        if self.test_suite is not None:
            lines.append(f"  suite cycles: {self.test_suite.suite_cycles()}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """A full per-phase report, suitable for issue trackers/docs."""
        lines = [f"# Vega report — `{self.netlist_name}`", ""]
        if self.sta_report is not None:
            aged = self.sta_report.report
            fresh = self.sta_report.fresh_report
            lines += [
                "## Phase 1 — Aging Analysis",
                "",
                f"- sign-off period: **{self.sta_report.period_ns:.3f} ns** "
                f"({1000/self.sta_report.period_ns:.0f} MHz)",
                f"- fresh violations: **{len(fresh.violations)}**",
                f"- aged setup: **{len(aged.setup_violations())}** paths, "
                f"WNS {aged.wns_setup_ns*1000:.1f} ps",
                f"- aged hold: **{len(aged.hold_violations())}** paths, "
                f"WNS {aged.wns_hold_ns*1000:.2f} ps",
                "",
                "| start | end | kind |",
                "|---|---|---|",
            ]
            for violation in aged.representative_violations():
                lines.append(
                    f"| {violation.start} | {violation.end} "
                    f"| {violation.kind} |"
                )
            lines.append("")
        if self.lifting_report is not None:
            pct = self.lifting_report.outcome_percentages()
            lines += [
                "## Phase 2 — Error Lifting",
                "",
                f"- outcomes: S {pct['S']:.1f}% / UR {pct['UR']:.1f}% / "
                f"FF {pct['FF']:.1f}% / FC {pct['FC']:.1f}%",
                f"- test cases: **{len(self.lifting_report.test_cases)}**",
                "",
            ]
        if self.test_suite is not None:
            lines += [
                "## Phase 3 — Test Integration",
                "",
                f"- suite: **{len(self.test_suite.test_cases)}** tests, "
                f"**{self.test_suite.suite_cycles()}** cycles per pass",
                "",
            ]
        return "\n".join(lines)


class VegaWorkflow:
    """Drives the three phases of the Vega workflow on one module.

    Usage::

        workflow = VegaWorkflow(VegaConfig())
        report = workflow.run(design, operand_stream, clock_period_ns=6.0)
    """

    def __init__(self, config: Optional[VegaConfig] = None):
        self.config = config or VegaConfig()
        #: (hits, misses) of the last cached run_aging_analysis call,
        #: None when caching was off.
        self.last_cache_stats: Optional[tuple] = None

    # Phase 1 ----------------------------------------------------------
    def _artifact_cache(self):
        if self.config.cache_dir is None:
            return None
        from .artifacts import ArtifactCache

        return ArtifactCache(self.config.cache_dir)

    def run_aging_analysis(
        self,
        netlist: Netlist,
        operand_stream: Sequence[Mapping[str, int]],
        clock_period_ns: Optional[float] = None,
        gated_instances: Optional[Sequence[str]] = None,
        workload_id: Optional[str] = None,
        use_cache: bool = True,
        workers: Optional[int] = None,
    ):
        """SP profiling + aging-aware STA; returns ``(profile, result)``.

        Profiling shards the workload across ``config.aging.profile_workers``
        fork processes (override per call with ``workers``) and the STA
        runs the vectorized engine when ``config.aging.sta_vectorized``.
        With ``config.cache_dir`` set, the SP profile and aged delay
        model are content-addressed — keyed by the netlist's structural
        hash, the workload (``workload_id`` plus stream content digest),
        cycle count, aging parameters, and corner — so a repeated call
        with unchanged inputs simulates nothing.
        """
        from ..sim.parallel_profile import profile_workload_streams
        from ..sta.aging_sta import AgingAwareSta

        aging = self.config.aging
        operands = list(operand_stream)
        cache = self._artifact_cache() if use_cache else None

        profile = None
        profile_key = None
        if cache is not None:
            from .artifacts import ArtifactCache

            profile_key = ArtifactCache.digest(
                "sp-profile",
                netlist.structural_hash(),
                workload_id or "",
                ArtifactCache.stream_digest(operands),
                len(operands),
                aging.profile_lanes,
            )
            profile = cache.load_profile(profile_key)
        if profile is None:
            profile = profile_workload_streams(
                netlist,
                {workload_id or "stream": operands},
                lanes=aging.profile_lanes,
                workers=workers if workers is not None else aging.profile_workers,
            )
            if cache is not None:
                cache.store_profile(profile_key, profile)

        sta = AgingAwareSta(
            netlist,
            None,  # timing library characterized lazily on cache miss
            config=aging,
            gated_instances=gated_instances,
            vectorized=aging.sta_vectorized,
        )
        aged_model = None
        increase = None
        model_key = None
        if cache is not None:
            import collections.abc

            from .artifacts import ArtifactCache

            if not gated_instances:
                gated_key = []
            elif isinstance(gated_instances, collections.abc.Mapping):
                gated_key = sorted(gated_instances.items())
            else:
                gated_key = sorted(gated_instances)
            model_key = ArtifactCache.digest(
                "aged-delays",
                netlist.structural_hash(),
                profile_key
                or ArtifactCache.digest("sp", sorted(profile.sp.items())),
                sta.corner.name,
                aging.lifetime_years,
                aging.temperature_c,
                aging.clock_gating_sp,
                gated_key,
            )
            cached = cache.load_delay_model(model_key)
            if cached is not None:
                aged_model, increase = cached
        if aged_model is None:
            from ..aging.charlib import AgingTimingLibrary

            sta.timing_lib = AgingTimingLibrary.characterize(
                netlist.library,
                lifetime_years=aging.lifetime_years,
                temperature_c=aging.temperature_c,
            )
            aged_model, increase = sta.aged_delay_model(profile)
            if cache is not None:
                cache.store_delay_model(model_key, aged_model, increase)
        result = sta.analyze(
            profile,
            clock_period_ns=clock_period_ns,
            aged_model=aged_model,
            delay_increase=increase,
        )
        self.last_cache_stats = (
            (cache.hits, cache.misses) if cache is not None else None
        )
        return profile, result

    # Phase 2 ----------------------------------------------------------
    def run_error_lifting(
        self,
        netlist: Netlist,
        sta_report,
        isa_mapper,
        workers: Optional[int] = None,
    ):
        """Formal test construction for every unique endpoint pair.

        Accepts either a raw :class:`~repro.sta.timing.StaReport` or the
        :class:`~repro.sta.aging_sta.AgingStaResult` wrapper phase 1
        produces.  ``workers`` overrides ``config.lifting.workers`` for
        this run; pairs shard across processes with deterministic
        result ordering.
        """
        from ..lifting.lifter import ErrorLifter

        report = getattr(sta_report, "report", sta_report)
        lifter = ErrorLifter(netlist, self.config.lifting, isa_mapper)
        return lifter.lift(report, workers=workers)

    # Phase 3 ----------------------------------------------------------
    def build_aging_library(self, lifting_report, name: str = "vega_tests"):
        from ..integration.library_gen import AgingLibrary

        return AgingLibrary.from_lifting_report(
            lifting_report, name=name, seed=self.config.integration.random_seed
        )

    # Checkpoint keys --------------------------------------------------
    def _checkpoint_keys(
        self,
        netlist: Netlist,
        operands: Sequence[Mapping[str, int]],
        clock_period_ns: Optional[float],
        gated_instances,
        isa_mapper,
    ) -> dict:
        """Content-addressed keys for the three phase checkpoints.

        Keys cascade — phase 2's digest embeds phase 1's, phase 3's
        embeds phase 2's — so any changed input invalidates every
        downstream checkpoint automatically.  Parallelism and
        degradation knobs (``workers``, ``keep_going``) are excluded:
        they do not change results.
        """
        import collections.abc

        from .artifacts import ArtifactCache

        aging = self.config.aging
        lifting = self.config.lifting
        if not gated_instances:
            gated_key: list = []
        elif isinstance(gated_instances, collections.abc.Mapping):
            gated_key = sorted(gated_instances.items())
        else:
            gated_key = sorted(gated_instances)
        mapper_key = [
            getattr(isa_mapper, "unit", type(isa_mapper).__name__),
            [repr(a) for a in (isa_mapper.assumptions() if isa_mapper else [])],
        ]
        phase1 = ArtifactCache.digest(
            "ckpt-phase1",
            netlist.structural_hash(),
            ArtifactCache.stream_digest(operands),
            len(operands),
            clock_period_ns,
            gated_key,
            [
                aging.lifetime_years,
                aging.temperature_c,
                aging.clock_margin,
                aging.max_paths_per_endpoint,
                aging.clock_gating_sp,
                aging.profile_lanes,
            ],
        )
        phase2 = ArtifactCache.digest(
            "ckpt-phase2",
            phase1,
            mapper_key,
            [
                lifting.enable_mitigation,
                lifting.bmc_depth,
                lifting.bmc_conflict_budget,
                list(lifting.constants),
                lifting.incremental_bmc,
            ],
        )
        phase3 = ArtifactCache.digest(
            "ckpt-phase3", phase2, self.config.integration.random_seed
        )
        return {"phase1": phase1, "phase2": phase2, "phase3": phase3}

    # Full chain -------------------------------------------------------
    def run(
        self,
        netlist: Netlist,
        operand_stream: Sequence[Mapping[str, int]],
        isa_mapper,
        clock_period_ns: Optional[float] = None,
        gated_instances: Optional[Sequence[str]] = None,
        resume: bool = False,
        suite_name: str = "vega_tests",
    ) -> WorkflowReport:
        """Chain the three phases; checkpoint each through the cache.

        With ``config.cache_dir`` set, every completed phase publishes
        its result as a pickled checkpoint keyed by the full input
        digest, so a killed or failed run restarted with ``resume=True``
        picks up at the first incomplete phase — completed phases load
        from disk and recompute nothing (a resumed phase 1 steps zero
        simulator cycles).  The run's spans/counters/events are attached
        to the report as ``report.telemetry`` (an enclosing
        ``telemetry.use(...)`` is honoured; otherwise a fresh instance
        is installed for the duration of the run).
        """
        import contextlib

        operands = list(operand_stream)
        report = WorkflowReport(netlist_name=netlist.name)
        cache = self._artifact_cache()
        keys = (
            self._checkpoint_keys(
                netlist, operands, clock_period_ns, gated_instances, isa_mapper
            )
            if cache is not None
            else {}
        )

        def _load(phase: str):
            if cache is None or not resume:
                return None
            return cache.load_checkpoint(keys[phase])

        def _publish(phase: str, value) -> None:
            if cache is not None:
                cache.store_checkpoint(keys[phase], value)

        with contextlib.ExitStack() as stack:
            tele = telemetry.active()
            if tele is None:
                tele = stack.enter_context(telemetry.use(telemetry.Telemetry()))
            report.telemetry = tele

            with telemetry.span(
                "phase1.aging_analysis", netlist=netlist.name
            ) as span:
                payload = _load("phase1")
                if payload is not None:
                    report.sp_profile, report.sta_report = payload
                    report.resumed_phases.append("phase1")
                    span.annotate(resumed=True)
                else:
                    report.sp_profile, report.sta_report = (
                        self.run_aging_analysis(
                            netlist,
                            operands,
                            clock_period_ns=clock_period_ns,
                            gated_instances=gated_instances,
                        )
                    )
                    _publish(
                        "phase1", (report.sp_profile, report.sta_report)
                    )
                span.annotate(
                    violations=len(report.sta_report.report.violations)
                )

            with telemetry.span("phase2.error_lifting") as span:
                payload = _load("phase2")
                if payload is not None:
                    report.lifting_report = payload
                    report.resumed_phases.append("phase2")
                    span.annotate(resumed=True)
                else:
                    report.lifting_report = self.run_error_lifting(
                        netlist, report.sta_report, isa_mapper
                    )
                    _publish("phase2", report.lifting_report)
                span.annotate(
                    pairs=len(report.lifting_report.pairs),
                    tests=len(report.lifting_report.test_cases),
                    errors=len(report.lifting_report.error_pairs),
                )

            with telemetry.span("phase3.test_integration") as span:
                payload = _load("phase3")
                if payload is not None:
                    report.test_suite = payload
                    report.resumed_phases.append("phase3")
                    span.annotate(resumed=True)
                else:
                    report.test_suite = self.build_aging_library(
                        report.lifting_report, name=suite_name
                    )
                    _publish("phase3", report.test_suite)
                span.annotate(
                    tests=len(report.test_suite.test_cases),
                    suite_cycles=report.test_suite.suite_cycles(),
                )
        return report
