"""Table 6 — detection quality of the generated test cases.

Every failing netlist (one per unique endpoint pair, three C modes:
held 0, held 1, random each cycle) is attacked with the full suite.

Paper shape: detection is >= ~95% everywhere and 100% in most
configurations; many failures are caught by a test *earlier* than their
own ("B"); occasionally only a *later* test catches one ("L"); a few
handshake failures stall the CPU ("S") — still detectable.  The §3.3.4
mitigation closes missed detections for the held-C modes.
"""

from repro.lifting.models import CMode


def _summarize(outcomes):
    total = len(outcomes)
    if total == 0:
        return dict(total=0, det=0.0, b=0.0, l=0.0, s=0.0)
    detected = sum(o.detected for o in outcomes)
    return dict(
        total=total,
        det=100.0 * detected / total,
        b=100.0 * sum(o.by_earlier for o in outcomes) / total,
        l=100.0 * sum(o.by_later for o in outcomes) / total,
        s=100.0 * sum(o.stalled for o in outcomes) / total,
    )


def test_table6_detection_quality(ctx, benchmark, recorder):
    rows = ["Unit | FM | Mitigation | Det.% | B% | L% | S% | n"]
    summary = {}
    for unit_name in ("alu", "fpu"):
        unit = ctx.unit(unit_name)
        for mitigation in (False, True):
            for mode in (CMode.ZERO, CMode.ONE, CMode.RANDOM):
                outcomes = unit.detection_outcomes(
                    mitigation, c_modes=(mode,)
                )
                stats = _summarize(outcomes)
                summary[(unit_name, mitigation, mode)] = stats
                rows.append(
                    f"{unit_name.upper():4s} | {mode.value:2s} | "
                    f"{'w/ ' if mitigation else 'w/o'} | "
                    f"{stats['det']:5.1f} | {stats['b']:5.1f} | "
                    f"{stats['l']:5.1f} | {stats['s']:5.1f} | {stats['total']}"
                )
                recorder.sample(
                    "table6_detection_quality", "detection_rate",
                    stats["det"], "percent", unit=unit_name,
                    mitigation=mitigation, c_mode=mode.value,
                    bigger_is_better=True,
                )
                recorder.sample(
                    "table6_detection_quality", "failing_netlists",
                    stats["total"], "netlists", unit=unit_name,
                    mitigation=mitigation, c_mode=mode.value,
                    bigger_is_better=True,
                )
    recorder.table("table6_detection_quality", "\n".join(rows))

    for unit_name in ("alu", "fpu"):
        for mitigation in (False, True):
            for mode in (CMode.ZERO, CMode.ONE, CMode.RANDOM):
                stats = summary[(unit_name, mitigation, mode)]
                assert stats["total"] > 0
                # Headline claim: the suites detect the vast majority
                # of their intended failures.
                assert stats["det"] >= 80.0, (unit_name, mitigation, mode)
    # ALU detection is complete, as in the paper.
    for mode in (CMode.ZERO, CMode.ONE, CMode.RANDOM):
        assert summary[("alu", False, mode)]["det"] == 100.0
    # The FPU handshake failure stalls the CPU in at least one mode.
    assert any(
        summary[("fpu", m, c)]["s"] > 0
        for m in (False, True)
        for c in (CMode.ZERO, CMode.ONE, CMode.RANDOM)
    )
    # Cross-detection ("B") is common, echoing the paper's observation.
    assert any(
        summary[("fpu", False, c)]["b"] > 0
        for c in (CMode.ZERO, CMode.ONE, CMode.RANDOM)
    )

    # Benchmark: one suite-vs-failing-netlist run.
    unit = ctx.alu
    library = unit.suite(False)
    failing = unit.failing_netlists()[0]
    result = benchmark(
        unit.run_suite_against, library, failing.netlist
    )
    assert result is not None
