"""Ablation — representative-workload choice for SP profiling (§6.3).

The paper profiles with *minver* and suggests a commercial flow where
"data center operators could collect valuable traces ... to refine
Aging Analysis and generate a test suite tailored for specific data
center workloads."  This ablation compares the aging-prone pairs found
under the minver profile against a profile aggregated over all ten
workloads: richer traces exercise more of the datapath, shifting which
cells park at stressed states and therefore which paths age worst.
"""

from repro.aging.charlib import AgingTimingLibrary
from repro.core.config import AgingAnalysisConfig
from repro.netlist.cells import VEGA28
from repro.sim.probes import profile_operand_stream
from repro.sta.aging_sta import AgingAwareSta
from repro.workloads import WORKLOADS, collect_operand_streams


def test_ablation_workload_profiles(ctx, benchmark, recorder):
    alu = ctx.alu.netlist
    timing_lib = AgingTimingLibrary.characterize(VEGA28)
    config = AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=100)

    def analyze(names):
        stream, _ = collect_operand_streams(names, max_ops_per_unit=4000)
        profile = profile_operand_stream(alu, stream)
        sta = AgingAwareSta(alu, timing_lib, config=config)
        return profile, sta.analyze(profile)

    minver_profile, minver_result = analyze(["minver"])
    all_profile, all_result = analyze(sorted(WORKLOADS))

    def parked(profile):
        return sum(1 for v in profile.sp.values() if v < 0.02 or v > 0.98)

    rows = ["profile   | parked nets | setup paths | pairs | WNS(ps)"]
    for label, profile, result in (
        ("minver", minver_profile, minver_result),
        ("all-ten", all_profile, all_result),
    ):
        report = result.report
        rows.append(
            f"{label:9s} | {parked(profile):11d} | "
            f"{len(report.setup_violations()):11d} | "
            f"{len(report.unique_endpoint_pairs()):5d} | "
            f"{report.wns_setup_ns*1000:7.1f}"
        )
        recorder.sample(
            "ablation_workload_profile", "parked_nets", parked(profile),
            "nets", profile=label, unit="alu",
        )
        recorder.sample(
            "ablation_workload_profile", "setup_paths",
            len(report.setup_violations()), "paths", profile=label,
            unit="alu",
        )
    minver_pairs = set(minver_result.report.unique_endpoint_pairs())
    all_pairs = set(all_result.report.unique_endpoint_pairs())
    rows.append(
        f"pair overlap: {len(minver_pairs & all_pairs)} shared, "
        f"{len(minver_pairs - all_pairs)} minver-only, "
        f"{len(all_pairs - minver_pairs)} all-ten-only"
    )
    recorder.sample(
        "ablation_workload_profile", "shared_pairs",
        len(minver_pairs & all_pairs), "pairs", unit="alu",
        bigger_is_better=True,
    )
    recorder.table("ablation_workload_profile", "\n".join(rows))

    # Richer workloads exercise more nets: fewer parked at extremes.
    assert parked(all_profile) <= parked(minver_profile)
    # Both profiles expose aging violations; the sets need not match —
    # that is the point of workload-tailored test suites.
    assert minver_pairs and all_pairs

    result = benchmark(analyze, ["minver"])
    assert result is not None
