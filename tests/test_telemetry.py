"""Unit tests for the telemetry subsystem (spans, counters, traces)."""

import json

import pytest

from repro.core import telemetry
from repro.core.telemetry import (
    TRACE_SCHEMA,
    Telemetry,
    TraceError,
    dump_trace,
    parse_trace,
    read_trace,
    summarize_trace,
)


class TestCounters:
    def test_add_accumulates(self):
        tele = Telemetry()
        tele.add("x")
        tele.add("x", 4)
        tele.add("y", 0.5)
        assert tele.counters == {"x": 5, "y": 0.5}

    def test_deltas_report_only_changes(self):
        tele = Telemetry()
        tele.add("x", 3)
        tele.add("y", 1)
        base = tele.snapshot()
        tele.add("x", 2)
        tele.add("z", 7)
        assert tele.counter_deltas(base) == {"x": 2, "z": 7}

    def test_merge_folds_worker_deltas(self):
        parent = Telemetry()
        parent.add("x", 1)
        worker = Telemetry()
        base = worker.snapshot()
        worker.add("x", 5)
        worker.add("w", 0.25)
        parent.merge_counters(worker.counter_deltas(base))
        assert parent.counters == {"x": 6, "w": 0.25}


class TestSpans:
    def test_hierarchical_ids_and_counter_attribution(self):
        tele = Telemetry()
        with tele.span("outer") as outer:
            tele.add("n", 1)
            with tele.span("inner") as inner:
                tele.add("n", 10)
            outer.annotate(note="done")
        assert inner.id == "outer/inner"
        assert inner.parent == "outer"
        records = {r["id"]: r for r in tele.records}
        # Inner closes first; each span owns the counters that moved
        # while it was open (outer's delta includes inner's).
        assert records["outer/inner"]["counters"] == {"n": 10}
        assert records["outer"]["counters"] == {"n": 11}
        assert records["outer"]["attrs"] == {"note": "done"}

    def test_span_records_on_exception(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.span("boom"):
                raise RuntimeError("x")
        assert [r["name"] for r in tele.records] == ["boom"]
        # The stack unwound: a new span is top-level again.
        with tele.span("after") as span:
            pass
        assert span.parent is None


class TestActiveInstance:
    def test_helpers_are_noops_when_inactive(self):
        assert telemetry.active() is None
        telemetry.add("x")
        telemetry.event("e")
        with telemetry.span("s") as span:
            assert span is None

    def test_use_installs_and_restores(self):
        outer_tele = Telemetry()
        inner_tele = Telemetry()
        with telemetry.use(outer_tele):
            telemetry.add("x")
            with telemetry.use(inner_tele):
                telemetry.add("x", 10)
            telemetry.add("x")
        assert telemetry.active() is None
        assert outer_tele.counters == {"x": 2}
        assert inner_tele.counters == {"x": 10}


class TestTraceRoundTrip:
    def _trace(self):
        tele = Telemetry(run_id="test-run")
        with tele.span("phase", k=1):
            tele.add("c", 3)
            tele.event("hello", who="world")
        return tele

    def test_parse_then_dump_is_byte_identical(self):
        text = self._trace().to_jsonl()
        assert dump_trace(parse_trace(text)) == text

    def test_record_shape(self):
        records = parse_trace(self._trace().to_jsonl())
        assert records[0] == {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "run_id": "test-run",
        }
        assert [r["type"] for r in records[1:]] == [
            "event",
            "span",
            "counters",
        ]
        assert records[-1]["counters"] == {"c": 3}

    def test_write_and_read_file(self, tmp_path):
        tele = self._trace()
        path = tmp_path / "trace.jsonl"
        tele.write_jsonl(str(path))
        assert dump_trace(read_trace(str(path))) == tele.to_jsonl()

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            parse_trace("")

    def test_garbage_rejected(self):
        with pytest.raises(TraceError, match="not valid JSON"):
            parse_trace("{not json}\n")

    def test_typeless_record_rejected(self):
        with pytest.raises(TraceError, match="no 'type'"):
            parse_trace('{"schema": 1}\n')

    def test_missing_meta_head_rejected(self):
        with pytest.raises(TraceError, match="meta"):
            parse_trace('{"type": "counters", "counters": {}}\n')

    def test_wrong_schema_rejected(self):
        line = json.dumps(
            {"type": "meta", "schema": TRACE_SCHEMA + 1, "run_id": "r"}
        )
        with pytest.raises(TraceError, match="schema"):
            parse_trace(line + "\n")

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_trace(str(tmp_path / "missing.jsonl"))


class TestSummarize:
    def test_renders_phases_counters_and_errors(self):
        tele = Telemetry(run_id="sum-run")
        with tele.span("phase1.aging_analysis", violations=10):
            tele.add("sim.cycles", 250)
            with tele.span("sta.fresh"):
                pass
        tele.event("lifting.pair_error", start="a", error="ValueError: x")
        text = summarize_trace(tele.trace_records())
        assert "sum-run" in text
        assert "phase1.aging_analysis" in text
        assert "violations=10" in text
        assert "1 nested span(s)" in text
        assert "| sim.cycles | 250 |" in text
        assert "Recorded errors" in text
        assert "ValueError: x" in text

    def test_summary_markdown_matches_summarize(self):
        tele = Telemetry()
        tele.add("c")
        assert tele.summary_markdown() == summarize_trace(tele.trace_records())
