"""Tests for the gate-level simulator, SP probes, and VCD writer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.example import build_paper_adder
from repro.netlist.cells import make_vega28_library
from repro.netlist.netlist import Netlist
from repro.sim.gatesim import (
    GateSimulator,
    SimulationError,
    pack_vectors,
    unpack_vectors,
)
from repro.sim.probes import SPCounter, SPProfile, profile_operand_stream, profile_stimulus
from repro.sim.vcd import VcdWriter


class TestPackUnpack:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=0xFF), min_size=1, max_size=20
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, values):
        planes = pack_vectors(values, 8)
        assert unpack_vectors(planes, len(values)) == values

    def test_pack_shape(self):
        planes = pack_vectors([0b01, 0b10, 0b11], 2)
        assert planes == [0b101, 0b110]


class TestPaperAdderSimulation:
    def test_two_cycle_latency(self, paper_adder):
        sim = GateSimulator(paper_adder)
        sim.step({"a": 1, "b": 2})   # operands sampled at this edge
        out = sim.step({"a": 0, "b": 0})  # sum visible combinationally
        # o registers the sum at the second edge; read after it.
        out = sim.step({"a": 0, "b": 0})
        assert out["o"] == 3

    @pytest.mark.parametrize("a", range(4))
    @pytest.mark.parametrize("b", range(4))
    def test_exhaustive_sums(self, paper_adder, a, b):
        sim = GateSimulator(paper_adder)
        sim.step({"a": a, "b": b})
        sim.step({"a": 0, "b": 0})
        out = sim.step({"a": 0, "b": 0})
        assert out["o"] == (a + b) & 0b11

    def test_pipelining_overlaps(self, paper_adder):
        sim = GateSimulator(paper_adder)
        sums = []
        pairs = [(1, 1), (2, 3), (3, 3), (0, 0), (0, 0)]
        for a, b in pairs:
            sums.append(sim.step({"a": a, "b": b})["o"])
        # Output lags input by two cycles.
        assert sums[2:] == [(1 + 1) & 3, (2 + 3) & 3, (3 + 3) & 3]

    def test_missing_input_rejected(self, paper_adder):
        sim = GateSimulator(paper_adder)
        with pytest.raises(SimulationError, match="missing"):
            sim.step({"a": 1})

    def test_unknown_input_rejected(self, paper_adder):
        sim = GateSimulator(paper_adder)
        with pytest.raises(SimulationError, match="unknown"):
            sim.step({"a": 1, "b": 1, "zz": 0})

    def test_reset_restores_init(self, paper_adder):
        sim = GateSimulator(paper_adder)
        sim.step({"a": 3, "b": 3})
        sim.reset()
        out = sim.step({"a": 0, "b": 0})
        assert out["o"] == 0
        assert sim.cycle_count == 1

    def test_bit_parallel_matches_scalar(self, paper_adder):
        pairs = [(a, b) for a in range(4) for b in range(4)]
        mask = (1 << len(pairs)) - 1
        packed = {
            "a": pack_vectors([p[0] for p in pairs], 2),
            "b": pack_vectors([p[1] for p in pairs], 2),
        }
        zero = {"a": [0, 0], "b": [0, 0]}
        sim = GateSimulator(paper_adder)
        sim.step(packed, mask=mask, packed=True)
        sim.step(zero, mask=mask, packed=True)
        sim.step(zero, mask=mask, packed=True)
        planes = sim.read_output_planes("o")
        results = unpack_vectors(planes, len(pairs))
        assert results == [(a + b) & 3 for a, b in pairs]


class TestSPProfiling:
    def test_constant_stimulus_extremes(self, paper_adder):
        profile = profile_stimulus(
            paper_adder, [{"a": 3, "b": 3}] * 50
        )
        # aq/bq outputs sit at 1 nearly always (first cycle is reset).
        assert profile.sp["aq0"] == pytest.approx(49 / 50)
        assert profile.sp["bq1"] == pytest.approx(49 / 50)
        # XOR of two equal values: 0.
        assert profile.sp["s0"] == pytest.approx(0.0)

    def test_sp_bounds(self, paper_adder):
        import random

        rng = random.Random(7)
        stim = [
            {"a": rng.randrange(4), "b": rng.randrange(4)} for _ in range(64)
        ]
        profile = profile_stimulus(paper_adder, stim)
        assert all(0.0 <= v <= 1.0 for v in profile.sp.values())
        assert profile.samples == 64

    def test_profile_merge_weighted(self, paper_adder):
        p1 = profile_stimulus(paper_adder, [{"a": 3, "b": 3}] * 10)
        p2 = profile_stimulus(paper_adder, [{"a": 0, "b": 0}] * 30)
        merged = p1.merge(p2)
        assert merged.samples == 40
        expected = (p1.sp["aq0"] * 10 + p2.sp["aq0"] * 30) / 40
        assert merged.sp["aq0"] == pytest.approx(expected)

    def test_merge_rejects_other_netlist(self, paper_adder):
        p1 = profile_stimulus(paper_adder, [{"a": 0, "b": 0}] * 2)
        other = SPProfile("different", {}, 2)
        with pytest.raises(ValueError):
            p1.merge(other)

    def test_json_roundtrip(self, paper_adder):
        p1 = profile_stimulus(paper_adder, [{"a": 1, "b": 2}] * 8)
        p2 = SPProfile.from_json(p1.to_json())
        assert p2.netlist_name == p1.netlist_name
        assert p2.samples == p1.samples
        assert p2.sp == pytest.approx(p1.sp)

    def test_operand_stream_profile(self, paper_adder):
        ops = [{"a": a & 3, "b": (a >> 2) & 3} for a in range(64)]
        profile = profile_operand_stream(paper_adder, ops, lanes=16)
        assert profile.samples == 4 * 3 * 16  # 4 batches x 3 cycles x 16 lanes
        assert all(0.0 <= v <= 1.0 for v in profile.sp.values())

    def test_packed_counts_match_scalar_counts(self, paper_adder):
        ops = [{"a": i % 4, "b": (i * 7) % 4} for i in range(32)]
        packed = profile_operand_stream(paper_adder, ops, lanes=32, drain_cycles=0)
        sim = GateSimulator(paper_adder)
        counter = SPCounter(paper_adder)
        sim.reset()
        for op in ops:
            sim.reset()
            # Mirror the packed run: each op gets one fresh-cycle sample.
            sim.step(op)
            counter.sample(sim)
        scalar = counter.profile()
        for name in scalar.sp:
            assert scalar.sp[name] == pytest.approx(packed.sp[name])


class TestVcd:
    def test_header_and_changes(self):
        writer = VcdWriter(["clk", "x"], timescale="1ns")
        writer.sample({"clk": 0, "x": 1}, time=0)
        writer.sample({"clk": 1, "x": 1}, time=1)
        text = writer.dump()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "#0" in text and "#1" in text

    def test_no_redundant_changes(self):
        writer = VcdWriter(["x"])
        writer.sample({"x": 1}, time=0)
        writer.sample({"x": 1}, time=1)
        assert writer.dump().count("1!") == 1

    def test_many_signals_get_unique_codes(self):
        names = [f"s{i}" for i in range(200)]
        writer = VcdWriter(names)
        codes = set(writer._codes.values())
        assert len(codes) == 200


class TestPackedRegressions:
    """Bit-parallel mode must agree with N independent scalar runs."""

    def _init_one_design(self, paper_lib):
        """1-bit pipeline whose DFF resets to 1: o = q ^ a, q <= a."""
        nl = Netlist("initones", paper_lib)
        a = nl.add_input_port("a", 1)
        o = nl.add_output_port("o", 1)
        q = nl.add_net("q")
        nl.add_instance("DFF", {"D": a.bit(0), "Q": q}, name="dq", init=1)
        nl.add_instance("XOR2", {"A": q, "B": a.bit(0), "Y": o.bit(0)}, name="x")
        return nl

    def test_reset_broadcasts_init_one_to_every_vector(self, paper_lib):
        # Regression: reset() used to store init=1 as the integer 1,
        # which presented 1 to vector 0 and 0 to vectors 1..N-1 after a
        # packed reset.  The first cycle after reset must see Q=1 in
        # *all* lanes.
        nl = self._init_one_design(paper_lib)
        count = 12
        mask = (1 << count) - 1
        stimulus = [(i >> c) & 1 for c in range(1) for i in range(count)]
        sim = GateSimulator(nl)
        sim.reset()
        out = sim.step({"a": pack_vectors(stimulus, 1)}, mask=mask, packed=True)
        packed_first = unpack_vectors(sim.read_output_planes("o"), count)
        for vec in range(count):
            scalar = GateSimulator(nl)
            scalar.reset()
            got = scalar.step({"a": stimulus[vec]})
            assert got["o"] == packed_first[vec] == stimulus[vec] ^ 1

    def test_packed_multicycle_matches_scalar(self, paper_lib):
        import random

        nl = self._init_one_design(paper_lib)
        rng = random.Random(11)
        count, cycles = 16, 5
        mask = (1 << count) - 1
        frames = [
            [rng.randrange(2) for _ in range(count)] for _ in range(cycles)
        ]
        sim = GateSimulator(nl)
        sim.reset()
        packed_outputs = []
        for frame in frames:
            sim.step({"a": pack_vectors(frame, 1)}, mask=mask, packed=True)
            packed_outputs.append(
                unpack_vectors(sim.read_output_planes("o"), count)
            )
        for vec in range(count):
            scalar = GateSimulator(nl)
            scalar.reset()
            for cycle, frame in enumerate(frames):
                got = scalar.step({"a": frame[vec]})
                assert got["o"] == packed_outputs[cycle][vec], (vec, cycle)

    def test_packed_unknown_port_rejected_like_scalar(self, paper_adder):
        sim = GateSimulator(paper_adder)
        with pytest.raises(SimulationError) as scalar_err:
            sim.step({"a": 1, "b": 1, "zz": 0})
        sim.reset()
        with pytest.raises(SimulationError) as packed_err:
            sim.step(
                {"a": [0, 0], "b": [0, 0], "zz": [0]}, mask=1, packed=True
            )
        # Same complaint, same wording, either mode.
        assert str(packed_err.value) == str(scalar_err.value)
        assert "unknown input ports ['zz']" in str(packed_err.value)

    def test_packed_missing_port_message_parity(self, paper_adder):
        sim = GateSimulator(paper_adder)
        with pytest.raises(SimulationError) as scalar_err:
            sim.step({"a": 1})
        sim.reset()
        with pytest.raises(SimulationError) as packed_err:
            sim.step({"a": [0, 0]}, mask=1, packed=True)
        assert str(packed_err.value) == str(scalar_err.value)

    def test_unpack_rejects_out_of_range_plane_bits(self):
        # Plane bit at vector index 2, but only 2 vectors requested:
        # the planes were simulated under a wider mask than the caller
        # believes, which silently dropped data before this fix.
        with pytest.raises(ValueError, match="mask/count mismatch"):
            unpack_vectors([0b101], 2)

    def test_unpack_nonstrict_truncates(self):
        assert unpack_vectors([0b101], 2, strict=False) == [1, 0]
