"""Scheduler service throughput — ingest rate and dispatch latency.

The online service's costs are batching overhead (planning ticks) and
result ingestion (belief updates + event-log records).  This benchmark
drives complete scheduled runs at 1, 4, and 16 simulated device
clients and records:

* **ingest throughput** — result events folded into the belief per
  second of wall time;
* **batch-dispatch latency** — mean wall time per planning tick (one
  batch planned + its results ingested).

All runs use the Thompson policy and the full arm catalogue (per-case
vega arms + baseline suites).  ``VEGA_SMOKE=1`` shrinks repeats and
relaxes the floor so CI exercises the path in seconds.
"""

import os
import time

from repro.core.config import CampaignConfig, SchedulerConfig
from repro.scheduler import ScheduleSession

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
CLIENTS = (1, 4, 16)
REPEATS = 1 if SMOKE else 3
#: Floor on ingest throughput at every client count (events/sec).
MIN_EVENTS_PER_S = 5.0 if SMOKE else 20.0


def _session(ctx, clients):
    config = CampaignConfig(
        devices=clients,
        seed=2024,
        silifuzz_snapshots=3,
        base_onset_years=6.0,
    )
    sched = SchedulerConfig(
        policy="thompson",
        policy_seed=7,
        batch_size=16,
        batch_window=4,
        ingest_queue=64,
        checkpoint_every=1_000_000,  # no checkpoint I/O in the timing
        cycle_budget=25_000,
    )
    return ScheduleSession(
        ctx.alu.netlist,
        "alu",
        ctx.alu.suite(False),
        ctx.alu.failure_models(),
        config=config,
        scheduler=sched,
    )


def test_scheduler_throughput(ctx, benchmark, recorder):
    # Warm shared caches (suite assembly, instrumented netlists, arm
    # cost measurement) so the table reflects steady-state service
    # cost, not one-time pipeline setup.
    _session(ctx, CLIENTS[0]).run()

    rows = [
        "Scheduler service throughput (thompson policy, full arm "
        "catalogue)" + (" [smoke]" if SMOKE else ""),
        "clients | events | ticks | wall (s) | events/s | ms/tick",
    ]
    measured = {}
    for clients in CLIENTS:
        session = _session(ctx, clients)
        best = float("inf")
        outcome = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            outcome = session.run()
            best = min(best, time.perf_counter() - start)
        report = outcome.report
        events_per_s = report.events / best if best > 0 else 0.0
        ms_per_tick = 1000.0 * best / max(1, report.ticks)
        measured[clients] = events_per_s
        rows.append(
            f"{clients:7d} | {report.events:6d} | {report.ticks:5d} "
            f"| {best:8.3f} | {events_per_s:8.1f} | {ms_per_tick:7.2f}"
        )
        recorder.sample(
            "scheduler_throughput", "ingest_rate", events_per_s,
            "events/s", clients=clients, policy="thompson", seed=2024,
            timing=True, bigger_is_better=True,
        )
        recorder.sample(
            "scheduler_throughput", "tick_latency", ms_per_tick,
            "ms/tick", clients=clients, policy="thompson", seed=2024,
            timing=True,
        )
        recorder.sample(
            "scheduler_throughput", "events_ingested", report.events,
            "events", clients=clients, policy="thompson", seed=2024,
            bigger_is_better=True,
        )
        recorder.sample(
            "scheduler_throughput", "planning_ticks", report.ticks,
            "ticks", clients=clients, policy="thompson", seed=2024,
        )
        # Every run is complete and deterministic regardless of the
        # client count driving it.
        assert report.devices == clients
        assert report.escapes == 0
    recorder.table("scheduler_throughput", "\n".join(rows))

    for clients, events_per_s in measured.items():
        assert events_per_s >= MIN_EVENTS_PER_S, (
            f"{clients} client(s): ingest throughput "
            f"{events_per_s:.1f} events/s below floor "
            f"{MIN_EVENTS_PER_S}"
        )

    report = benchmark(lambda: _session(ctx, CLIENTS[-1]).run().report)
    assert report.devices == CLIENTS[-1]
