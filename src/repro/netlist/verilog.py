"""Structural-Verilog emission for netlists.

Failure-model instrumentation (§3.3.2) can export a *failing netlist*: a
standalone Verilog file describing the module's post-aging behaviour,
usable by external simulators or FPGA flows.  This writer produces that
artifact.  Cell instances are emitted against behavioural gate models so
the file is self-contained (a small gate-model preamble is included).
"""

from __future__ import annotations

import re
from typing import Dict, List

from .netlist import Netlist

_GATE_MODELS = """\
// Behavioural models for the vega28 cell library.
module BUF(input A, output Y);    assign Y = A;        endmodule
module INV(input A, output Y);    assign Y = ~A;       endmodule
module AND2(input A, B, output Y);  assign Y = A & B;    endmodule
module OR2(input A, B, output Y);   assign Y = A | B;    endmodule
module NAND2(input A, B, output Y); assign Y = ~(A & B); endmodule
module NOR2(input A, B, output Y);  assign Y = ~(A | B); endmodule
module XOR2(input A, B, output Y);  assign Y = A ^ B;    endmodule
module XNOR2(input A, B, output Y); assign Y = ~(A ^ B); endmodule
module MUX2(input A, B, S, output Y); assign Y = S ? B : A; endmodule
module TIE0(output Y); assign Y = 1'b0; endmodule
module TIE1(output Y); assign Y = 1'b1; endmodule
module CLKBUF(input A, output Y); assign Y = A; endmodule
module DFF(input D, CLK, output reg Q);
  always @(posedge CLK) Q <= D;
endmodule
"""

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _escape(name: str) -> str:
    """Return a Verilog-legal identifier for an internal net/instance name.

    Bus bit names like ``a[3]`` stay as-is when used through their port
    declaration; standalone odd names are escaped with the Verilog
    ``\\name `` syntax.
    """
    if _ID_RE.match(name):
        return name
    return "\\" + name + " "


def _net_ref(name: str, bus_bits: Dict[str, str]) -> str:
    """Map a scalar net name to its Verilog reference."""
    return bus_bits.get(name) or _escape(name)


def netlist_to_verilog(netlist: Netlist, include_gate_models: bool = True) -> str:
    """Serialize ``netlist`` as a structural Verilog module.

    The module gains an explicit ``clk`` input wired to every DFF, making
    the emitted file directly simulable.
    """
    lines: List[str] = []
    if include_gate_models:
        lines.append(_GATE_MODELS)

    bus_bits: Dict[str, str] = {}
    port_decls: List[str] = ["input clk"]
    port_names: List[str] = ["clk"]
    for port in netlist.ports.values():
        direction = "input" if port.direction == "input" else "output"
        if port.width == 1:
            port_decls.append(f"{direction} {port.name}")
        else:
            port_decls.append(
                f"{direction} [{port.width - 1}:0] {port.name}"
            )
            for i, net in enumerate(port.nets):
                bus_bits[net.name] = f"{port.name}[{i}]"
        port_names.append(port.name)

    lines.append(f"module {netlist.name}(")
    lines.append("  " + ",\n  ".join(port_decls))
    lines.append(");")

    port_net_names = {
        net.name for port in netlist.ports.values() for net in port.nets
    }
    for net in netlist.nets.values():
        if net.name in port_net_names:
            continue
        lines.append(f"  wire {_escape(net.name)};")

    for inst in sorted(netlist.instances.values(), key=lambda i: i.name):
        conns = []
        for pin, net in inst.pins.items():
            conns.append(f".{pin}({_net_ref(net.name, bus_bits)})")
        if inst.ctype.is_seq:
            conns.append(".CLK(clk)")
        lines.append(
            f"  {inst.ctype.name} {_escape(inst.name)} ({', '.join(sorted(conns))});"
        )

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
