"""Hot-carrier-injection (HCI) aging model — §6.3 extension.

BTI (:mod:`repro.aging.bti`) stresses a transistor while its gate is
*statically* biased, so rarely-switching cells age fastest.  HCI is the
complementary mechanism: every output **transition** drives channel
carriers energetic enough to inject into the gate oxide, so damage
accrues with *switching activity* instead of idle duty.  The two
mechanisms therefore stress opposite ends of the signal-probability
spectrum — a cell parked at SP 0.02 is a BTI victim, a cell toggling
around SP 0.5 is an HCI victim — which widens the failure-model space a
fleet samples from (ROADMAP item 4).

The model follows the standard lucky-electron form::

    dVth_HCI ∝ exp(-Ea / kT) · activity^m · t^n      (n ≈ 1/2)

with the transition density estimated from the output SP under the
independence assumption ``activity = 2 · sp · (1 - sp)`` (the same
proxy the EM analysis uses when no toggle counts are recorded).  The
prefactor is fitted so a 50 %-SP vega28 cell accrues ~8 mV over ten
years at 105 °C — material, but clearly subordinate to the ~26 mV
fully-stressed BTI shift, matching the usual BTI-dominant ranking at
28 nm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .bti import BOLTZMANN_EV, SECONDS_PER_YEAR


@dataclass(frozen=True)
class HciParameters:
    """Fitted constants of the lucky-electron HCI model.

    Attributes:
        prefactor: Technology-dependent magnitude constant (volts).
        activation_energy_ev: Arrhenius activation energy.  Small and
            positive: modern short-channel HCI worsens with
            temperature, unlike the inverse dependence of long-channel
            devices.
        time_exponent: Power-law exponent in stress time (~0.5 for
            interface-trap generation).
        activity_exponent: Exponent on the transition density; linear
            by default (each transition injects independently).
    """

    prefactor: float = 2.0e-5
    activation_energy_ev: float = 0.10
    time_exponent: float = 0.5
    activity_exponent: float = 1.0

    def arrhenius(self, temperature_c: float) -> float:
        t_kelvin = temperature_c + 273.15
        return math.exp(
            -self.activation_energy_ev / (BOLTZMANN_EV * t_kelvin)
        )


DEFAULT_HCI = HciParameters()


def transition_density(sp: float) -> float:
    """Expected output transitions per cycle at output SP ``sp``.

    Independence proxy: the output toggles when two consecutive samples
    differ, ``2 · sp · (1 - sp)`` — zero at the SP rails, maximal 0.5
    at SP 0.5, exactly the opposite stress profile of BTI duty.
    """
    if not 0.0 <= sp <= 1.0:
        raise ValueError(f"SP must be within [0, 1], got {sp}")
    return 2.0 * sp * (1.0 - sp)


def delta_vth_hci(
    stress_seconds: float,
    activity: float,
    temperature_c: float,
    params: HciParameters = DEFAULT_HCI,
) -> float:
    """Threshold-voltage shift from hot-carrier injection.

    Args:
        stress_seconds: Wall-clock device lifetime.
        activity: Output transition density per cycle, in [0, 1].
        temperature_c: Operating temperature.
        params: Fitted model constants.

    Returns:
        dVth in volts (>= 0), monotonically increasing in both
        ``activity`` and ``stress_seconds``.
    """
    if stress_seconds < 0:
        raise ValueError("stress time must be non-negative")
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be within [0, 1], got {activity}")
    if stress_seconds == 0 or activity == 0:
        return 0.0
    return (
        params.prefactor
        * params.arrhenius(temperature_c)
        * activity**params.activity_exponent
        * stress_seconds**params.time_exponent
    )


def cell_delta_vth_hci(
    sp: float,
    years: float,
    temperature_c: float,
    params: HciParameters = DEFAULT_HCI,
    activity_scale: float = 1.0,
) -> float:
    """Effective HCI dVth of a logic cell given its output SP.

    ``activity_scale`` lets an operating corner scale the transition
    density (hot, undervolted parts see more energetic carriers per
    toggle — :attr:`repro.aging.corners.OperatingCorner
    .hci_stress_scale`).
    """
    activity = min(1.0, transition_density(sp) * activity_scale)
    return delta_vth_hci(
        years * SECONDS_PER_YEAR, activity, temperature_c, params
    )
