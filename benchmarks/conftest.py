"""Shared fixtures for the evaluation benchmarks.

Every benchmark regenerates one table or figure of the paper (§5) and
registers two artifacts through the session :class:`BenchRecorder`:

* canonical JSON samples (metric, value, unit, metadata) — published
  as ``BENCH_<name>.json`` at the repo root, the machine-readable
  trajectory ``repro bench compare`` gates on;
* the human-readable table — published unchanged as
  ``benchmarks/results/<name>.txt``.

The heavy pipeline state (netlists, SP profiles, aging STA, lifted
test suites, failing netlists) is built once per session and shared
through :func:`repro.core.experiments.default_context`.

Run with::

    pytest benchmarks/ --benchmark-only

Generated tables land in ``benchmarks/results/`` so EXPERIMENTS.md can
reference them; both writes are atomic (temp file + rename, parent
directories created) so an interrupted run never leaves partial
artifacts.
"""

import pathlib

import pytest

from repro.bench import BenchRecorder
from repro.core.experiments import default_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="session")
def ctx():
    return default_context()


@pytest.fixture(scope="session")
def recorder():
    rec = BenchRecorder(results_dir=RESULTS_DIR, json_dir=REPO_ROOT)
    yield rec
    # Publish any benchmark that registered samples but never reached
    # its table call (e.g. a failed assertion after sampling).
    rec.flush_all()


@pytest.fixture(scope="session")
def save_table(recorder):
    """Legacy fixture: register only the human table.

    Prefer ``recorder`` — every benchmark should emit at least one
    canonical sample alongside its table.
    """
    return recorder.table
