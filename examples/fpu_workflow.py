#!/usr/bin/env python3
"""Vega on the binary16 FPU: clock gating, hold violations, and stalls.

Highlights the FPU-specific phenomena from the paper's evaluation:

* the clock-gated datapath ages asymmetrically against the always-on
  input-valid flop, producing a *hold* violation via clock phase shift
  (Table 3's FPU hold row);
* the handshake failure mode: injecting the hold failure on the
  valid chain makes the CPU stall, which the watchdog converts into a
  detection (Table 6's "S" entries).

Run:  python examples/fpu_workflow.py
"""

from repro.aging.charlib import AgingTimingLibrary
from repro.core.config import AgingAnalysisConfig, ErrorLiftingConfig
from repro.cpu.cosim import GateFpuBackend
from repro.cpu.cpu import CpuStall
from repro.cpu.fpu_design import build_fpu
from repro.cpu.mappers import FpuMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.instrument import make_failing_netlist
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.netlist.cells import VEGA28
from repro.sim.probes import profile_operand_stream
from repro.sta.aging_sta import AgingAwareSta
from repro.workloads import collect_operand_streams


def main() -> None:
    fpu = build_fpu()
    stats = fpu.stats()
    print(f"FPU synthesized: {stats['_cells']} cells, {stats['_dffs']} flops")

    print("\n[1/4] Profiling + aging STA with datapath clock gating ...")
    _, fpu_stream = collect_operand_streams(["minver"])
    profile = profile_operand_stream(fpu, fpu_stream)
    gated = {d.name: 0.96 for d in fpu.dffs() if d.name != "v_q_r0"}
    sta = AgingAwareSta(
        fpu,
        AgingTimingLibrary.characterize(VEGA28),
        config=AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=100),
        gated_instances=gated,
        clock_chain_length=24,
    )
    result = sta.analyze(profile)
    report = result.report
    shift = sta.clock_tree.max_phase_shift(sta.timing_lib)
    print(f"  aged clock phase shift across branches: {shift*1000:.1f} ps")
    print(f"  setup violations: {len(report.setup_violations())} paths; "
          f"hold violations: {len(report.hold_violations())} "
          f"{report.unique_endpoint_pairs('hold')}")

    print("\n[2/4] Lifting (with the initial-value mitigation) ...")
    lifter = ErrorLifter(
        fpu, ErrorLiftingConfig(enable_mitigation=True), FpuMapper()
    )
    lifting = lifter.lift(report)
    print(f"  outcomes: {lifting.outcome_counts()}")
    suite = AgingLibrary.from_lifting_report(lifting, name="vega_fpu")
    print(f"  {len(suite.test_cases)} tests, "
          f"{suite.suite_cycles()} cycles per pass")

    print("\n[3/4] Handshake failure -> CPU stall ...")
    hold_model = FailureModel(
        "v_q_r0", "ov_q_r0", ViolationKind.HOLD, CMode.ZERO
    )
    failing = make_failing_netlist(fpu, hold_model)
    backend = GateFpuBackend(failing.netlist, timeout=12)
    try:
        backend.execute(0, 0x3C00, 0x3C00)  # fadd 1.0 + 1.0
        backend.execute(0, 0x4000, 0x3C00)
        print("  unexpected: no stall")
    except CpuStall as stall:
        print(f"  CpuStall raised: {stall}")
    detection = suite.run_suite(fpu=GateFpuBackend(failing.netlist, timeout=12))
    print(f"  suite verdict: detected={detection.detected} "
          f"(stalled={detection.stalled})")

    print("\n[4/4] Data-path failure detection ...")
    data_failing = lifter.failing_netlists(report)[0]
    print(f"  injected: {data_failing.model.label}")
    detection = suite.run_suite(fpu=GateFpuBackend(data_failing.netlist))
    print(f"  detected={detection.detected} by={detection.detected_by!r}")


if __name__ == "__main__":
    main()
