"""Tests for the adversarial wearout scenario engine.

The contract mirrors the campaign engine's: the attacker search and
every artifact derived from it are pure functions of (netlist, target,
config) — byte-identical for any worker count and across resumes —
and attack fleets are the natural fleet's twins (same individuals,
accelerated onsets) so detection lead is well defined per device.
"""

import dataclasses

import pytest

from repro.adversary import (
    AttackReport,
    AttackSearch,
    accelerate_fleet,
    attack_device_prior,
    generate_candidate,
    sample_attack_fleet,
    select_target,
    stress_score,
)
from repro.campaign import CampaignEngine
from repro.core.artifacts import ArtifactCache
from repro.core.config import (
    AdversaryConfig,
    CampaignConfig,
    ErrorLiftingConfig,
)
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.scheduler.belief import BROAD_CLASS, FleetBelief
from repro.sim.parallel_profile import profile_workload_streams
from repro.sta.timing import TimingViolation

PAIRS = [("a_q_r0", "res_q_r31")]

MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE),
]

SEARCH_CONFIG = AdversaryConfig(
    seed=5,
    candidates=4,
    rounds=2,
    beam=2,
    mutations=2,
    stream_ops=48,
    mutation_ops=8,
    lanes=16,
    workers=1,
)

CAMPAIGN_CONFIG = CampaignConfig(
    devices=8,
    seed=11,
    shard_size=3,
    workers=1,
    suites=("vega", "random"),
    base_onset_years=8.0,
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def vega_library(alu_netlist):
    lifter = ErrorLifter(alu_netlist, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    return AgingLibrary(
        name="adversary_vega",
        test_cases=lifter.lift_pair(violation).test_cases,
    )


@pytest.fixture(scope="module")
def natural_profile(alu_netlist):
    ports = [(p.name, p.width) for p in alu_netlist.input_ports()]
    stream = generate_candidate(ports, 48, 0, 3)  # uniform-mode stream
    return profile_workload_streams(
        alu_netlist, {"mission": stream}, lanes=16
    )


def run_search(alu_netlist, natural_profile, cache=None, **overrides):
    config = dataclasses.replace(SEARCH_CONFIG, **overrides)
    return AttackSearch(
        alu_netlist, "alu", natural_profile, PAIRS,
        config=config, cache=cache,
    )


class TestTargetSelection:
    def test_cone_nets_tagged_with_stress_state(self, alu_netlist):
        target = select_target(alu_netlist, PAIRS)
        assert target.pairs == (("a_q_r0", "res_q_r31"),)
        assert len(target.nets) > 10
        assert all(state in (0, 1) for _name, state in target.nets)

    def test_unknown_endpoint_rejected(self, alu_netlist):
        with pytest.raises(KeyError):
            select_target(alu_netlist, [("a_q_r0", "nope")])

    def test_empty_pairs_rejected(self, alu_netlist):
        with pytest.raises(ValueError):
            select_target(alu_netlist, [])

    def test_stress_score_bounds(self, alu_netlist, natural_profile):
        target = select_target(alu_netlist, PAIRS)
        score = stress_score(natural_profile, target)
        assert 0.0 <= score <= 1.0


class TestSearchDeterminism:
    def test_worker_invariance(self, alu_netlist, natural_profile):
        serial, _ = run_search(
            alu_netlist, natural_profile, workers=1
        ).run()
        sharded, _ = run_search(
            alu_netlist, natural_profile, workers=2
        ).run()
        assert serial.to_json() == sharded.to_json()

    def test_search_improves_or_holds(self, alu_netlist, natural_profile):
        result, stream = run_search(alu_netlist, natural_profile).run()
        assert result.stress_ratio >= 1.0 or result.natural_stress > 0
        assert result.acceleration >= 1.0
        assert result.acceleration <= SEARCH_CONFIG.acceleration_cap
        assert len(stream) == SEARCH_CONFIG.stream_ops
        best = [h["best_stress"] for h in result.history]
        assert best == sorted(best)  # beam never regresses

    def test_resume_extends_prefix(
        self, alu_netlist, natural_profile, tmp_path
    ):
        cache = ArtifactCache(tmp_path / "cache")
        short, _ = run_search(
            alu_netlist, natural_profile, cache=cache, rounds=1
        ).run()
        assert short.rounds == 1
        resumed_search = run_search(
            alu_netlist, natural_profile, cache=cache, rounds=2
        )
        resumed, _ = resumed_search.run(resume=True)
        assert resumed_search.resumed_rounds >= 1
        fresh, _ = run_search(alu_netlist, natural_profile, rounds=2).run()
        assert resumed.to_json() == fresh.to_json()

    def test_round_trip(self, alu_netlist, natural_profile):
        result, _ = run_search(alu_netlist, natural_profile).run()
        from repro.adversary import AttackSearchResult

        assert (
            AttackSearchResult.from_json(result.to_json()).to_json()
            == result.to_json()
        )


class TestAttackFleet:
    def test_twins_pair_the_natural_fleet(self):
        from repro.campaign.fleet import sample_fleet

        natural = sample_fleet(CAMPAIGN_CONFIG, MODELS, 8.0)
        attacked = sample_attack_fleet(
            CAMPAIGN_CONFIG, MODELS, 8.0, acceleration=2.0
        )
        assert len(attacked) == len(natural)
        for nat, att in zip(natural, attacked):
            assert att.index == nat.index
            assert att.corner == nat.corner
            assert att.backend_seed == nat.backend_seed
            assert att.onset_years <= nat.onset_years
            assert att.onset_years == pytest.approx(
                nat.onset_years / 2.0, abs=1e-5
            )
            if nat.faulty:
                assert att.faulty  # acceleration never heals a device

    def test_fraction_zero_is_natural(self):
        from repro.campaign.fleet import sample_fleet

        natural = sample_fleet(CAMPAIGN_CONFIG, MODELS, 8.0)
        attacked = sample_attack_fleet(
            CAMPAIGN_CONFIG, MODELS, 8.0,
            acceleration=3.0, attack_fraction=0.0,
        )
        assert attacked == natural

    def test_accelerate_existing_fleet(self):
        from repro.campaign.fleet import sample_fleet

        natural = sample_fleet(CAMPAIGN_CONFIG, MODELS, 8.0)
        attacked = accelerate_fleet(
            natural, 2.0, MODELS, CAMPAIGN_CONFIG.mission_years
        )
        for nat, att in zip(natural, attacked):
            assert att.onset_years == pytest.approx(
                nat.onset_years / 2.0, abs=1e-5
            )
            if nat.faulty:
                # The attack changes when a device fails, not how.
                assert att.model == nat.model
            if att.faulty:
                assert att.model is not None

    def test_prior_feeds_fleet_belief(self):
        from repro.campaign.fleet import sample_fleet

        natural = sample_fleet(CAMPAIGN_CONFIG, MODELS, 8.0)
        attacked = sample_attack_fleet(
            CAMPAIGN_CONFIG, MODELS, 8.0, acceleration=4.0
        )
        classes = ["setup:a_q_r0:res_q_r31"]
        prior = attack_device_prior(
            natural, attacked, classes, CAMPAIGN_CONFIG.mission_years
        )
        assert set(prior) == {spec.device_id for spec in attacked}
        for table in prior.values():
            assert BROAD_CLASS in table
            alpha, beta = table[BROAD_CLASS]
            assert alpha > 0 and beta > 0
        belief = FleetBelief(
            attacked, classes, cycle_budget=100_000, device_prior=prior
        )
        # Strongly attacked faulty devices start hotter than the flat
        # Jeffreys prior would leave them.
        hot = [spec.device_id for spec in attacked if spec.faulty]
        if hot:
            assert belief.mean(hot[0], BROAD_CLASS) > 0.5


class TestAttackCampaign:
    @pytest.fixture(scope="class")
    def fleets(self):
        from repro.campaign.fleet import sample_fleet

        natural = sample_fleet(CAMPAIGN_CONFIG, MODELS, 8.0)
        attacked = sample_attack_fleet(
            CAMPAIGN_CONFIG, MODELS, 8.0, acceleration=3.0
        )
        return natural, attacked

    def _run(self, alu_netlist, vega_library, fleet, **overrides):
        config = dataclasses.replace(CAMPAIGN_CONFIG, **overrides)
        engine = CampaignEngine(
            alu_netlist, "alu", vega_library, MODELS,
            config=config, base_onset_years=8.0, fleet=fleet,
        )
        return engine.run()

    def test_report_and_lead(self, alu_netlist, vega_library, fleets):
        natural_fleet, attack_fleet = fleets
        natural = self._run(alu_netlist, vega_library, natural_fleet)
        attack = self._run(alu_netlist, vega_library, attack_fleet)
        search, _ = run_search(
            alu_netlist,
            profile_workload_streams(
                alu_netlist,
                {
                    "mission": generate_candidate(
                        [
                            (p.name, p.width)
                            for p in alu_netlist.input_ports()
                        ],
                        48, 0, 3,
                    )
                },
                lanes=16,
            ),
        ).run()
        report = AttackReport.from_campaigns(
            search, natural_fleet, attack_fleet, natural, attack,
            attack_fraction=1.0, attack_seed=5,
            budget_instructions=CAMPAIGN_CONFIG.max_suite_instructions,
        )
        assert report.devices == CAMPAIGN_CONFIG.devices
        assert report.attacked_devices == CAMPAIGN_CONFIG.devices
        assert report.onset_lead_years_mean > 0.0
        assert report.attack["faulty"] >= report.natural["faulty"]
        for suite in report.suites:
            assert report.detection_lead_devices[suite] >= 0
        round_trip = AttackReport.from_json(report.to_json())
        assert round_trip.to_json() == report.to_json()
        text = report.summary()
        assert "detection lead (vega)" in text
        assert f"attack: alu fleet of {report.devices}" in text

    def test_packed_identity_on_attack_fleet(
        self, alu_netlist, vega_library, fleets
    ):
        _, attack_fleet = fleets
        packed = self._run(
            alu_netlist, vega_library, attack_fleet, packed=True
        )
        serial = self._run(
            alu_netlist, vega_library, attack_fleet, packed=False
        )
        assert packed.to_json() == serial.to_json()

    def test_worker_invariance(self, alu_netlist, vega_library, fleets):
        _, attack_fleet = fleets
        one = self._run(alu_netlist, vega_library, attack_fleet, workers=1)
        two = self._run(alu_netlist, vega_library, attack_fleet, workers=2)
        assert one.to_json() == two.to_json()


class TestAcceleratedTriage:
    def test_flagged_set_grows_monotonically(self):
        from repro.surrogate import accelerated_triage
        from repro.surrogate.triage import TriageOutcome, TriagedDevice

        outcome = TriageOutcome(
            threshold=9.0,
            mission_years=10.0,
            devices=[
                TriagedDevice(
                    index=i,
                    device_id=f"dev-{i:04d}",
                    corner="typical",
                    intensity=1.0,
                    predicted_onset_years=onset,
                    predicted_slack_ns=0.1,
                    flagged=onset <= 9.0,
                )
                for i, onset in enumerate([4.0, 9.5, 12.0, 30.0])
            ],
        )
        base_flagged = set(outcome.flagged_indices)
        previous = base_flagged
        for acceleration in (1.0, 1.5, 2.0, 4.0):
            attacked = accelerated_triage(outcome, acceleration)
            flagged = set(attacked.flagged_indices)
            assert previous <= flagged
            previous = flagged
        assert previous >= base_flagged
        assert 2 in previous  # 12y / 4 = 3y, well inside threshold
