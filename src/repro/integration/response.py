"""Fault-response strategies — what happens *after* detection.

The paper's aging library supports "different strategies of transistor
aging detection and response" (§3.4.1) and the workflow's whole purpose
is to "trigger software mitigations at application runtime" (§1).  This
module implements three such strategies around the integrated
application runner:

* :class:`RetireResponse` — fail-stop: surface the fault and halt (the
  data-center "drain and replace the node" action).
* :class:`RetryResponse` — re-run the suite to classify the fault as
  transient (environmental noise, §6.2) or persistent before escalating.
* :class:`FallbackResponse` — software emulation: swap the faulty unit
  for its golden software model and re-execute, trading speed for
  correctness until the part is serviced.

:func:`run_with_protection` drives an integrated application under a
policy and reports the incident trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..cpu.cpu import GoldenAlu, GoldenFpu, GoldenMdu, RunResult
from .profile import IntegratedApplication


class FaultAction(Enum):
    NONE = "none"              # clean run, no fault observed
    RETIRED = "retired"        # fail-stop
    TRANSIENT = "transient"    # retry succeeded: fault did not recur
    FELL_BACK = "fell_back"    # software emulation produced the result


@dataclass
class Incident:
    """One observed fault and the policy's reaction."""

    unit: str
    stalled: bool
    action: FaultAction
    detail: str = ""


@dataclass
class ProtectedResult:
    """Outcome of a protected execution."""

    result: Optional[RunResult]
    action: FaultAction
    incidents: List[Incident] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.result is not None


class RetireResponse:
    """Fail-stop: report and halt — no result is produced."""

    name = "retire"

    def handle(self, app, unit, backends, stalled) -> ProtectedResult:
        incident = Incident(
            unit=unit,
            stalled=stalled,
            action=FaultAction.RETIRED,
            detail="unit retired; workload must migrate",
        )
        return ProtectedResult(
            result=None, action=FaultAction.RETIRED, incidents=[incident]
        )


class RetryResponse:
    """Re-execute once to separate transient noise from real aging.

    Environmental noise (voltage/temperature excursions, §6.2) can trip
    a marginal path once; a persistent aging fault trips it again.  A
    recurring fault escalates to the wrapped policy.
    """

    name = "retry"

    def __init__(self, escalate=None):
        self.escalate = escalate or RetireResponse()

    def handle(self, app, unit, backends, stalled) -> ProtectedResult:
        result, fault = app.run(**backends)
        if result is not None and not fault:
            incident = Incident(
                unit=unit,
                stalled=stalled,
                action=FaultAction.TRANSIENT,
                detail="fault did not recur on retry",
            )
            return ProtectedResult(
                result=result,
                action=FaultAction.TRANSIENT,
                incidents=[incident],
            )
        escalated = self.escalate.handle(app, unit, backends, stalled)
        escalated.incidents.insert(
            0,
            Incident(
                unit=unit,
                stalled=stalled,
                action=escalated.action,
                detail="fault recurred on retry; escalating",
            ),
        )
        return escalated


_GOLDEN = {"alu": GoldenAlu, "fpu": GoldenFpu, "mdu": GoldenMdu}


class FallbackResponse:
    """Software emulation: replace the faulty unit's backend with the
    golden model and re-execute.

    This is the strongest runtime mitigation: results stay correct at
    the cost of the unit's hardware acceleration — exactly the
    "software mitigations at application runtime" the paper motivates.
    """

    name = "fallback"

    def handle(self, app, unit, backends, stalled) -> ProtectedResult:
        emulated = dict(backends)
        emulated[unit] = _GOLDEN[unit]()
        result, fault = app.run(**emulated)
        if result is None or fault:
            # Even emulation failed: something beyond this unit is wrong.
            return RetireResponse().handle(app, unit, emulated, stalled)
        incident = Incident(
            unit=unit,
            stalled=stalled,
            action=FaultAction.FELL_BACK,
            detail=f"{unit} emulated in software; result recomputed",
        )
        return ProtectedResult(
            result=result,
            action=FaultAction.FELL_BACK,
            incidents=[incident],
        )


def run_with_protection(
    app: IntegratedApplication,
    unit: str,
    backends: Optional[Dict] = None,
    policy=None,
) -> ProtectedResult:
    """Run an integrated application under a fault-response policy.

    ``backends`` maps unit names ("alu"/"fpu"/"mdu") to the hardware
    backends in use (gate-level, possibly failing).  When the embedded
    aging tests flag a fault — by exit sentinel or CPU stall — the
    policy takes over.
    """
    backends = dict(backends or {})
    policy = policy or FallbackResponse()
    result, fault = app.run(**backends)
    stalled = result is None  # IntegratedApplication maps stalls to None
    if result is not None and not fault:
        return ProtectedResult(result=result, action=FaultAction.NONE)
    return policy.handle(app, unit, backends, stalled)
