"""Parser for the structural-Verilog subset written by
:func:`repro.netlist.verilog.netlist_to_verilog`.

Round-tripping netlists through text is used by the failing-netlist
artifact flow and by tests: a netlist exported to Verilog can be read
back and simulated to confirm that the emitted file captures the same
behaviour.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .cells import CellLibrary, VEGA28
from .netlist import Net, Netlist, NetlistError


class VerilogParseError(Exception):
    """Raised on input outside the supported structural subset."""


_COMMENT_RE = re.compile(r"//[^\n]*")
_MODULE_RE = re.compile(r"module\s+([A-Za-z_][\w$]*)\s*\((.*?)\);(.*?)endmodule", re.S)
_PORT_RE = re.compile(
    r"(input|output)\s*(?:\[\s*(\d+)\s*:\s*(\d+)\s*\])?\s*([A-Za-z_][\w$]*)"
)
_WIRE_RE = re.compile(r"wire\s+(.+?);")
_INST_RE = re.compile(r"([A-Z][A-Z0-9]*)\s+(\\?[^\s(]+)\s*\((.*?)\)\s*;", re.S)
_CONN_RE = re.compile(r"\.(\w+)\(\s*([^)]*?)\s*\)")

_KNOWN_GATE_MODULES = {
    "BUF", "INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2",
    "MUX2", "TIE0", "TIE1", "CLKBUF", "DFF",
}


def _unescape(name: str) -> str:
    return name[1:].rstrip() if name.startswith("\\") else name


def _split_decls(text: str) -> List[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


def parse_verilog(
    source: str,
    library: Optional[CellLibrary] = None,
    top: Optional[str] = None,
) -> Netlist:
    """Parse structural Verilog back into a :class:`Netlist`.

    Gate-model modules from the writer's preamble are skipped; the first
    non-gate module (or ``top`` if given) becomes the netlist.
    """
    library = library or VEGA28
    source = _COMMENT_RE.sub("", source)
    target: Optional[Tuple[str, str, str]] = None
    for match in _MODULE_RE.finditer(source):
        name, ports_text, body = match.groups()
        if name in _KNOWN_GATE_MODULES:
            continue
        if top is not None and name != top:
            continue
        target = (name, ports_text, body)
        break
    if target is None:
        raise VerilogParseError("no user module found")
    name, ports_text, body = target

    netlist = Netlist(name, library)
    bus_bits: Dict[str, List[Net]] = {}

    for decl in _split_decls(ports_text):
        port_match = _PORT_RE.match(decl)
        if not port_match:
            raise VerilogParseError(f"unsupported port declaration {decl!r}")
        direction, msb, lsb, port_name = port_match.groups()
        if port_name == "clk":
            continue  # implicit module clock; not a data port
        width = 1 if msb is None else abs(int(msb) - int(lsb)) + 1
        if direction == "input":
            port = netlist.add_input_port(port_name, width)
        else:
            port = netlist.add_output_port(port_name, width)
        bus_bits[port_name] = port.nets

    for wire_match in _WIRE_RE.finditer(body):
        for wire_name in _split_decls(wire_match.group(1)):
            netlist.add_net(_unescape(wire_name))

    def resolve(ref: str) -> Net:
        ref = ref.strip()
        bit_match = re.match(r"([A-Za-z_][\w$]*)\[(\d+)\]$", ref)
        if bit_match and bit_match.group(1) in bus_bits:
            return bus_bits[bit_match.group(1)][int(bit_match.group(2))]
        plain = _unescape(ref)
        if plain in netlist.nets:
            return netlist.nets[plain]
        raise VerilogParseError(f"unknown net reference {ref!r}")

    for inst_match in _INST_RE.finditer(body):
        ctype_name, inst_name, conns_text = inst_match.groups()
        if ctype_name not in library:
            raise VerilogParseError(f"unknown cell type {ctype_name!r}")
        pins: Dict[str, Net] = {}
        for pin, ref in _CONN_RE.findall(conns_text):
            if pin == "CLK":
                continue
            pins[pin] = resolve(ref)
        try:
            netlist.add_instance(ctype_name, pins, name=_unescape(inst_name))
        except NetlistError as exc:
            raise VerilogParseError(str(exc)) from exc

    netlist.validate()
    return netlist
