"""VCD reader: signal-probability profiles from recorded waveforms.

The paper's commercial-setting sketch (§6.3) has data-center operators
collecting traces in the field and chip vendors refining Aging Analysis
with them.  A VCD waveform is the natural interchange format; this
reader parses the (scalar-signal) VCD subset our writer emits — and
that logic analyzers / simulators commonly produce — and converts the
recorded duty cycles into an :class:`~repro.sim.probes.SPProfile`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .probes import SPProfile


class VcdParseError(Exception):
    """Raised on malformed VCD input."""


_VAR_RE = re.compile(
    r"\$var\s+\w+\s+(\d+)\s+(\S+)\s+(\S+)(?:\s+\[\d+(?::\d+)?\])?\s+\$end"
)
_TIME_RE = re.compile(r"^#(\d+)$")
_SCALAR_RE = re.compile(r"^([01xz])(\S+)$")


@dataclass
class VcdData:
    """Parsed waveform: per-signal value-change lists."""

    signals: Dict[str, str] = field(default_factory=dict)  # code -> name
    changes: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    end_time: int = 0

    def duty_cycle(self, code: str) -> float:
        """Fraction of [0, end_time] the signal spent at 1."""
        history = self.changes.get(code, [])
        if not history or self.end_time <= 0:
            return 0.0
        high_time = 0
        for index, (time, value) in enumerate(history):
            if not value:
                continue
            next_time = (
                history[index + 1][0]
                if index + 1 < len(history)
                else self.end_time
            )
            high_time += max(0, next_time - time)
        return min(1.0, high_time / self.end_time)


def parse_vcd(text: str) -> VcdData:
    """Parse scalar-signal VCD text."""
    data = VcdData()
    time = 0
    in_header = True
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_header:
            var = _VAR_RE.match(line)
            if var:
                width, code, name = var.groups()
                if width != "1":
                    raise VcdParseError(
                        f"only scalar signals supported, got width {width}"
                    )
                data.signals[code] = name
                continue
            if line.startswith("$enddefinitions"):
                in_header = False
            continue
        time_match = _TIME_RE.match(line)
        if time_match:
            time = int(time_match.group(1))
            data.end_time = max(data.end_time, time)
            continue
        change = _SCALAR_RE.match(line)
        if change:
            value_char, code = change.groups()
            if code not in data.signals:
                raise VcdParseError(f"value change for unknown code {code!r}")
            value = 1 if value_char == "1" else 0  # x/z conservatively 0
            data.changes.setdefault(code, []).append((time, value))
            continue
        if line.startswith("$"):
            continue  # $dumpvars etc.
        raise VcdParseError(f"unrecognized VCD line {line!r}")
    # The final value persists one more step so single-sample dumps
    # still carry duty information.
    data.end_time += 1
    return data


def sp_profile_from_vcd(
    text: str,
    netlist_name: str,
    samples: Optional[int] = None,
) -> SPProfile:
    """SP profile from a recorded waveform (field-trace ingestion)."""
    data = parse_vcd(text)
    sp = {
        name: data.duty_cycle(code)
        for code, name in data.signals.items()
    }
    return SPProfile(
        netlist_name=netlist_name,
        sp=sp,
        samples=samples if samples is not None else data.end_time,
    )
