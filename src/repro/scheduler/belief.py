"""Per-device aging belief state for the online scheduler.

The dispatch problem is a bandit: for each device the service must
decide which test to run next, knowing only the detection outcomes that
already streamed back.  The belief state is the sufficient statistic
that decision consumes:

* **Arms** are the dispatchable units — one per lifted test case (the
  bottom-up suite split to per-test granularity) plus one coarse arm
  per baseline suite (random, SiliFuzz-lite).  Each arm carries the
  failure-model *class* it targets and its measured fault-free cycle
  cost, so policies can price detection value per cycle.
* **Posteriors** are Beta-Bernoulli, one per ``(device,
  failure-model-class)``: the probability that dispatching a class-c
  arm to this device detects a fault.  Every outcome updates both the
  device's posterior and a fleet-level posterior for the class;
  policies score arms on a blend of the two, so evidence gathered on
  one device transfers to the rest of the fleet (ML aging-prediction
  work frames exactly this population-level estimate).
* **The prior** is derived from the fleet's corner/onset distributions
  (:mod:`repro.campaign.fleet`): the fraction of devices at each
  operating corner whose onset draw lands inside the mission window,
  per model class.  A worst-corner device therefore starts with a
  hotter prior than a typical-corner one — the sign-off pessimism
  ordering, carried into runtime.

Everything here is plain, deterministic arithmetic: the belief contains
no RNG state (Thompson draws come from named streams keyed by tick and
device), serializes to canonical JSON, and round-trips byte-identically
— the properties the service's checkpoint/restart and the replay
determinism contract lean on.

Scoring is vectorized: :class:`FleetBelief` maintains a numpy mirror
(:class:`_BeliefArrays`) of the per-device posteriors, run counts, and
budgets for one arm catalogue, updated incrementally as outcomes fold
in.  The dicts stay the canonical state (snapshots, digests, and the
scalar API are untouched); every array entry is a verbatim *copy* of a
dict-computed float, and the vectorized score expressions apply the
same IEEE operations in the same order as the scalar ones, so policies
reading the arrays decide byte-identically to the scalar reference.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.fleet import DeviceSpec

#: Class label of arms that target every failure-model class at once
#: (the baseline suites fuzz the whole unit rather than one endpoint).
BROAD_CLASS = "*"

#: Prior pseudo-count weight: how many observations the corner/onset
#: prior is worth relative to one real detection outcome.
_PRIOR_STRENGTH = 1.0


@dataclass(frozen=True)
class ArmSpec:
    """One dispatchable test unit.

    Attributes:
        name: Stable arm id (``case:add_0`` / ``suite:random``).
        kind: ``"case"`` for a single lifted test case, ``"random"`` /
            ``"silifuzz"`` for a whole baseline suite.
        class_label: Failure-model class the arm targets (the model
            label of a lifted case), or :data:`BROAD_CLASS` for
            baseline suites.
        cost_cycles: Measured fault-free cycle cost of one execution.
        index: Catalogue position — the static dispatch order, and the
            deterministic tie-break for every policy.
    """

    name: str
    kind: str
    class_label: str
    cost_cycles: int
    index: int

    def as_row(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "class": self.class_label,
            "cost_cycles": self.cost_cycles,
            "index": self.index,
        }


def arms_digest(arms: Sequence[ArmSpec]) -> List[tuple]:
    """Canonical identity of an arm catalogue, for checkpoint keys."""
    return [
        (arm.index, arm.name, arm.kind, arm.class_label, arm.cost_cycles)
        for arm in arms
    ]


def fleet_prior(
    fleet: Sequence[DeviceSpec],
    classes: Sequence[str],
    strength: float = _PRIOR_STRENGTH,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Beta prior per (corner, class) from the fleet's distributions.

    For each operating corner the prior encodes the fraction of that
    corner's devices whose onset draw landed inside the mission window
    with a class-c model — exactly the corner/onset statistics a fleet
    operator knows about the population without knowing any individual
    device.  :data:`BROAD_CLASS` aggregates over all classes (any fault
    present).  A Jeffreys-style 0.5/0.5 floor keeps every posterior
    proper even for classes the fleet never carries.
    """
    corners = sorted({spec.corner for spec in fleet})
    prior: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for corner in corners:
        members = [spec for spec in fleet if spec.corner == corner]
        total = max(1, len(members))
        table: Dict[str, Tuple[float, float]] = {}
        for label in classes:
            carriers = sum(
                1 for spec in members
                if spec.faulty and spec.model_label == label
            )
            p = carriers / total
            table[label] = (0.5 + strength * p, 0.5 + strength * (1.0 - p))
        faulty = sum(1 for spec in members if spec.faulty)
        p = faulty / total
        table[BROAD_CLASS] = (
            0.5 + strength * p,
            0.5 + strength * (1.0 - p),
        )
        prior[corner] = table
    return prior


class _BeliefArrays:
    """Array mirror of a :class:`FleetBelief` for one arm catalogue.

    Row order is device fleet-index order; arm columns are catalogue
    (``index``) order; class columns are first-appearance order over
    the catalogue.  Every float in ``ab``/``fleet_ab`` is copied from
    the dict state (never recomputed), so array reads equal dict reads
    bit for bit.
    """

    def __init__(self, belief: "FleetBelief", arms: Sequence[ArmSpec]):
        self.digest = tuple(arms_digest(arms))
        self.arms: List[ArmSpec] = sorted(arms, key=lambda a: a.index)
        self.arm_col = {arm.name: i for i, arm in enumerate(self.arms)}
        labels: List[str] = []
        for arm in self.arms:
            if arm.class_label not in labels:
                labels.append(arm.class_label)
        self.class_col = {label: i for i, label in enumerate(labels)}
        self.arm_class = np.array(
            [self.class_col[arm.class_label] for arm in self.arms],
            dtype=np.intp,
        )
        self.cost = np.array(
            [arm.cost_cycles for arm in self.arms], dtype=np.float64
        )
        self.cost_int = np.array(
            [arm.cost_cycles for arm in self.arms], dtype=np.int64
        )
        order = sorted(belief.devices.values(), key=lambda d: d.index)
        self.row = {device.device_id: i for i, device in enumerate(order)}
        n_devices, n_classes = len(order), len(labels)
        self.ab = np.empty((n_devices, n_classes, 2), dtype=np.float64)
        for i, device in enumerate(order):
            for label, col in self.class_col.items():
                alpha, beta = device.posteriors.get(
                    label,
                    belief._prior_for(
                        device.corner, label, device.device_id
                    ),
                )
                self.ab[i, col, 0] = alpha
                self.ab[i, col, 1] = beta
        self.fleet_ab = np.zeros((n_classes, 2), dtype=np.float64)
        for label, col in self.class_col.items():
            fleet = belief.fleet_posteriors.get(label)
            if fleet is not None:
                self.fleet_ab[col] = fleet
        self.runs = np.zeros((n_devices, len(self.arms)), dtype=np.int64)
        for i, device in enumerate(order):
            for name, count in device.runs.items():
                col = self.arm_col.get(name)
                if col is not None:
                    self.runs[i, col] = count
        self.spent = np.array(
            [device.spent_cycles for device in order], dtype=np.int64
        )
        self.detected = np.array(
            [device.detected for device in order], dtype=bool
        )

    # -- incremental sync (False: event outside this mirror's scope) ----
    def on_dispatch(self, device_id: str, arm_name: str) -> bool:
        row = self.row.get(device_id)
        col = self.arm_col.get(arm_name)
        if row is None or col is None:
            return False
        self.runs[row, col] += 1
        return True

    def on_outcome(
        self, belief: "FleetBelief", device: "DeviceBelief", label: str
    ) -> bool:
        row = self.row.get(device.device_id)
        if row is None:
            return False
        self.spent[row] = device.spent_cycles
        self.detected[row] = device.detected
        col = self.class_col.get(label)
        if col is not None:
            self.ab[row, col] = device.posteriors[label]
            self.fleet_ab[col] = belief.fleet_posteriors[label]
        return col is not None


@dataclass
class DeviceBelief:
    """Everything the service believes (and has spent) on one device."""

    device_id: str
    index: int
    corner: str
    #: class -> [alpha, beta] Beta posterior, seeded from the corner
    #: prior at first touch.
    posteriors: Dict[str, List[float]] = field(default_factory=dict)
    #: arm name -> times dispatched (deterministic outcomes make a
    #: second run of the same arm uninformative, so policies dispatch
    #: each arm at most once).
    runs: Dict[str, int] = field(default_factory=dict)
    spent_cycles: int = 0
    dispatches: int = 0
    detected: bool = False
    detected_by: Optional[str] = None
    #: Cumulative cycles at the moment of first detection (the
    #: device's time-to-detection).
    detected_cycles: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "device_id": self.device_id,
            "index": self.index,
            "corner": self.corner,
            "posteriors": {
                label: list(ab) for label, ab in self.posteriors.items()
            },
            "runs": dict(self.runs),
            "spent_cycles": self.spent_cycles,
            "dispatches": self.dispatches,
            "detected": self.detected,
            "detected_by": self.detected_by,
            "detected_cycles": self.detected_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceBelief":
        return cls(
            device_id=data["device_id"],
            index=data["index"],
            corner=data["corner"],
            posteriors={
                label: [float(a), float(b)]
                for label, (a, b) in data["posteriors"].items()
            },
            runs={name: int(n) for name, n in data["runs"].items()},
            spent_cycles=int(data["spent_cycles"]),
            dispatches=int(data["dispatches"]),
            detected=bool(data["detected"]),
            detected_by=data["detected_by"],
            detected_cycles=data["detected_cycles"],
        )


class FleetBelief:
    """The service's full mutable state: one belief per device plus the
    fleet-level posteriors the bandit shares across devices.

    This object *is* the checkpoint: snapshotting and restoring it
    resumes the service without replaying the event log, because every
    decision input — posteriors, per-arm run counts, spent budgets,
    detection flags — lives here and the policies' RNG streams are
    stateless (keyed by tick and device, never advanced).
    """

    def __init__(
        self,
        fleet: Sequence[DeviceSpec],
        classes: Sequence[str],
        cycle_budget: int,
        fleet_blend: float = 0.5,
        device_prior: Optional[
            Dict[str, Dict[str, Tuple[float, float]]]
        ] = None,
    ):
        self.classes = list(classes)
        self.cycle_budget = int(cycle_budget)
        self.fleet_blend = float(fleet_blend)
        self.prior = fleet_prior(fleet, self.classes)
        #: Optional per-device (alpha, beta) tables overriding the
        #: corner prior — e.g. the aging surrogate's predicted-onset
        #: priors (:func:`repro.surrogate.triage.surrogate_device_prior`).
        #: Kept out of snapshots when empty so existing digests are
        #: unchanged.
        self.device_prior: Dict[str, Dict[str, Tuple[float, float]]] = {
            device_id: {label: (float(a), float(b)) for label, (a, b) in table.items()}
            for device_id, table in (device_prior or {}).items()
        }
        #: class -> [alpha, beta] *deltas* accumulated fleet-wide (the
        #: prior is per-corner, so fleet evidence is kept separate and
        #: blended in at scoring time).
        self.fleet_posteriors: Dict[str, List[float]] = {}
        self.devices: Dict[str, DeviceBelief] = {
            spec.device_id: DeviceBelief(
                device_id=spec.device_id,
                index=spec.index,
                corner=spec.corner,
            )
            for spec in fleet
        }
        #: Lazily built numpy mirror (per arm catalogue); derived state
        #: only — snapshots and digests never read it.
        self._arrays: Optional[_BeliefArrays] = None

    # -- posterior access ----------------------------------------------
    def _prior_for(
        self, corner: str, label: str, device_id: Optional[str] = None
    ) -> Tuple[float, float]:
        if device_id is not None:
            table = self.device_prior.get(device_id)
            if table is not None and label in table:
                return table[label]
        table = self.prior.get(corner)
        if table is None:
            # Unknown corner (never sampled): neutral Jeffreys prior.
            return (0.5, 0.5)
        return table.get(label, (0.5, 0.5))

    def _device_posterior(
        self, device: DeviceBelief, label: str
    ) -> List[float]:
        posterior = device.posteriors.get(label)
        if posterior is None:
            alpha, beta = self._prior_for(
                device.corner, label, device.device_id
            )
            posterior = [alpha, beta]
            device.posteriors[label] = posterior
        return posterior

    def blended(self, device_id: str, label: str) -> Tuple[float, float]:
        """(alpha, beta) scoring counts: device posterior + blended
        fleet evidence.  Pure read — never materializes state."""
        device = self.devices[device_id]
        alpha, beta = device.posteriors.get(
            label, self._prior_for(device.corner, label, device_id)
        )
        fleet = self.fleet_posteriors.get(label)
        if fleet is not None and self.fleet_blend > 0:
            alpha += self.fleet_blend * fleet[0]
            beta += self.fleet_blend * fleet[1]
        return alpha, beta

    def mean(self, device_id: str, label: str) -> float:
        alpha, beta = self.blended(device_id, label)
        return alpha / (alpha + beta)

    # -- vectorized mirror ----------------------------------------------
    def arrays(self, arms: Sequence[ArmSpec]) -> _BeliefArrays:
        """The numpy mirror for ``arms``, built lazily and kept in sync
        incrementally by :meth:`record_dispatch`/:meth:`record_outcome`
        (an event outside the mirror's catalogue invalidates it)."""
        digest = tuple(arms_digest(arms))
        if self._arrays is None or self._arrays.digest != digest:
            self._arrays = _BeliefArrays(self, arms)
        return self._arrays

    def valid_matrix(
        self, arms: Sequence[ArmSpec], rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(rows x arms) bool matrix of :meth:`candidates` membership."""
        mirror = self.arrays(arms)
        runs = mirror.runs if rows is None else mirror.runs[rows]
        spent = mirror.spent if rows is None else mirror.spent[rows]
        remaining = self.cycle_budget - spent
        return (runs == 0) & (mirror.cost_int[None, :] <= remaining[:, None])

    def blended_matrix(
        self, arms: Sequence[ArmSpec], rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(rows x classes x 2) blended scoring counts — the vectorized
        :meth:`blended`: ``device + fleet_blend * fleet`` elementwise.
        Untouched fleet classes hold (0, 0), and ``x + blend * 0.0`` is
        bit-exact for the strictly positive alphas/betas here, so each
        entry equals the scalar read."""
        mirror = self.arrays(arms)
        ab = mirror.ab if rows is None else mirror.ab[rows]
        return ab + self.fleet_blend * mirror.fleet_ab

    def done_mask(self, arms: Sequence[ArmSpec]) -> np.ndarray:
        """Per-row :meth:`device_done`, whole fleet at once."""
        mirror = self.arrays(arms)
        return mirror.detected | ~self.valid_matrix(arms).any(axis=1)

    def all_done(self, arms: Sequence[ArmSpec]) -> bool:
        return bool(self.done_mask(arms).all())

    def active_count(self, arms: Sequence[ArmSpec]) -> int:
        return int((~self.done_mask(arms)).sum())

    # -- state evolution -----------------------------------------------
    def record_dispatch(self, device_id: str, arm: ArmSpec) -> None:
        device = self.devices[device_id]
        device.runs[arm.name] = device.runs.get(arm.name, 0) + 1
        device.dispatches += 1
        if self._arrays is not None:
            if not self._arrays.on_dispatch(device_id, arm.name):
                self._arrays = None

    def record_outcome(
        self,
        device_id: str,
        arm: ArmSpec,
        detected: bool,
        cycles: int,
        detected_by: Optional[str] = None,
    ) -> None:
        """Fold one streamed result into the belief."""
        device = self.devices[device_id]
        device.spent_cycles += int(cycles)
        posterior = self._device_posterior(device, arm.class_label)
        fleet = self.fleet_posteriors.setdefault(
            arm.class_label, [0.0, 0.0]
        )
        if detected:
            posterior[0] += 1.0
            fleet[0] += 1.0
            if not device.detected:
                device.detected = True
                device.detected_by = detected_by or arm.name
                device.detected_cycles = device.spent_cycles
        else:
            posterior[1] += 1.0
            fleet[1] += 1.0
        if self._arrays is not None:
            if not self._arrays.on_outcome(self, device, arm.class_label):
                self._arrays = None

    # -- dispatch predicates -------------------------------------------
    def runs_of(self, device_id: str, arm_name: str) -> int:
        return self.devices[device_id].runs.get(arm_name, 0)

    def remaining_cycles(self, device_id: str) -> int:
        return self.cycle_budget - self.devices[device_id].spent_cycles

    def candidates(
        self, device_id: str, arms: Sequence[ArmSpec]
    ) -> List[ArmSpec]:
        """Arms still worth dispatching to a device, catalogue order."""
        remaining = self.remaining_cycles(device_id)
        return [
            arm
            for arm in arms
            if self.runs_of(device_id, arm.name) == 0
            and arm.cost_cycles <= remaining
        ]

    def device_done(self, device_id: str, arms: Sequence[ArmSpec]) -> bool:
        """A device leaves the dispatch pool once it detected (the
        operator pulls it for mitigation) or nothing dispatchable fits
        its remaining budget."""
        device = self.devices[device_id]
        return device.detected or not self.candidates(device_id, arms)

    # -- sharding -------------------------------------------------------
    def device_evidence(
        self, device: DeviceBelief
    ) -> Dict[str, Tuple[float, float]]:
        """Per-class (alpha, beta) evidence one device contributed.

        A posterior is ``prior + n`` for integer outcome counts ``n``,
        and for the priors here (magnitude ~1) ``prior + n`` never
        rounds, so the subtraction recovers the exact integer counts —
        the per-device share of the fleet-level sufficient statistics.
        """
        evidence: Dict[str, Tuple[float, float]] = {}
        for label, (alpha, beta) in device.posteriors.items():
            prior_a, prior_b = self._prior_for(
                device.corner, label, device.device_id
            )
            delta_a, delta_b = alpha - prior_a, beta - prior_b
            if delta_a or delta_b:
                evidence[label] = (delta_a, delta_b)
        return evidence

    def partition(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List["FleetBelief"]:
        """Split into per-shard beliefs by device-index range.

        Every shard carries the *full-fleet* prior (the corner/onset
        statistics a fleet operator knows regardless of which shard
        serves a device), its range's devices, and exactly the slice of
        the fleet-level evidence its devices contributed — so
        :meth:`merge` of the partition reproduces this belief's digest
        bit for bit.  Ranges are ``(lo, hi)`` half-open index
        intervals; together they must cover every device exactly once.
        """
        by_index = sorted(self.devices.values(), key=lambda d: d.index)
        shards: List["FleetBelief"] = []
        covered = 0
        for lo, hi in ranges:
            members = [d for d in by_index if lo <= d.index < hi]
            covered += len(members)
            shard = FleetBelief.__new__(FleetBelief)
            shard.classes = list(self.classes)
            shard.cycle_budget = self.cycle_budget
            shard.fleet_blend = self.fleet_blend
            shard.prior = {
                corner: {label: (a, b) for label, (a, b) in table.items()}
                for corner, table in self.prior.items()
            }
            shard.fleet_posteriors = {}
            shard.devices = {}
            shard.device_prior = {}
            for device in members:
                shard.devices[device.device_id] = DeviceBelief.from_dict(
                    device.as_dict()
                )
                table = self.device_prior.get(device.device_id)
                if table is not None:
                    shard.device_prior[device.device_id] = dict(table)
                for label, (da, db) in self.device_evidence(device).items():
                    total = shard.fleet_posteriors.setdefault(
                        label, [0.0, 0.0]
                    )
                    total[0] += da
                    total[1] += db
            shard._arrays = None
            shards.append(shard)
        if covered != len(self.devices):
            raise ValueError(
                f"shard ranges cover {covered} of {len(self.devices)} "
                f"devices (ranges must tile the fleet exactly once)"
            )
        return shards

    @classmethod
    def merge(cls, shards: Sequence["FleetBelief"]) -> "FleetBelief":
        """Exact recombination of a sharded fleet belief.

        Device beliefs union over disjoint keys; the fleet-level
        posteriors recombine by summing per-shard deltas — those are
        integer-valued floats (one ±1.0 per outcome), so the sums are
        exact in any order and the merged state equals what a single
        process folding the concatenated event stream would hold.
        Shards must agree on classes, budget, blend, and prior (they
        all descend from one :meth:`partition`).
        """
        if not shards:
            raise ValueError("merge needs at least one shard belief")
        first = shards[0]
        merged = cls.__new__(cls)
        merged.classes = list(first.classes)
        merged.cycle_budget = first.cycle_budget
        merged.fleet_blend = first.fleet_blend
        merged.prior = {
            corner: {label: (a, b) for label, (a, b) in table.items()}
            for corner, table in first.prior.items()
        }
        merged.fleet_posteriors = {}
        merged.devices = {}
        merged.device_prior = {}
        for shard in shards:
            if (
                shard.classes != merged.classes
                or shard.cycle_budget != merged.cycle_budget
                or shard.fleet_blend != merged.fleet_blend
                or shard.prior != merged.prior
            ):
                raise ValueError(
                    "shard beliefs disagree on classes/budget/blend/"
                    "prior; they are not a partition of one fleet"
                )
            for device_id, device in shard.devices.items():
                if device_id in merged.devices:
                    raise ValueError(
                        f"device {device_id!r} appears in two shards"
                    )
                merged.devices[device_id] = DeviceBelief.from_dict(
                    device.as_dict()
                )
                table = shard.device_prior.get(device_id)
                if table is not None:
                    merged.device_prior[device_id] = dict(table)
            for label, (da, db) in shard.fleet_posteriors.items():
                total = merged.fleet_posteriors.setdefault(
                    label, [0.0, 0.0]
                )
                total[0] += da
                total[1] += db
        merged._arrays = None
        return merged

    # -- serialization --------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical, JSON-ready copy of the full belief state.

        ``device_prior`` appears only when set, so beliefs without
        per-device priors keep their historical serialization (and
        digests) byte for byte.
        """
        data = {
            "classes": list(self.classes),
            "cycle_budget": self.cycle_budget,
            "fleet_blend": self.fleet_blend,
            "prior": {
                corner: {label: list(ab) for label, ab in table.items()}
                for corner, table in self.prior.items()
            },
            "fleet_posteriors": {
                label: list(ab)
                for label, ab in self.fleet_posteriors.items()
            },
            "devices": {
                device_id: belief.as_dict()
                for device_id, belief in self.devices.items()
            },
        }
        if self.device_prior:
            data["device_prior"] = {
                device_id: {label: list(ab) for label, ab in table.items()}
                for device_id, table in self.device_prior.items()
            }
        return data

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_snapshot(cls, data: dict) -> "FleetBelief":
        belief = cls.__new__(cls)
        belief.classes = list(data["classes"])
        belief.cycle_budget = int(data["cycle_budget"])
        belief.fleet_blend = float(data["fleet_blend"])
        belief.prior = {
            corner: {
                label: (float(a), float(b))
                for label, (a, b) in table.items()
            }
            for corner, table in data["prior"].items()
        }
        belief.fleet_posteriors = {
            label: [float(a), float(b)]
            for label, (a, b) in data["fleet_posteriors"].items()
        }
        belief.devices = {
            device_id: DeviceBelief.from_dict(entry)
            for device_id, entry in data["devices"].items()
        }
        belief.device_prior = {
            device_id: {
                label: (float(a), float(b))
                for label, (a, b) in table.items()
            }
            for device_id, table in data.get("device_prior", {}).items()
        }
        belief._arrays = None
        return belief

    @classmethod
    def from_json(cls, text: str) -> "FleetBelief":
        return cls.from_snapshot(json.loads(text))

    def digest(self) -> str:
        """sha256 of the canonical serialization — the fingerprint the
        event log's checkpoint records carry, so replay equality also
        proves belief-state equality."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()
