"""The response engine: evaluate reconfiguration policies on aged timing.

Every policy evaluation reduces to the same primitive the lifetime
simulator uses — re-characterize the timing library at an age, build
the aged delay model, run STA at a period — plus, for the structural
policies, netlist clone surgery checked by the lifting engine's
sequential equivalence machinery:

* ``derate`` re-runs the aged STA at progressively longer periods
  until the mission-age violations clear, then re-scans onset at the
  chosen period — pure frequency cost;
* ``resynth`` optimizes a clone (:func:`repro.netlist.opt.optimize`),
  *proves* the result equivalent, and models the violating cone's
  cells as fresh silicon (the re-synthesized cone replaces its aged
  transistors) before re-scanning onset — area cost, exactness
  guaranteed;
* ``approximate`` bypasses the violating endpoint's capture logic
  (rewiring its D pin to the driver's first fanin), sweeps the
  dangling cone, re-profiles the approximated netlist with the
  mission operand stream (fork-sharded, cached), and measures the
  output-accuracy cost over deterministic random operands — lifetime
  recovered by *removing* the aged critical path, paid in exactness.

Completed policies publish checkpoints through the artifact cache, so
an evaluation killed mid-policy resumes at the first incomplete policy
and produces a byte-identical :class:`~repro.response.report
.ResponseReport`; worker counts never enter keys or results.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..aging.charlib import AgingTimingLibrary
from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import AgingAnalysisConfig, ResponseConfig
from ..core.rng import stream_rng
from ..formal.equiv import check_equivalence
from ..netlist.netlist import Netlist
from ..netlist.opt import optimize
from ..sim.gatesim import GateSimulator
from ..sim.parallel_profile import profile_workload_streams
from ..sim.probes import SPProfile
from ..sta.aging_sta import AgingAwareSta
from ..sta.timing import TimingViolation

#: Checkpoint payload version; bump on incompatible layout changes.
_CHECKPOINT_VERSION = 1


def _profile_digest(profile: SPProfile) -> str:
    """Content identity of an SP profile, for response cache keys."""
    if profile.ones is not None:
        body = sorted(profile.ones.items())
    else:
        body = sorted(profile.sp.items())
    return ArtifactCache.digest(
        "sp-identity", profile.netlist_name, profile.samples, body
    )


class ResponseEngine:
    """Evaluates response policies for one unit's aged timing.

    Args:
        netlist: The deployed unit.
        unit: Unit name for reports.
        profile: The unit's mission SP profile (what aged it).
        aging: Phase-1 analysis config (clock margin, path caps).
        config: Response-policy config.
        gated_instances: Clock-gated sinks, as the aging STA takes.
        clock_chain_length: Clock distribution chain depth.
        cache: Optional artifact cache for checkpoints and re-profiles.
        operands: Optional mission operand stream; when present the
            ``approximate`` policy re-profiles its modified netlist
            with it (sharded across ``config.workers``) instead of
            reusing the original profile.
        temperature_c: Characterization temperature.
    """

    def __init__(
        self,
        netlist: Netlist,
        unit: str,
        profile: SPProfile,
        aging: Optional[AgingAnalysisConfig] = None,
        config: Optional[ResponseConfig] = None,
        gated_instances=None,
        clock_chain_length: int = 1,
        cache: Optional[ArtifactCache] = None,
        operands: Optional[Sequence[Mapping[str, int]]] = None,
        temperature_c: float = 105.0,
    ):
        self.netlist = netlist
        self.unit = unit
        self.profile = profile
        self.aging = aging or AgingAnalysisConfig()
        self.config = config or ResponseConfig()
        self.gated_instances = gated_instances
        self.clock_chain_length = clock_chain_length
        self.cache = cache
        self.operands = list(operands) if operands is not None else None
        self.temperature_c = temperature_c
        self._libs: Dict[float, AgingTimingLibrary] = {}
        self._stas: Dict[str, AgingAwareSta] = {}
        self.resumed_policies: List[str] = []

    # -- shared timing primitives ---------------------------------------
    def _timing_lib(self, age: float) -> AgingTimingLibrary:
        key = round(float(age), 6)
        lib = self._libs.get(key)
        if lib is None:
            lib = AgingTimingLibrary.characterize(
                self.netlist.library,
                lifetime_years=key,
                temperature_c=self.temperature_c,
            )
            self._libs[key] = lib
        return lib

    def _sta_for(self, netlist: Netlist) -> AgingAwareSta:
        sta = self._stas.get(netlist.name)
        if sta is None:
            sta = AgingAwareSta(
                netlist,
                None,
                config=self.aging,
                gated_instances=self.gated_instances,
                clock_chain_length=self.clock_chain_length,
            )
            self._stas[netlist.name] = sta
        return sta

    def _aged_report(
        self,
        netlist: Netlist,
        profile: SPProfile,
        age: float,
        period: float,
        fresh_instances: Sequence[str] = (),
    ):
        """Aged STA of ``netlist`` at ``age`` years and ``period`` ns.

        ``fresh_instances`` are modelled at their un-aged cell delays —
        the re-synthesis policy's "replaced cone" view.
        """
        sta = self._sta_for(netlist)
        sta.timing_lib = self._timing_lib(age)
        model, increase = sta.aged_delay_model(profile)
        for name in fresh_instances:
            inst = netlist.instances.get(name)
            if inst is not None:
                model.delays[name] = (inst.ctype.tmin, inst.ctype.tmax)
        return sta.analyze(
            profile,
            clock_period_ns=period,
            aged_model=model,
            delay_increase=increase,
        ).report

    def onset_scan(
        self,
        netlist: Netlist,
        profile: SPProfile,
        period: float,
        fresh_instances: Sequence[str] = (),
    ) -> Tuple[Optional[float], Optional[TimingViolation]]:
        """First violating age on the config grid, plus the worst path.

        Early-exits at the first violating age; ``(None, None)`` when
        the whole horizon stays clean.
        """
        for age in self.config.age_grid:
            report = self._aged_report(
                netlist, profile, age, period, fresh_instances
            )
            if report.violations:
                return float(age), report.representative_violations()[0]
        return None, None

    def _onset_value(self, onset: Optional[float]) -> Tuple[float, bool]:
        if onset is None:
            horizon = self.config.age_grid[-1]
            return round(horizon * self.config.censor_factor, 6), True
        return float(onset), False

    # -- cache keys -----------------------------------------------------
    def response_key(self) -> str:
        """Identity of this evaluation (workers never enter it)."""
        cfg = self.config
        return ArtifactCache.digest(
            "response",
            self.netlist.structural_hash(),
            _profile_digest(self.profile),
            list(cfg.policies),
            cfg.derate_step,
            cfg.max_derate,
            cfg.mission_years,
            list(cfg.age_grid),
            cfg.censor_factor,
            cfg.equiv_depth,
            cfg.equiv_conflict_budget,
            cfg.accuracy_samples,
            cfg.accuracy_depth,
            cfg.seed,
            self.aging.clock_margin,
            self.aging.max_paths_per_endpoint,
            self.temperature_c,
            (
                ArtifactCache.stream_digest(self.operands)
                if self.operands is not None
                else None
            ),
        )

    def _policy_key(self, policy: str) -> str:
        return ArtifactCache.digest(
            "response-policy", self.response_key(), policy
        )

    # -- policies -------------------------------------------------------
    def _row(self, policy: str, **overrides) -> dict:
        row = {
            "policy": policy,
            "applicable": True,
            "new_onset_years": 0.0,
            "censored": False,
            "recovered_years": 0.0,
            "frequency_cost_pct": 0.0,
            "accuracy_cost_pct": 0.0,
            "area_delta_cells": 0,
            "equivalent": True,
            "detail": "",
        }
        row.update(overrides)
        return row

    def _eval_derate(
        self, period: float, baseline_onset: float, victim: TimingViolation
    ) -> dict:
        cfg = self.config
        steps = max(1, int(round(cfg.max_derate / cfg.derate_step)))
        chosen = cfg.max_derate
        for k in range(1, steps + 1):
            derate = round(k * cfg.derate_step, 6)
            report = self._aged_report(
                self.netlist,
                self.profile,
                cfg.mission_years,
                period * (1.0 + derate),
            )
            if not report.violations:
                chosen = derate
                break
        onset, _ = self.onset_scan(
            self.netlist, self.profile, period * (1.0 + chosen)
        )
        new_onset, censored = self._onset_value(onset)
        return self._row(
            "derate",
            new_onset_years=new_onset,
            censored=censored,
            recovered_years=round(new_onset - baseline_onset, 6),
            frequency_cost_pct=round(chosen * 100.0, 6),
            detail=(
                f"clock period +{chosen * 100.0:.0f}% "
                f"({period * (1.0 + chosen):.4f} ns)"
            ),
        )

    def _violating_cone(
        self, netlist: Netlist, victim: TimingViolation
    ) -> List[str]:
        """Combinational instances feeding the victim endpoint's D pin."""
        flop = netlist.instances.get(victim.end)
        if flop is None:
            return []
        cone = netlist.fanin_cone(flop.pins["D"])
        return sorted(
            inst.name for inst in cone if not inst.ctype.is_seq
        )

    def _eval_resynth(
        self, period: float, baseline_onset: float, victim: TimingViolation
    ) -> dict:
        cfg = self.config
        clone = self.netlist.clone(self.netlist.name + "__resynth")
        removed = optimize(clone)
        verdict = check_equivalence(
            self.netlist,
            clone,
            depth=cfg.equiv_depth,
            conflict_budget=cfg.equiv_conflict_budget,
        )
        if verdict.equivalent is False:
            raise RuntimeError(
                "re-synthesis broke equivalence: counterexample "
                f"{verdict.counterexample} at cycle {verdict.cycle}"
            )
        cone = self._violating_cone(clone, victim)
        if not cone:
            return self._row(
                "resynth",
                applicable=False,
                detail=f"endpoint {victim.end} has no surviving cone",
            )
        onset, _ = self.onset_scan(
            clone, self.profile, period, fresh_instances=cone
        )
        new_onset, censored = self._onset_value(onset)
        return self._row(
            "resynth",
            new_onset_years=new_onset,
            censored=censored,
            recovered_years=round(new_onset - baseline_onset, 6),
            area_delta_cells=len(cone),
            equivalent=verdict.equivalent,
            detail=(
                f"re-synthesized the {len(cone)}-cell cone of "
                f"{victim.end} as fresh silicon "
                f"(optimizer removed {removed} cell(s); equivalence "
                + (
                    "proved"
                    if verdict.equivalent
                    else "inconclusive (budget)"
                )
                + ")"
            ),
        )

    def _accuracy_cost(self, approx: Netlist) -> float:
        """Output-mismatch % of the approximated netlist.

        Deterministic random operand frames from the
        ``response.accuracy`` stream, co-simulated on both netlists
        until results reach the output flops.
        """
        cfg = self.config
        ports = [(p.name, p.width) for p in self.netlist.input_ports()]
        sims = (GateSimulator(self.netlist), GateSimulator(approx))
        rng = stream_rng("response.accuracy", cfg.seed)
        mismatches = 0
        for _ in range(cfg.accuracy_samples):
            frame = {
                name: rng.getrandbits(width) for name, width in ports
            }
            outputs = []
            for sim in sims:
                sim.reset()
                for _ in range(cfg.accuracy_depth):
                    sim.step(frame)
                outputs.append(sim.read_outputs())
            if outputs[0] != outputs[1]:
                mismatches += 1
        return round(100.0 * mismatches / cfg.accuracy_samples, 6)

    def _approx_profile(self, approx: Netlist) -> SPProfile:
        """SP profile of the approximated netlist.

        With a mission operand stream available, re-profile the
        modified structure (what actually ages in the field); the
        profiler shards across ``config.workers`` and the result is
        cached by content — worker count never enters the key.
        """
        if self.operands is None:
            return self.profile
        key = None
        if self.cache is not None:
            key = ArtifactCache.digest(
                "response-profile",
                approx.structural_hash(),
                ArtifactCache.stream_digest(self.operands),
                self.aging.profile_lanes,
            )
            hit = self.cache.load_profile(key)
            if hit is not None:
                return hit
        profile = profile_workload_streams(
            approx,
            {"mission": self.operands},
            lanes=self.aging.profile_lanes,
            workers=self.config.workers,
        )
        if self.cache is not None and key is not None:
            self.cache.store_profile(key, profile)
        return profile

    def _eval_approximate(
        self, period: float, baseline_onset: float, victim: TimingViolation
    ) -> dict:
        cfg = self.config
        clone = self.netlist.clone(self.netlist.name + "__approx")
        flop = clone.instances.get(victim.end)
        if flop is None:
            return self._row(
                "approximate",
                applicable=False,
                detail=f"endpoint {victim.end} not in netlist",
            )
        d_net = flop.pins["D"]
        driver = d_net.driver[0] if d_net.driver is not None else None
        if driver is None or driver.ctype.is_seq or not driver.input_nets():
            return self._row(
                "approximate",
                applicable=False,
                detail=(
                    f"{victim.end}.D has no combinational driver to "
                    "bypass"
                ),
            )
        bypass = driver.input_nets()[0]
        clone.rewire_input(flop, "D", bypass)
        swept = optimize(clone)
        verdict = check_equivalence(
            self.netlist,
            clone,
            depth=cfg.equiv_depth,
            conflict_budget=cfg.equiv_conflict_budget,
        )
        accuracy = self._accuracy_cost(clone)
        profile = self._approx_profile(clone)
        onset, _ = self.onset_scan(clone, profile, period)
        new_onset, censored = self._onset_value(onset)
        return self._row(
            "approximate",
            new_onset_years=new_onset,
            censored=censored,
            recovered_years=round(new_onset - baseline_onset, 6),
            accuracy_cost_pct=accuracy,
            area_delta_cells=-swept,
            equivalent=verdict.equivalent,
            detail=(
                f"bypassed {driver.name} ({driver.ctype.name}) feeding "
                f"{victim.end}.D via {bypass.name}; swept {swept} "
                f"dangling cell(s)"
            ),
        )

    # -- the evaluation loop --------------------------------------------
    def evaluate(self, resume: bool = False):
        """Evaluate every configured policy; return a ResponseReport.

        With a cache, the baseline scan and each completed policy
        publish checkpoints; ``resume=True`` reuses them, so a run
        killed mid-policy restarts at the first incomplete policy and
        still emits byte-identical JSON.
        """
        from .report import ResponseReport

        evaluators = {
            "derate": self._eval_derate,
            "resynth": self._eval_resynth,
            "approximate": self._eval_approximate,
        }
        cfg = self.config
        with telemetry.span("response.evaluate", unit=self.unit):
            period = self._sta_for(self.netlist).derive_period()
            baseline_key = ArtifactCache.digest(
                "response-baseline", self.response_key()
            )
            baseline = None
            if resume and self.cache is not None:
                payload = self.cache.load_checkpoint(baseline_key)
                if (
                    isinstance(payload, dict)
                    and payload.get("version") == _CHECKPOINT_VERSION
                ):
                    baseline = payload["baseline"]
                    self.resumed_policies.append("baseline")
            if baseline is None:
                with telemetry.span("response.baseline"):
                    onset, victim = self.onset_scan(
                        self.netlist, self.profile, period
                    )
                baseline = {
                    "onset": onset,
                    "victim": (
                        (victim.start, victim.end, victim.kind)
                        if victim is not None
                        else None
                    ),
                }
                if self.cache is not None:
                    self.cache.store_checkpoint(
                        baseline_key,
                        {"version": _CHECKPOINT_VERSION,
                         "baseline": baseline},
                    )
            onset = baseline["onset"]
            victim_tuple = baseline["victim"]
            if onset is None or victim_tuple is None:
                return ResponseReport(
                    unit=self.unit,
                    period_ns=round(period, 6),
                    mission_years=cfg.mission_years,
                    horizon_years=float(cfg.age_grid[-1]),
                    censor_factor=cfg.censor_factor,
                    baseline_onset_years=None,
                    victim_start=None,
                    victim_end=None,
                    victim_kind=None,
                    policies=[],
                )
            start, end, kind = victim_tuple
            victim = TimingViolation(
                kind=kind, start=start, end=end, cells=(),
                arrival=0.0, required=0.0,
            )
            rows: List[dict] = []
            for policy in cfg.policies:
                evaluator = evaluators.get(policy)
                if evaluator is None:
                    raise ValueError(f"unknown response policy {policy!r}")
                key = self._policy_key(policy)
                row = None
                if resume and self.cache is not None:
                    payload = self.cache.load_checkpoint(key)
                    if (
                        isinstance(payload, dict)
                        and payload.get("version") == _CHECKPOINT_VERSION
                    ):
                        row = dict(payload["row"])
                        self.resumed_policies.append(policy)
                if row is None:
                    with telemetry.span("response.policy", policy=policy):
                        row = evaluator(period, float(onset), victim)
                    if self.cache is not None:
                        self.cache.store_checkpoint(
                            key,
                            {"version": _CHECKPOINT_VERSION, "row": row},
                        )
                telemetry.event(
                    "response.policy_done",
                    policy=policy,
                    recovered_years=row["recovered_years"],
                    applicable=row["applicable"],
                )
                rows.append(row)
            return ResponseReport(
                unit=self.unit,
                period_ns=round(period, 6),
                mission_years=cfg.mission_years,
                horizon_years=float(cfg.age_grid[-1]),
                censor_factor=cfg.censor_factor,
                baseline_onset_years=float(onset),
                victim_start=start,
                victim_end=end,
                victim_kind=kind,
                policies=rows,
            )
