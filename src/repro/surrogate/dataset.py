"""Labeled dataset generation for the aging surrogate.

Every row is one synthetic device: a workload-skewed SP profile at one
operating corner, labeled by the exact charlib+STA oracle with its
violation onset (right-censored at ``censor_factor * horizon``) and
the worst setup slack at a sampled age.  Rows are a pure function of
``(config, row index)``:

* all draws come off ``stream_rng("surrogate.dataset", seed, index)``
  and the per-net noise off the shared
  :func:`device_sp_vector` PCG64 stream, so any worker count and any
  process produces byte-identical rows;
* values are normalized through the benchmark harness's
  :func:`repro.bench.canon_value` at construction, so the canonical
  JSON is stable against float formatting differences;
* the serialized dataset is published through the
  :class:`~repro.core.artifacts.ArtifactCache` under a key covering
  the netlist structural hash, the base profile, and every config
  field that changes rows.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aging.corners import TYPICAL_CORNER, WORST_CORNER, OperatingCorner
from ..bench.sample import canon_value, canonical_dumps
from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import SurrogateConfig
from ..core.rng import stream_rng, stream_seed
from ..lifting.parallel import fork_available
from ..netlist.cells import CellLibrary
from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile
from .features import FEATURE_SCHEMA, FleetFeaturizer, feature_names
from .oracle import ExactAgingOracle

#: Bumped on any incompatible change to the dataset row layout.
DATASET_SCHEMA = 1

_CORNERS: Dict[str, OperatingCorner] = {
    TYPICAL_CORNER.name: TYPICAL_CORNER,
    WORST_CORNER.name: WORST_CORNER,
}


def device_sp_vector(
    base_sp: np.ndarray,
    intensity: float,
    noise: float,
    seed: int,
    index: int,
) -> np.ndarray:
    """Workload-skewed SP vector for one synthetic device.

    ``intensity > 0`` pushes SPs toward 0 — the maximally BTI-stressed
    state for the library's ``stress_state == 0`` cells (duty is
    ``1 - sp``) — and ``intensity < 0`` pushes toward 1 (de-stress).
    Per-net weights ``1 - noise * u`` with ``u ~ U[0, 1)`` from the
    ``surrogate.device`` PCG64 stream make two devices at the same
    intensity distinct.  Used verbatim by dataset generation, the
    exact profiled fleet, and triage scoring, so every consumer sees
    the same device bit for bit.
    """
    rng = np.random.Generator(
        np.random.PCG64(stream_seed("surrogate.device", seed, index))
    )
    weights = 1.0 - noise * rng.random(base_sp.shape[0])
    if intensity >= 0.0:
        skewed = base_sp * (1.0 - intensity * weights)
    else:
        skewed = base_sp + (-intensity) * weights * (1.0 - base_sp)
    return np.clip(skewed, 0.0, 1.0)


def skewed_profile(
    base: SPProfile,
    netlist: Netlist,
    intensity: float,
    noise: float,
    seed: int,
    index: int,
) -> SPProfile:
    """Dict-profile convenience wrapper over :func:`device_sp_vector`."""
    featurizer = FleetFeaturizer(netlist)
    return featurizer.profile(
        device_sp_vector(
            featurizer.base_vector(base), intensity, noise, seed, index
        )
    )


def sample_draws(
    config: SurrogateConfig, index: int
) -> Tuple[float, str, float]:
    """(intensity, corner name, slack-sample age) for one dataset row.

    One named stream per row: draw order is fixed (intensity, corner,
    age) and independent of every other row, which is what lets workers
    label arbitrary index subsets.
    """
    rng = stream_rng("surrogate.dataset", config.seed, index)
    intensity = rng.uniform(config.skew_min, config.skew_max)
    corner = WORST_CORNER if rng.random() < 0.5 else TYPICAL_CORNER
    age = config.age_grid[rng.randrange(len(config.age_grid))]
    return intensity, corner.name, age


@dataclass
class SurrogateDataset:
    """A labeled sweep, canonically serializable.

    ``rows`` hold plain canon-normalized JSON values only; ``to_json``
    is byte-stable and :meth:`digest` fingerprints it.
    """

    netlist_name: str
    config: Dict[str, Any]
    feature_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def to_document(self) -> Dict[str, Any]:
        return {
            "schema": DATASET_SCHEMA,
            "feature_schema": FEATURE_SCHEMA,
            "netlist": self.netlist_name,
            "config": self.config,
            "feature_names": list(self.feature_names),
            "rows": self.rows,
        }

    def to_json(self) -> str:
        return canonical_dumps(self.to_document())

    @classmethod
    def from_json(cls, text: str) -> "SurrogateDataset":
        data = json.loads(text)
        if data.get("schema") != DATASET_SCHEMA:
            raise ValueError(
                f"unsupported surrogate dataset schema "
                f"{data.get('schema')!r} (this build reads "
                f"{DATASET_SCHEMA})"
            )
        if data.get("feature_schema") != FEATURE_SCHEMA:
            raise ValueError(
                f"dataset feature schema {data.get('feature_schema')!r} "
                f"does not match this build's {FEATURE_SCHEMA}"
            )
        return cls(
            netlist_name=data["netlist"],
            config=data["config"],
            feature_names=list(data["feature_names"]),
            rows=list(data["rows"]),
        )

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- matrices -------------------------------------------------------
    def matrices(
        self, rows: Optional[Sequence[Dict[str, Any]]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(X, y) float64 arrays; y columns are (onset, slack)."""
        rows = self.rows if rows is None else list(rows)
        X = np.asarray([row["features"] for row in rows], dtype=np.float64)
        y = np.asarray(
            [[row["onset_years"], row["slack_ns"]] for row in rows],
            dtype=np.float64,
        )
        return X, y

    def split(
        self, holdout_fraction: float, seed: int
    ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
        """Deterministic (train, holdout) partition.

        The shuffle runs on the ``surrogate.split`` stream, so the
        partition depends only on (seed, row count) — not on process
        history or worker count.
        """
        order = list(range(len(self.rows)))
        stream_rng("surrogate.split", seed).shuffle(order)
        n_holdout = int(round(holdout_fraction * len(order)))
        holdout = sorted(order[:n_holdout])
        train = sorted(order[n_holdout:])
        return (
            [self.rows[i] for i in train],
            [self.rows[i] for i in holdout],
        )


def _label_row(
    index: int,
    config: SurrogateConfig,
    featurizer: FleetFeaturizer,
    oracle: ExactAgingOracle,
    base_sp: np.ndarray,
) -> Dict[str, Any]:
    intensity, corner_name, age = sample_draws(config, index)
    sp = device_sp_vector(
        base_sp, intensity, config.noise, config.seed, index
    )
    profile = featurizer.profile(sp)
    corner = _CORNERS[corner_name]
    onset, censored, slack = oracle.label(profile, corner, age)
    features = featurizer.vector(sp, corner_name, age)
    return canon_value(
        {
            "index": index,
            "intensity": intensity,
            "corner": corner_name,
            "age_years": age,
            "onset_years": onset,
            "censored": censored,
            "slack_ns": slack,
            "features": features.tolist(),
        }
    )


# -- fork-worker plumbing (mirrors repro.campaign.engine) ---------------
_WORKER_STATE: Optional[tuple] = None


def _init_dataset_worker(state: tuple) -> None:
    global _WORKER_STATE
    telemetry.install(telemetry.Telemetry(run_id="surrogate-worker"))
    _WORKER_STATE = state


def _label_chunk(indices: List[int]) -> List[Dict[str, Any]]:
    assert _WORKER_STATE is not None
    config, featurizer, oracle, base_sp = _WORKER_STATE
    return [
        _label_row(index, config, featurizer, oracle, base_sp)
        for index in indices
    ]


def dataset_key(
    netlist: Netlist, base: SPProfile, config: SurrogateConfig
) -> str:
    """Content-addressed identity of a generated dataset.

    ``workers`` stays out on purpose: any worker count generates the
    same bytes.
    """
    return ArtifactCache.digest(
        "surrogate-dataset",
        DATASET_SCHEMA,
        FEATURE_SCHEMA,
        netlist.structural_hash(),
        hashlib.sha256(base.to_json().encode()).hexdigest(),
        [
            config.samples,
            config.seed,
            config.level_buckets,
            config.skew_min,
            config.skew_max,
            config.noise,
            list(config.age_grid),
            config.censor_factor,
        ],
    )


def generate_dataset(
    netlist: Netlist,
    library: CellLibrary,
    base_profile: SPProfile,
    config: Optional[SurrogateConfig] = None,
    cache: Optional[ArtifactCache] = None,
) -> SurrogateDataset:
    """Run the labeled sweep (cached, parallel, byte-deterministic).

    Rows are generated for indices ``0..samples-1``; workers label
    contiguous chunks and results reassemble in index order, so the
    output is byte-identical for any ``config.workers`` and across
    process restarts.
    """
    config = config or SurrogateConfig()
    key = dataset_key(netlist, base_profile, config)
    if cache is not None:
        text = cache.load("surrogate-dataset", key)
        if text is not None:
            return SurrogateDataset.from_json(text)

    featurizer = FleetFeaturizer(netlist, buckets=config.level_buckets)
    oracle = ExactAgingOracle(netlist, library, config=config)
    base_sp = featurizer.base_vector(base_profile)
    indices = list(range(config.samples))
    workers = int(config.workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    workers = min(workers, max(1, len(indices)))

    with telemetry.span(
        "surrogate.dataset",
        netlist=netlist.name,
        samples=config.samples,
        workers=workers,
    ):
        if workers > 1 and fork_available():
            chunk = max(1, (len(indices) + workers - 1) // workers)
            chunks = [
                indices[start : start + chunk]
                for start in range(0, len(indices), chunk)
            ]
            ctx = multiprocessing.get_context("fork")
            state = (config, featurizer, oracle, base_sp)
            try:
                pool = ctx.Pool(
                    processes=min(workers, len(chunks)),
                    initializer=_init_dataset_worker,
                    initargs=(state,),
                )
            except (OSError, ValueError):
                pool = None
            if pool is None:
                rows = [
                    _label_row(i, config, featurizer, oracle, base_sp)
                    for i in indices
                ]
            else:
                with pool:
                    # imap preserves chunk submission order.
                    rows = [
                        row
                        for part in pool.imap(_label_chunk, chunks)
                        for row in part
                    ]
        else:
            rows = [
                _label_row(i, config, featurizer, oracle, base_sp)
                for i in indices
            ]
        telemetry.add("surrogate.dataset.rows", len(rows))

    dataset = SurrogateDataset(
        netlist_name=netlist.name,
        config=canon_value(
            {
                "samples": config.samples,
                "seed": config.seed,
                "level_buckets": config.level_buckets,
                "skew_min": config.skew_min,
                "skew_max": config.skew_max,
                "noise": config.noise,
                "age_grid": list(config.age_grid),
                "censor_factor": config.censor_factor,
            }
        ),
        feature_names=feature_names(config.level_buckets),
        rows=rows,
    )
    if cache is not None:
        cache.store("surrogate-dataset", key, dataset.to_json())
    return dataset
