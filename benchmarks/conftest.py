"""Shared fixtures for the evaluation benchmarks.

Every benchmark regenerates one table or figure of the paper (§5) and
prints/saves the rows.  The heavy pipeline state (netlists, SP profiles,
aging STA, lifted test suites, failing netlists) is built once per
session and shared through :func:`repro.core.experiments.default_context`.

Run with::

    pytest benchmarks/ --benchmark-only

Generated tables land in ``benchmarks/results/`` so EXPERIMENTS.md can
reference them.
"""

import pathlib

import pytest

from repro.core.experiments import default_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    return default_context()


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return _save
