"""The aging surrogate: features, dataset determinism, model, triage.

Covers the `repro.surrogate` package plus its integration points:

* pinned exact values of `SPProfile.feature_vector` on the paper's
  example adder (the dict path) and bit-identity of the vectorized
  `FleetFeaturizer` hot path against it;
* byte-identical dataset generation across worker counts and process
  restarts (including a hypothesis property over seeds/sizes);
* ridge snapshot round trips, digest stability, and the fail-closed
  validation gate;
* triage: exact device specs are a pure function of their index, so
  the re-verified tail's campaign report rows equal the corresponding
  rows of an all-exact campaign byte for byte;
* the scheduler's per-device surrogate priors (belief lookup, digest
  preservation, partition/merge round trip).
"""

import dataclasses
import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignEngine
from repro.core.config import (
    CampaignConfig,
    ErrorLiftingConfig,
    SurrogateConfig,
)
from repro.core.artifacts import ArtifactCache
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.netlist.cells import make_vega28_library
from repro.scheduler.belief import BROAD_CLASS, FleetBelief
from repro.sim.probes import SPProfile, net_levels
from repro.sta.timing import TimingViolation
from repro.surrogate import (
    FleetFeaturizer,
    RidgeSurrogate,
    SurrogateDataset,
    SurrogateValidationError,
    TriageOutcome,
    device_features,
    device_sp_vector,
    generate_dataset,
    profiled_fleet,
    run_surrogate_campaign,
    surrogate_device_prior,
    train_surrogate,
    triage_fleet,
    validate_model,
)
from repro.surrogate.dataset import sample_draws

#: Short age grid keeping the exact oracle cheap in unit tests; the
#: full 31-point grid is exercised by the CLI smoke and the benchmark.
FAST = SurrogateConfig(
    samples=16,
    seed=7,
    age_grid=(2.0, 5.0, 8.0, 11.0, 14.0),
    workers=1,
)


def ramp_profile(netlist) -> SPProfile:
    """Deterministic SP ramp over the netlist's sorted nets."""
    names = sorted(netlist.nets)
    sp = {
        name: round((i + 1) / (len(names) + 1), 6)
        for i, name in enumerate(names)
    }
    return SPProfile(netlist_name=netlist.name, sp=sp, samples=4)


# ---------------------------------------------------------------------
# Feature extraction (pinned values on the paper adder)
# ---------------------------------------------------------------------
class TestFeatureVector:
    def test_net_levels_pinned(self, paper_adder):
        assert net_levels(paper_adder) == {
            "carry": 1, "s0": 1, "s1": 2, "s1a": 1,
        }

    def test_feature_vector_pinned_values(self, paper_adder):
        profile = ramp_profile(paper_adder)
        vector = profile.feature_vector(paper_adder, buckets=4)
        assert vector.tolist() == [
            0.5,                    # sp_mean over the 14-net ramp
            0.26874189541135135,    # sp_std
            0.07142857142857142,    # sp <= 0.1 fraction (1/14)
            0.07142857142857142,    # sp >= 0.9 fraction (1/14)
            0.3555555873014286,     # toggle proxy mean
            0.47777783333333335,    # dff output mean
            0.8,                    # combinational mean
            0.7777776666666666, 0.6, 0.933333,   # level bucket 0
            0.5, 0.5, 0.5,                        # bucket 1 (empty)
            0.866667, 0.866667, 0.866667,         # bucket 2 (s1 alone)
            0.5, 0.5, 0.5,                        # bucket 3 (empty)
        ]

    def test_level_aggregates_pinned(self, paper_adder):
        profile = ramp_profile(paper_adder)
        assert profile.level_aggregates(paper_adder, buckets=4) == [
            (0.7777776666666666, 0.6, 0.933333),
            (0.5, 0.5, 0.5),
            (0.866667, 0.866667, 0.866667),
            (0.5, 0.5, 0.5),
        ]

    def test_independent_of_profile_dict_order(self, paper_adder):
        profile = ramp_profile(paper_adder)
        reversed_profile = SPProfile(
            netlist_name=profile.netlist_name,
            sp=dict(reversed(list(profile.sp.items()))),
            samples=profile.samples,
        )
        assert np.array_equal(
            profile.feature_vector(paper_adder),
            reversed_profile.feature_vector(paper_adder),
        )

    def test_featurizer_matches_dict_path_bitwise(self, paper_adder):
        profile = ramp_profile(paper_adder)
        featurizer = FleetFeaturizer(paper_adder, buckets=4)
        sp = featurizer.base_vector(profile)
        for corner, age in (
            ("ss_0.81v_105c", 2.0),
            ("tt_0.90v_25c", 7.5),
        ):
            fast = featurizer.vector(sp, corner, age)
            reference = device_features(
                profile, paper_adder, corner, age, buckets=4
            )
            assert fast.tobytes() == reference.tobytes()


# ---------------------------------------------------------------------
# Dataset determinism
# ---------------------------------------------------------------------
class TestDatasetDeterminism:
    def _generate(self, paper_adder, paper_lib, **overrides):
        config = dataclasses.replace(FAST, **overrides)
        return generate_dataset(
            paper_adder, paper_lib, ramp_profile(paper_adder), config
        )

    def test_worker_counts_yield_identical_bytes(
        self, paper_adder, paper_lib
    ):
        serial = self._generate(paper_adder, paper_lib, workers=1)
        forked = self._generate(paper_adder, paper_lib, workers=3)
        assert serial.to_json() == forked.to_json()
        assert serial.digest() == forked.digest()

    def test_restart_yields_identical_digest(
        self, paper_adder, paper_lib, tmp_path
    ):
        here = self._generate(paper_adder, paper_lib)
        script = (
            "import sys\n"
            "from repro.core.example import build_paper_adder, "
            "make_paper_library\n"
            "from repro.core.config import SurrogateConfig\n"
            "from repro.sim.probes import SPProfile\n"
            "from repro.surrogate import generate_dataset\n"
            "adder = build_paper_adder()\n"
            "names = sorted(adder.nets)\n"
            "sp = {name: round((i + 1) / (len(names) + 1), 6)\n"
            "      for i, name in enumerate(names)}\n"
            "profile = SPProfile(netlist_name=adder.name, sp=sp, samples=4)\n"
            "config = SurrogateConfig(samples=16, seed=7,\n"
            "    age_grid=(2.0, 5.0, 8.0, 11.0, 14.0), workers=2)\n"
            "ds = generate_dataset(adder, make_paper_library(), profile, "
            "config)\n"
            "sys.stdout.write(ds.digest())\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert proc.stdout.strip() == here.digest()

    def test_cache_round_trip_is_byte_identical(
        self, paper_adder, paper_lib, tmp_path
    ):
        cache = ArtifactCache(tmp_path / "cache")
        config = dataclasses.replace(FAST)
        first = generate_dataset(
            paper_adder, paper_lib, ramp_profile(paper_adder),
            config, cache=cache,
        )
        again = generate_dataset(
            paper_adder, paper_lib, ramp_profile(paper_adder),
            config, cache=cache,
        )
        assert first.to_json() == again.to_json()

    def test_rows_labeled_independently_of_sample_count(
        self, paper_adder, paper_lib
    ):
        small = self._generate(paper_adder, paper_lib, samples=4)
        large = self._generate(paper_adder, paper_lib, samples=8)
        assert large.rows[:4] == small.rows

    def test_schema_mismatch_raises(self, paper_adder, paper_lib):
        dataset = self._generate(paper_adder, paper_lib, samples=2)
        doc = json.loads(dataset.to_json())
        doc["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            SurrogateDataset.from_json(json.dumps(doc))
        doc["schema"] = 1
        doc["feature_schema"] = 99
        with pytest.raises(ValueError, match="feature schema"):
            SurrogateDataset.from_json(json.dumps(doc))

    def test_split_is_deterministic_and_disjoint(
        self, paper_adder, paper_lib
    ):
        dataset = self._generate(paper_adder, paper_lib)
        train, holdout = dataset.split(0.25, seed=7)
        train2, holdout2 = dataset.split(0.25, seed=7)
        assert train == train2 and holdout == holdout2
        indices = [r["index"] for r in train] + [r["index"] for r in holdout]
        assert sorted(indices) == list(range(len(dataset.rows)))
        assert len(holdout) == round(0.25 * len(dataset.rows))

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 100), samples=st.integers(1, 4))
    def test_property_worker_count_never_changes_bytes(
        self, seed, samples
    ):
        from repro.core.example import build_paper_adder, make_paper_library

        adder = build_paper_adder()
        library = make_paper_library()
        config = dataclasses.replace(FAST, seed=seed, samples=samples)
        serial = generate_dataset(
            adder, library, ramp_profile(adder), config
        )
        forked = generate_dataset(
            adder, library, ramp_profile(adder),
            dataclasses.replace(config, workers=2),
        )
        assert serial.to_json() == forked.to_json()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), index=st.integers(0, 500))
    def test_property_device_draws_pure_function_of_index(
        self, seed, index
    ):
        config = dataclasses.replace(FAST, seed=seed)
        assert sample_draws(config, index) == sample_draws(config, index)
        base = np.linspace(0.05, 0.95, 11)
        first = device_sp_vector(base, 0.7, config.noise, seed, index)
        second = device_sp_vector(base, 0.7, config.noise, seed, index)
        assert first.tobytes() == second.tobytes()
        assert float(first.min()) >= 0.0 and float(first.max()) <= 1.0


# ---------------------------------------------------------------------
# The ridge model
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def adder_dataset():
    from repro.core.example import build_paper_adder, make_paper_library

    adder = build_paper_adder()
    config = dataclasses.replace(FAST, samples=32)
    return generate_dataset(
        adder, make_paper_library(), ramp_profile(adder), config
    )


class TestRidgeSurrogate:
    def test_snapshot_round_trip_is_bit_exact(self, adder_dataset):
        model, _ = train_surrogate(
            adder_dataset, dataclasses.replace(FAST, samples=32)
        )
        clone = RidgeSurrogate.from_json(model.to_json())
        assert clone.to_json() == model.to_json()
        assert clone.digest() == model.digest()
        X, _ = adder_dataset.matrices()
        assert np.array_equal(clone.predict(X), model.predict(X))

    def test_training_is_reproducible(self, adder_dataset):
        config = dataclasses.replace(FAST, samples=32)
        first, _ = train_surrogate(adder_dataset, config)
        second, _ = train_surrogate(adder_dataset, config)
        assert first.digest() == second.digest()

    def test_calibration_present_after_training(self, adder_dataset):
        model, report = train_surrogate(
            adder_dataset, dataclasses.replace(FAST, samples=32)
        )
        assert model.threshold is not None
        assert report.recall >= 0.95
        assert model.calibration["recall_floor"] == 0.95

    def test_schema_mismatch_raises(self, adder_dataset):
        model, _ = train_surrogate(
            adder_dataset, dataclasses.replace(FAST, samples=32)
        )
        doc = json.loads(model.to_json())
        doc["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            RidgeSurrogate.from_json(json.dumps(doc))

    def test_validation_fails_closed_on_bad_recall(self, adder_dataset):
        model, _ = train_surrogate(
            adder_dataset, dataclasses.replace(FAST, samples=32)
        )
        # Sabotage the threshold so nothing is flagged: with risky rows
        # present, recall collapses and validation must raise.
        model.calibration = dict(model.calibration, threshold=-1e9)
        with pytest.raises(SurrogateValidationError, match="recall"):
            validate_model(model, adder_dataset.rows)

    def test_validation_refuses_uncalibrated_model(self, adder_dataset):
        X, y = adder_dataset.matrices()
        model = RidgeSurrogate.fit(X, y, adder_dataset.feature_names)
        with pytest.raises(SurrogateValidationError, match="calibrat"):
            validate_model(model, adder_dataset.rows)

    def test_validation_refuses_empty_holdout(self, adder_dataset):
        model, _ = train_surrogate(
            adder_dataset, dataclasses.replace(FAST, samples=32)
        )
        with pytest.raises(SurrogateValidationError, match="held-out"):
            validate_model(model, [])


# ---------------------------------------------------------------------
# Triage (exact tail re-verification, byte for byte)
# ---------------------------------------------------------------------
MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE),
]

TRIAGE_CONFIG = CampaignConfig(
    devices=8, seed=11, shard_size=4, suites=("vega",),
    base_onset_years=6.0,
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def vega_library(alu_netlist):
    lifter = ErrorLifter(alu_netlist, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    return AgingLibrary(
        name="surrogate_vega",
        test_cases=lifter.lift_pair(violation).test_cases,
    )


@pytest.fixture(scope="module")
def alu_surrogate(alu_netlist):
    """A calibrated surrogate over the ALU (tiny sweep, fast grid)."""
    config = dataclasses.replace(FAST, samples=12)
    dataset = generate_dataset(
        alu_netlist, make_vega28_library(), ramp_profile(alu_netlist),
        config,
    )
    X, y = dataset.matrices()
    model = RidgeSurrogate.fit(X, y, dataset.feature_names)
    # Pin the threshold rather than calibrating: triage mechanics are
    # under test here, not model quality (the CLI smoke and the
    # benchmark cover the calibrated path end to end).
    model.calibration = {"threshold": 12.0, "risky_horizon": 10.0,
                         "recall_floor": 0.95, "margin": 0.25}
    return model


class TestTriage:
    def test_uncalibrated_model_refused(self, alu_netlist, alu_surrogate):
        bare = RidgeSurrogate.from_json(alu_surrogate.to_json())
        bare.calibration = {}
        with pytest.raises(ValueError, match="threshold"):
            triage_fleet(
                bare, alu_netlist, ramp_profile(alu_netlist),
                TRIAGE_CONFIG, FAST,
            )

    def test_specs_are_pure_functions_of_index(self, alu_netlist):
        library = make_vega28_library()
        profile = ramp_profile(alu_netlist)
        full = profiled_fleet(
            alu_netlist, library, profile, MODELS, TRIAGE_CONFIG, FAST
        )
        subset_indices = [1, 4, 6]
        subset = profiled_fleet(
            alu_netlist, library, profile, MODELS, TRIAGE_CONFIG, FAST,
            indices=subset_indices,
        )
        assert subset == [full[i] for i in subset_indices]

    def test_tail_report_rows_byte_identical_to_exact(
        self, alu_netlist, vega_library, alu_surrogate
    ):
        library = make_vega28_library()
        profile = ramp_profile(alu_netlist)
        outcome, tail_report = run_surrogate_campaign(
            alu_netlist, "alu", vega_library, library, profile,
            MODELS, alu_surrogate,
            config=TRIAGE_CONFIG, surrogate=FAST,
            base_onset_years=TRIAGE_CONFIG.base_onset_years,
        )
        assert 0 < len(outcome.flagged) < TRIAGE_CONFIG.devices, (
            "triage split degenerated; the byte-identity check below "
            "would be vacuous"
        )
        exact_fleet = profiled_fleet(
            alu_netlist, library, profile, MODELS, TRIAGE_CONFIG, FAST
        )
        exact_report = CampaignEngine(
            alu_netlist, "alu", vega_library, MODELS,
            config=TRIAGE_CONFIG,
            base_onset_years=TRIAGE_CONFIG.base_onset_years,
            fleet=exact_fleet,
        ).run()
        flagged_ids = {d.device_id for d in outcome.flagged}
        exact_rows = [
            row for row in exact_report.device_rows
            if row["device"] in flagged_ids
        ]
        assert (
            json.dumps(exact_rows, sort_keys=True)
            == json.dumps(tail_report.device_rows, sort_keys=True)
        )
        # And the whole tail report reproduces byte for byte.
        _, again = run_surrogate_campaign(
            alu_netlist, "alu", vega_library, library, profile,
            MODELS, alu_surrogate,
            config=TRIAGE_CONFIG, surrogate=FAST,
            base_onset_years=TRIAGE_CONFIG.base_onset_years,
        )
        assert again.to_json() == tail_report.to_json()

    def test_triage_outcome_shape(self, alu_netlist, alu_surrogate):
        outcome = triage_fleet(
            alu_surrogate, alu_netlist, ramp_profile(alu_netlist),
            TRIAGE_CONFIG, FAST,
        )
        assert len(outcome.devices) == TRIAGE_CONFIG.devices
        assert len(outcome.cleared) + len(outcome.flagged) == 8
        data = outcome.as_dict()
        assert data["cleared"] == len(outcome.cleared)
        assert all(
            d.flagged == (d.predicted_onset_years <= outcome.threshold)
            for d in outcome.devices
        )


# ---------------------------------------------------------------------
# Scheduler integration: per-device surrogate priors
# ---------------------------------------------------------------------
class TestDevicePriors:
    def _specs(self):
        from repro.campaign.fleet import DeviceSpec

        return [
            DeviceSpec(
                index=i, device_id=f"dev-{i:04d}",
                corner="ss_0.81v_105c", onset_years=5.0,
                faulty=False, model=None, backend_seed=i,
            )
            for i in range(3)
        ]

    def _outcome(self):
        from repro.surrogate.triage import TriagedDevice

        return TriageOutcome(
            threshold=12.0,
            mission_years=10.0,
            devices=[
                TriagedDevice(0, "dev-0000", "ss_0.81v_105c", -0.5,
                              4.0, -0.1, True),
                TriagedDevice(1, "dev-0001", "tt_0.90v_25c", 0.1,
                              25.0, 0.4, False),
            ],
        )

    def test_priors_hot_for_flagged_cold_for_cleared(self):
        priors = surrogate_device_prior(self._outcome(), ["s", "h"])
        hot = priors["dev-0000"][BROAD_CLASS]
        cold = priors["dev-0001"][BROAD_CLASS]
        assert hot[0] > hot[1]          # risk 1.0: alpha-heavy
        assert cold[0] < cold[1]        # far beyond mission: beta-heavy
        assert set(priors["dev-0000"]) == {"s", "h", BROAD_CLASS}

    def test_belief_consults_device_prior_first(self):
        specs = self._specs()
        priors = {"dev-0000": {"x": (3.0, 1.0)}}
        belief = FleetBelief(
            specs, ["x"], cycle_budget=1000, device_prior=priors
        )
        assert belief._prior_for(
            "ss_0.81v_105c", "x", "dev-0000"
        ) == (3.0, 1.0)
        # Other devices fall through to the corner prior.
        fallback = belief._prior_for("ss_0.81v_105c", "x", "dev-0001")
        assert fallback == belief._prior_for("ss_0.81v_105c", "x")

    def test_snapshot_digest_unchanged_without_priors(self):
        specs = self._specs()
        plain = FleetBelief(specs, ["x"], cycle_budget=1000)
        with_empty = FleetBelief(
            specs, ["x"], cycle_budget=1000, device_prior={}
        )
        assert "device_prior" not in plain.snapshot()
        assert plain.digest() == with_empty.digest()

    def test_snapshot_round_trips_device_prior(self):
        specs = self._specs()
        priors = {"dev-0001": {"x": (2.0, 0.5), BROAD_CLASS: (1.5, 0.5)}}
        belief = FleetBelief(
            specs, ["x"], cycle_budget=1000, device_prior=priors
        )
        restored = FleetBelief.from_snapshot(belief.snapshot())
        assert restored.device_prior == belief.device_prior
        assert restored.digest() == belief.digest()

    def test_partition_and_merge_preserve_priors(self):
        specs = self._specs()
        priors = {
            "dev-0000": {"x": (3.0, 1.0)},
            "dev-0002": {"x": (0.5, 2.5)},
        }
        belief = FleetBelief(
            specs, ["x"], cycle_budget=1000, device_prior=priors
        )
        shards = belief.partition([(0, 2), (2, 3)])
        shard_tables = {}
        for shard in shards:
            shard_tables.update(shard.device_prior)
        assert shard_tables == belief.device_prior
        merged = FleetBelief.merge(shards)
        assert merged.device_prior == belief.device_prior
