"""Field-lifetime simulation: when does aging strike, and how fast is
it caught?

The paper's Takeaway #1: "Increasing the frequency of SDC testing can
lead to more timely detection of SDCs."  This module quantifies that
claim on our stack by simulating a part's deployment:

1. sweep the device age year by year, re-running aging-aware STA at
   each point to find when the first timing violation *onsets* (the
   reaction-diffusion model front-loads degradation, so margins erode
   quickly early and slowly later);
2. when a violation onsets, inject its failure model into the
   co-simulated unit and measure how many scheduled suite executions
   pass before the fault is reported — the *detection latency*;
3. convert test-schedule periods (per-second, hourly, quarterly à la
   Alibaba) into wall-clock detection-latency estimates.

This is an extension beyond the paper's evaluation, but directly in its
motivation's terms (§1, §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..aging.charlib import AgingTimingLibrary
from ..core.config import AgingAnalysisConfig
from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile
from ..sta.aging_sta import AgingAwareSta

#: Seconds per test-schedule period, for latency conversion.
SCHEDULES = {
    "per-second": 1.0,
    "per-minute": 60.0,
    "hourly": 3600.0,
    "daily": 86400.0,
    "quarterly (Alibaba)": 7889400.0,  # ~3 months
}


@dataclass
class OnsetPoint:
    """First appearance of a violating pair during the age sweep."""

    years: float
    start: str
    end: str
    kind: str
    wns_ns: float


@dataclass
class LifetimeReport:
    """Result of one lifetime sweep."""

    netlist_name: str
    years: List[float] = field(default_factory=list)
    wns_by_year: Dict[float, float] = field(default_factory=dict)
    violations_by_year: Dict[float, int] = field(default_factory=dict)
    onsets: List[OnsetPoint] = field(default_factory=list)

    @property
    def first_onset_years(self) -> Optional[float]:
        return self.onsets[0].years if self.onsets else None

    def detection_wall_clock(
        self, suite_runs_needed: int = 1
    ) -> Dict[str, float]:
        """Seconds from fault onset to detection per schedule.

        A fault manifests between two scheduled runs; on average it
        waits half a period, plus (runs_needed - 1) full periods when
        earlier runs miss (initial-value dependency).
        """
        return {
            name: period * (0.5 + (suite_runs_needed - 1))
            for name, period in SCHEDULES.items()
        }


class LifetimeSimulator:
    """Year-by-year aging sweep over one unit."""

    def __init__(
        self,
        netlist: Netlist,
        profile: SPProfile,
        config: Optional[AgingAnalysisConfig] = None,
        gated_instances=None,
        clock_chain_length: int = 1,
        temperature_c: float = 105.0,
    ):
        self.netlist = netlist
        self.profile = profile
        self.config = config or AgingAnalysisConfig()
        self.gated_instances = gated_instances
        self.clock_chain_length = clock_chain_length
        self.temperature_c = temperature_c

    def sweep(self, years: Sequence[float]) -> LifetimeReport:
        """Run aging-aware STA at each age; record WNS and onsets."""
        report = LifetimeReport(netlist_name=self.netlist.name)
        # The sign-off period is age-independent: derived once, fresh.
        base_sta = self._sta(lifetime_years=years[0])
        period = base_sta.derive_period()
        seen_pairs = set()
        for age in years:
            sta = self._sta(lifetime_years=age)
            result = sta.analyze(self.profile, clock_period_ns=period)
            aged = result.report
            report.years.append(age)
            report.wns_by_year[age] = aged.wns_setup_ns
            report.violations_by_year[age] = len(aged.violations)
            for violation in aged.representative_violations():
                pair = (violation.start, violation.end, violation.kind)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                report.onsets.append(
                    OnsetPoint(
                        years=age,
                        start=violation.start,
                        end=violation.end,
                        kind=violation.kind,
                        wns_ns=violation.slack,
                    )
                )
        return report

    def _sta(self, lifetime_years: float) -> AgingAwareSta:
        timing_lib = AgingTimingLibrary.characterize(
            self.netlist.library,
            lifetime_years=lifetime_years,
            temperature_c=self.temperature_c,
        )
        return AgingAwareSta(
            self.netlist,
            timing_lib,
            config=self.config,
            gated_instances=self.gated_instances,
            clock_chain_length=self.clock_chain_length,
        )
