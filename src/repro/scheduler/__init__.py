"""Online fleet scheduler: adaptive dispatch, streaming detection.

The offline campaign (:mod:`repro.campaign`) answers "what would the
fleet look like if every device ran every suite".  This package runs
the same fleet as an *online service*: devices request their next test,
stream verdicts back, and a per-device aging belief state steers what
gets dispatched next — detection value per cycle instead of a fixed
test list.

Modules:

* :mod:`~repro.scheduler.belief` — Beta-Bernoulli posteriors per
  (device, failure-model class), fleet-level evidence sharing, priors
  from the fleet's corner/onset distributions.
* :mod:`~repro.scheduler.policy` — sequential / greedy /
  Thompson-sampling dispatch policies; pure functions of a belief
  snapshot.
* :mod:`~repro.scheduler.service` — the asyncio service: batching,
  bounded-queue backpressure, belief checkpoints, graceful drain, and
  the deterministic TRACE_SCHEMA event log.
* :mod:`~repro.scheduler.replay` — simulated device clients over the
  campaign's :class:`~repro.campaign.engine.DeviceRunner`, session
  driver, schedule reports, byte-exact replay verification.
* :mod:`~repro.scheduler.distributed` — the fleet belief sharded by
  device-index range across worker processes behind a length-prefixed
  JSON frame router, with exact shard merge, per-shard heartbeats,
  alert hooks, and a Prometheus-text ``/metrics`` snapshot.
"""

from .belief import ArmSpec, DeviceBelief, FleetBelief, fleet_prior
from .distributed import (
    AlertHub,
    DistributedOutcome,
    DistributedSession,
    FrameDecoder,
    MetricsServer,
    ShardRouter,
    WebhookAlertHook,
    encode_frame,
    fold_event_stream,
    shard_ranges,
)
from .policy import (
    Dispatch,
    PlanRequest,
    POLICIES,
    Policy,
    Schedule,
    make_policy,
)
from .replay import (
    FleetAdapter,
    ScheduleOutcome,
    ScheduleReport,
    ScheduleSession,
    build_arms,
    verify_replay,
)
from .service import (
    DetectionService,
    EventLog,
    ResultEvent,
    RetryAfter,
)

__all__ = [
    "AlertHub",
    "ArmSpec",
    "DeviceBelief",
    "DetectionService",
    "Dispatch",
    "DistributedOutcome",
    "DistributedSession",
    "EventLog",
    "FleetAdapter",
    "FleetBelief",
    "FrameDecoder",
    "MetricsServer",
    "PlanRequest",
    "POLICIES",
    "Policy",
    "ResultEvent",
    "RetryAfter",
    "Schedule",
    "ScheduleOutcome",
    "ScheduleReport",
    "ScheduleSession",
    "ShardRouter",
    "WebhookAlertHook",
    "build_arms",
    "encode_frame",
    "fleet_prior",
    "fold_event_stream",
    "make_policy",
    "shard_ranges",
    "verify_replay",
]
