"""Baseline comparators: random test-suite generation (Table 7)."""

from .random_tests import random_alu_test, random_fpu_test, random_suite
from .silifuzz_lite import SiliFuzzLite, Snapshot

__all__ = [
    "random_alu_test",
    "random_fpu_test",
    "random_suite",
    "SiliFuzzLite",
    "Snapshot",
]
