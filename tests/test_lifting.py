"""Tests for failure models, instrumentation, and the lifter.

These reproduce the paper's §3.3 worked example on the 2-bit adder:
the setup violation in path d4 -> x7 -> x8 -> d10 and the hold violation
in path d1 -> x5 -> d9, including a Table 2-style witness trace.
"""

import random

import pytest

from repro.core.config import ErrorLiftingConfig
from repro.core.example import build_paper_adder
from repro.formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from repro.lifting.instrument import (
    InstrumentationError,
    RANDOM_C_PORT,
    instrument_for_cover,
    make_failing_netlist,
)
from repro.lifting.lifter import ErrorLifter, PairOutcome
from repro.lifting.models import (
    CMode,
    EdgeQualifier,
    FailureModel,
    ViolationKind,
)
from repro.sim.gatesim import GateSimulator
from repro.sta.timing import TimingViolation


SETUP_D4_D10 = FailureModel("d4", "d10", ViolationKind.SETUP, CMode.ONE)
HOLD_D1_D9 = FailureModel("d1", "d9", ViolationKind.HOLD, CMode.ONE)


def _run_pairs(netlist, stimulus):
    """Simulate; return list of (inputs, outputs) per cycle."""
    sim = GateSimulator(netlist)
    out = []
    for frame in stimulus:
        out.append((dict(frame), sim.step(frame)))
    return out


class TestFailureModelVariants:
    def test_base_model_single_variant(self):
        assert SETUP_D4_D10.variants(mitigation=False) == [SETUP_D4_D10]

    def test_mitigation_doubles_variants(self):
        variants = SETUP_D4_D10.variants(mitigation=True)
        assert len(variants) == 2
        assert {v.edge for v in variants} == {
            EdgeQualifier.RISING,
            EdgeQualifier.FALLING,
        }

    def test_self_loop_has_no_edge_variants(self):
        loop = FailureModel("d9", "d9", ViolationKind.HOLD, CMode.ZERO)
        assert loop.variants(mitigation=True) == [loop]
        assert loop.is_self_loop

    def test_label_is_unique_per_config(self):
        labels = {
            FailureModel("a", "b", k, c, e).label
            for k in ViolationKind
            for c in (CMode.ZERO, CMode.ONE)
            for e in EdgeQualifier
        }
        assert len(labels) == 12


class TestFailingNetlist:
    def test_setup_model_matches_equation2(self, paper_adder):
        """Y samples C=1 exactly when X changed in the previous cycle.

        With d4 sampling b[1], the flop value X(t) is b1(t-1) and the
        corrupted Q reaches the output one edge later, so the output
        observed at step i is wrong iff b1(i-2) != b1(i-3).
        """
        failing = make_failing_netlist(paper_adder, SETUP_D4_D10)
        sim_bad = GateSimulator(failing.netlist)
        sim_good = GateSimulator(paper_adder)
        rng = random.Random(11)
        b1_stream = []
        for i in range(60):
            a, b = rng.randrange(4), rng.randrange(4)
            good = sim_good.step({"a": a, "b": b})
            bad = sim_bad.step({"a": a, "b": b})
            v2 = b1_stream[i - 2] if i >= 2 else 0
            v3 = b1_stream[i - 3] if i >= 3 else 0
            if v2 != v3:
                assert (bad["o"] >> 1) & 1 == 1
                # o[0] is outside the failing cone and must match.
                assert bad["o"] & 1 == good["o"] & 1
            else:
                assert bad["o"] == good["o"]
            b1_stream.append((b >> 1) & 1)

    def test_hold_model_matches_equation3(self, paper_adder):
        """Hold: Y samples C when X is about to change (X(t) != X(t+1)).

        With d1 sampling a[0], the output observed at step i is wrong
        iff a0(i-2) != a0(i-1).
        """
        failing = make_failing_netlist(paper_adder, HOLD_D1_D9)
        sim_bad = GateSimulator(failing.netlist)
        sim_good = GateSimulator(paper_adder)
        rng = random.Random(5)
        a0_stream = []
        for i in range(60):
            a, b = rng.randrange(4), rng.randrange(4)
            good = sim_good.step({"a": a, "b": b})
            bad = sim_bad.step({"a": a, "b": b})
            v1 = a0_stream[i - 1] if i >= 1 else 0
            v2 = a0_stream[i - 2] if i >= 2 else 0
            if v1 != v2:
                assert bad["o"] & 1 == 1
            else:
                assert bad["o"] == good["o"]
            a0_stream.append(a & 1)
        assert failing.model.kind is ViolationKind.HOLD

    def test_self_loop_always_samples_c(self, paper_adder):
        loop = FailureModel("d9", "d9", ViolationKind.HOLD, CMode.ONE)
        failing = make_failing_netlist(paper_adder, loop)
        sim = GateSimulator(failing.netlist)
        sim.step({"a": 0, "b": 0})  # first visible Q is the reset value
        for _ in range(5):
            out = sim.step({"a": 0, "b": 0})
            assert out["o"] & 1 == 1

    def test_random_mode_adds_port(self, paper_adder):
        model = FailureModel("d4", "d10", ViolationKind.SETUP, CMode.RANDOM)
        failing = make_failing_netlist(paper_adder, model)
        assert RANDOM_C_PORT in failing.netlist.ports
        sim = GateSimulator(failing.netlist)
        out = sim.step({"a": 0, "b": 2, RANDOM_C_PORT: 1})
        assert "o" in out

    def test_original_untouched(self, paper_adder):
        before = paper_adder.stats()
        make_failing_netlist(paper_adder, SETUP_D4_D10)
        assert paper_adder.stats() == before

    def test_verilog_export_parses_back(self, paper_adder):
        from repro.netlist.parser import parse_verilog

        failing = make_failing_netlist(paper_adder, SETUP_D4_D10)
        text = failing.to_verilog()
        assert "MUX2" in text
        parsed = parse_verilog(text, library=paper_adder.library)
        assert parsed.stats() == failing.netlist.stats()

    def test_edge_qualified_rising_only(self, paper_adder):
        model = FailureModel(
            "d4", "d10", ViolationKind.SETUP, CMode.ONE, EdgeQualifier.RISING
        )
        failing = make_failing_netlist(paper_adder, model)
        sim_bad = GateSimulator(failing.netlist)
        sim_good = GateSimulator(paper_adder)
        # Drive b[1]: 0 -> 1 (rising, should fire) then 1 -> 0
        # (falling, should NOT fire).
        seq = [0b00, 0b10, 0b10, 0b00, 0b00, 0b00]
        prev_x = 0
        for b in seq:
            good = sim_good.step({"a": 0, "b": b})
            bad = sim_bad.step({"a": 0, "b": b})
            x_now = None  # d4's visible value lags input; derived below
            # Reconstruct: rising fire corrupts o[1] in the cycle after
            # the transition reaches d4.
        # Directly check: the falling transition cycles must match good.
        # (Detailed per-cycle law covered by equation tests above.)
        assert failing.model.edge is EdgeQualifier.RISING


class TestCoverInstrumentation:
    def test_shadow_replica_structure(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_D4_D10)
        names = set(instr.netlist.instances)
        # Cone of d10 is just d10 itself (its Q feeds only the output).
        assert "d10__s" in names
        assert "d9__s" not in names
        # Failure model cells present: history DFF, XOR trigger, MUX.
        assert any(n.startswith("fm_histdff") for n in names)
        assert any(n.startswith("fm_mux") for n in names)

    def test_output_pairs_only_influenced_bits(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_D4_D10)
        assert instr.output_pairs == [("o[1]", "o[1]__s")]
        hold_instr = instrument_for_cover(paper_adder, HOLD_D1_D9)
        assert hold_instr.output_pairs == [("o[0]", "o[0]__s")]

    def test_cover_property_text(self, paper_adder):
        instr = instrument_for_cover(paper_adder, SETUP_D4_D10)
        assert (
            instr.cover_property_text()
            == "cover property (@(posedge clk) o[1] != o[1]__s);"
        )

    def test_paper_table2_style_witness(self, paper_adder):
        """BMC finds a 3-cycle witness where o[1] != o_s[1] (Table 2)."""
        instr = instrument_for_cover(paper_adder, SETUP_D4_D10)
        bmc = BoundedModelChecker(instr.netlist)
        result = bmc.cover(
            CoverObjective(differ=instr.output_pairs), max_depth=5
        )
        assert result.status is BmcStatus.COVERED
        assert result.trace.depth == 3
        # The witness must wiggle b[1] (the input d4 samples) between
        # cycles 1 and 2 to arm the failure model.
        b_values = result.trace.port_values("b")
        assert (b_values[0] >> 1) & 1 != (b_values[1] >> 1) & 1

    def test_witness_reproduces_fault_on_failing_netlist(self, paper_adder):
        """End-to-end §3.3 check: replay the BMC witness on the failing
        netlist and observe the corrupted output differ from golden."""
        instr = instrument_for_cover(paper_adder, SETUP_D4_D10)
        bmc = BoundedModelChecker(instr.netlist)
        result = bmc.cover(
            CoverObjective(differ=instr.output_pairs), max_depth=5
        )
        failing = make_failing_netlist(paper_adder, SETUP_D4_D10)
        sim_good = GateSimulator(paper_adder)
        sim_bad = GateSimulator(failing.netlist)
        mismatch = False
        for frame in result.trace.inputs:
            good = sim_good.step(frame)
            bad = sim_bad.step(frame)
            if good["o"] != bad["o"]:
                mismatch = True
        assert mismatch

    def test_unknown_instance_rejected(self, paper_adder):
        with pytest.raises(InstrumentationError):
            instrument_for_cover(
                paper_adder,
                FailureModel("nope", "d10", ViolationKind.SETUP, CMode.ONE),
            )

    def test_non_dff_rejected(self, paper_adder):
        with pytest.raises(InstrumentationError):
            instrument_for_cover(
                paper_adder,
                FailureModel("x7", "d10", ViolationKind.SETUP, CMode.ONE),
            )


class TestErrorLifter:
    def _violation(self, kind="setup", start="d4", end="d10"):
        return TimingViolation(
            kind=kind,
            start=start,
            end=end,
            cells=("x7", "x8"),
            arrival=0.95,
            required=0.94,
        )

    def test_lift_pair_constructs_without_mapper_fc(self, paper_adder):
        # Without a mapper, covered traces cannot convert -> FC.
        lifter = ErrorLifter(paper_adder, ErrorLiftingConfig(bmc_depth=4))
        result = lifter.lift_pair(self._violation())
        assert result.outcome is PairOutcome.CONVERSION_FAILURE
        assert len(result.variants) == 2  # C=0 and C=1

    def test_mitigation_produces_four_variants(self, paper_adder):
        config = ErrorLiftingConfig(enable_mitigation=True, bmc_depth=4)
        lifter = ErrorLifter(paper_adder, config)
        result = lifter.lift_pair(self._violation())
        assert len(result.variants) == 4

    def test_unrealizable_pair(self, paper_adder):
        # d9's cone (o[0]) with hold model on path d9 -> d9 does not
        # exist; instead verify UR via a model that cannot propagate:
        # corrupt d10 with C equal to what it would produce anyway is
        # still detectable, so build a truly masked case by checking a
        # self-loop on a flop with constant-equal behaviour is covered.
        # Simplest real UR: instrumentation error (endpoint drives no
        # output) is classified UNREACHABLE.
        lifter = ErrorLifter(paper_adder, ErrorLiftingConfig(bmc_depth=3))
        violation = TimingViolation(
            kind="setup", start="d1", end="d1", cells=(), arrival=1, required=0
        )
        result = lifter.lift_pair(violation)
        # d1 feeds x5/a6 and ultimately both outputs; self-loop model
        # forces constant C. With C=0 (d1's reset value) behaviour may
        # match reset streams but diverges under inputs; just assert
        # the lifter ran both constants and classified consistently.
        assert result.outcome in (
            PairOutcome.CONSTRUCTED,
            PairOutcome.CONVERSION_FAILURE,
        )

    def test_failing_netlists_three_modes(self, paper_adder):
        from repro.sta.timing import StaReport

        report = StaReport(netlist_name="adder", period_ns=1.0)
        report.violations.append(self._violation())
        lifter = ErrorLifter(paper_adder)
        failing = lifter.failing_netlists(report)
        assert len(failing) == 3
        modes = {f.model.c_mode for f in failing}
        assert modes == {CMode.ZERO, CMode.ONE, CMode.RANDOM}
