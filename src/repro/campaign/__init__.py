"""Fleet-scale fault-injection campaigns.

The paper's deployment target is a *fleet*: Vega suites run across
data-center machines so aging SDCs are caught before they corrupt user
traffic.  This package turns the single-device evaluation layer into a
population study:

* :mod:`~repro.campaign.fleet` samples a deterministic virtual fleet —
  per-device aging corner, violation-onset draw, and injected failure
  model;
* :mod:`~repro.campaign.engine` executes detection campaigns (the Vega
  library plus the random and SiliFuzz-style baselines) against every
  faulty device, sharded across ``fork`` workers with per-shard
  resume checkpoints;
* :mod:`~repro.campaign.report` aggregates fleet metrics into a
  :class:`~repro.campaign.report.CampaignReport` artifact;
* :mod:`~repro.campaign.packed` resolves many failure models per
  gate-sim pass (one shadow-mux bit-plane each) — the fault-parallel
  prefilter the engine runs before shard dispatch.
"""

from .engine import CampaignEngine, DeviceResult, SuiteOutcome
from .fleet import DeviceSpec, device_draw, fleet_digest, sample_fleet
from .packed import PackedPrefilter, ReplayBackend, ReplayMismatch
from .report import CampaignReport

__all__ = [
    "CampaignEngine",
    "CampaignReport",
    "DeviceResult",
    "DeviceSpec",
    "PackedPrefilter",
    "ReplayBackend",
    "ReplayMismatch",
    "SuiteOutcome",
    "device_draw",
    "fleet_digest",
    "sample_fleet",
]
