"""Property-based tests for the named RNG streams (repro.core.rng).

The whole determinism story — fleet sampling, baseline suites,
co-simulation ``CMode.RANDOM`` draws, scheduler Thompson sampling —
rests on three properties of :func:`stream_seed`/:func:`stream_rng`:

* distinct stream names behave independently (no shared prefixes);
* the same name always yields the identical sequence;
* seeds and positioned generators survive pickling (fork workers and
  belief checkpoints ship them across process boundaries).
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import stream_seed, stream_rng

_NAMES = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)
_INDICES = st.lists(
    st.integers(min_value=0, max_value=2**32), max_size=3
)


class TestStreamIndependence:
    def test_hundred_names_no_identical_prefixes(self):
        """100 distinct stream names → 100 distinct first-8 draws.

        An affine seed formula (``seed = i * 97 + 13``) would collide
        here the moment two names map to nearby constants; the hashed
        derivation keeps every stream's opening draws unique.
        """
        prefixes = set()
        for k in range(100):
            rng = stream_rng(f"prop.stream.{k}")
            prefixes.add(tuple(rng.random() for _ in range(8)))
        assert len(prefixes) == 100

    @given(
        names=st.lists(_NAMES, min_size=2, max_size=8, unique=True),
        indices=_INDICES,
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_names_distinct_streams(self, names, indices):
        seeds = {stream_seed(name, *indices) for name in names}
        assert len(seeds) == len(names)
        prefixes = {
            tuple(stream_rng(name, *indices).random() for _ in range(8))
            for name in names
        }
        assert len(prefixes) == len(names)

    @given(name=_NAMES, index=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=60, deadline=None)
    def test_indices_select_distinct_members(self, name, index):
        assert stream_seed(name, index) != stream_seed(name, index + 1)


class TestStreamReproducibility:
    @given(name=_NAMES, indices=_INDICES)
    @settings(max_examples=60, deadline=None)
    def test_same_name_identical_sequence(self, name, indices):
        first = stream_rng(name, *indices)
        second = stream_rng(name, *indices)
        assert [first.random() for _ in range(16)] == [
            second.random() for _ in range(16)
        ]

    @given(name=_NAMES, indices=_INDICES)
    @settings(max_examples=60, deadline=None)
    def test_seed_is_64_bit(self, name, indices):
        assert 0 <= stream_seed(name, *indices) < 2**64


class TestStreamPickling:
    @given(name=_NAMES, indices=_INDICES)
    @settings(max_examples=60, deadline=None)
    def test_seed_survives_pickling(self, name, indices):
        seed = stream_seed(name, *indices)
        assert pickle.loads(pickle.dumps(seed)) == seed

    @given(name=_NAMES, consumed=st.integers(min_value=0, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_positioned_rng_survives_pickling(self, name, consumed):
        """A generator pickled mid-stream resumes exactly in place —
        what lets fork workers and checkpoints carry RNG state."""
        rng = stream_rng(name)
        for _ in range(consumed):
            rng.random()
        clone = pickle.loads(pickle.dumps(rng))
        assert [rng.random() for _ in range(8)] == [
            clone.random() for _ in range(8)
        ]
